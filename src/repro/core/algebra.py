"""The BAT Algebra: zero-degrees-of-freedom bulk operators.

Every operator does one simple thing to entire columns and materializes
its result as a BAT (operator-at-a-time, Section 3).  None of them takes a
complex expression: complex predicates are broken into sequences of these
operators by the front-end, which is what removes the expression
interpreter from the critical code path.

Conventions
-----------
* *Candidate lists* are void-headed oid BATs holding the qualifying head
  oids of some base BAT in ascending order — the ``R.tail[j++] = i`` shape
  of the paper's example ``select``.
* Join results are pairs of aligned candidate lists (left oids, right
  oids).
* All functions are pure: inputs are never mutated.
"""

import numpy as np

from repro.core.atoms import BIT, DBL, LNG, OID, STR, Atom
from repro.core.bat import BAT


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _candidates_to_positions(bat, candidates):
    """Physical tail positions selected by a candidate list (or all)."""
    if candidates is None:
        return np.arange(len(bat), dtype=np.int64)
    if not bat.hdense:
        raise ValueError("candidate lists require a void-headed BAT")
    return np.asarray(candidates.tail, dtype=np.int64) - bat.hseqbase

def _positions_to_candidates(bat, positions):
    oids = bat.hseqbase + np.asarray(positions, dtype=np.int64)
    return BAT(OID, oids, tsorted=bool(np.all(oids[1:] >= oids[:-1]))
               if len(oids) > 1 else True, tkey=True)

def _comparable_tail(bat, positions=None):
    """Tail values in a form usable for ordering (strings decoded)."""
    tail = bat.tail if positions is None else bat.tail[positions]
    if bat.atom.varsized:
        return np.asarray(bat.heap.get_many(tail), dtype=object)
    return tail


# ---------------------------------------------------------------------------
# selections
# ---------------------------------------------------------------------------

def select_eq(bat, value, candidates=None):
    """Candidates whose tail equals ``value`` (the paper's select(B, V))."""
    positions = _candidates_to_positions(bat, candidates)
    if bat.atom.varsized:
        offset = bat.heap.find(value)
        if offset is None:
            return _positions_to_candidates(bat, np.empty(0, dtype=np.int64))
        mask = bat.tail[positions] == offset
    else:
        mask = bat.tail[positions] == bat.atom.array([value])[0]
    return _positions_to_candidates(bat, positions[mask])


def select_range(bat, lo=None, hi=None, lo_incl=True, hi_incl=False,
                 candidates=None):
    """Candidates with lo (<|<=) tail (<|<=) hi; None bounds are open.

    A sorted tail (``tsorted``) is exploited with binary search when the
    whole BAT is selected — the property-driven algorithm choice of
    Section 3.1.
    """
    if candidates is None and bat.tsorted and not bat.atom.varsized \
            and len(bat) > 0:
        tail = bat.tail
        start = 0
        stop = len(tail)
        if lo is not None:
            start = int(np.searchsorted(tail, lo,
                                        side="left" if lo_incl else "right"))
        if hi is not None:
            stop = int(np.searchsorted(tail, hi,
                                       side="right" if hi_incl else "left"))
        positions = np.arange(start, max(start, stop), dtype=np.int64)
        return _positions_to_candidates(bat, positions)
    positions = _candidates_to_positions(bat, candidates)
    values = _comparable_tail(bat, positions)
    mask = np.ones(len(positions), dtype=bool)
    if lo is not None:
        mask &= (values >= lo) if lo_incl else (values > lo)
    if hi is not None:
        mask &= (values <= hi) if hi_incl else (values < hi)
    return _positions_to_candidates(bat, positions[mask])


def estimate_selectivity(bat, lo=None, hi=None, lo_incl=True,
                         hi_incl=False, sample_size=64):
    """Estimated fraction of tuples in the range, from a sample.

    Section 3.1: the kernel "may call for a sample to derive the
    expected sizes".  The sample is evenly spaced (deterministic, no
    randomness in the critical path); empty BATs estimate 0.
    """
    n = len(bat)
    if n == 0:
        return 0.0
    step = max(n // sample_size, 1)
    positions = np.arange(0, n, step, dtype=np.int64)
    values = _comparable_tail(bat, positions)
    mask = np.ones(len(positions), dtype=bool)
    if lo is not None:
        mask &= (values >= lo) if lo_incl else (values > lo)
    if hi is not None:
        mask &= (values <= hi) if hi_incl else (values < hi)
    return float(np.count_nonzero(mask)) / len(positions)


def select_mask(bat, mask_bat, candidates=None):
    """Candidates where an aligned bit BAT is true."""
    positions = _candidates_to_positions(bat, candidates)
    mask = mask_bat.tail[positions].astype(bool)
    return _positions_to_candidates(bat, positions[mask])


# ---------------------------------------------------------------------------
# projection (tuple reconstruction)
# ---------------------------------------------------------------------------

def project(candidates, bat):
    """leftfetchjoin: fetch ``bat``'s tail values at the candidate oids.

    The positional array gather this compiles to is the DSM tuple
    reconstruction step (Section 4.3).
    """
    positions = _candidates_to_positions(bat, candidates)
    return bat.fetch(positions)


def project_const(candidates, value, atom):
    """A column of ``len(candidates)`` copies of a constant."""
    if atom.varsized:
        return BAT.from_values([value] * len(candidates), atom=atom)
    return BAT(atom, np.full(len(candidates), value, dtype=atom.dtype))


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

def _join_positions_fixed(ltail, rtail):
    """Equi-join positions for fixed-width tails (sort-merge based)."""
    r_order = np.argsort(rtail, kind="stable")
    r_sorted = rtail[r_order]
    left = np.searchsorted(r_sorted, ltail, side="left")
    right = np.searchsorted(r_sorted, ltail, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    l_pos = np.repeat(np.arange(len(ltail), dtype=np.int64), counts)
    # Offsets within each match run: 0..count-1 per left tuple.
    ends = np.cumsum(counts)
    run_offsets = np.arange(total, dtype=np.int64) - np.repeat(
        ends - counts, counts)
    r_pos = r_order[np.repeat(left, counts) + run_offsets]
    return l_pos, r_pos


def _join_positions_varsized(lbat, rbat):
    """Equi-join positions for string tails (heap-independent)."""
    lvalues = lbat.heap.get_many(lbat.tail)
    rvalues = rbat.heap.get_many(rbat.tail)
    by_value = {}
    for j, v in enumerate(rvalues):
        if v is not None:
            by_value.setdefault(v, []).append(j)
    l_pos = []
    r_pos = []
    for i, v in enumerate(lvalues):
        for j in by_value.get(v, ()):
            l_pos.append(i)
            r_pos.append(j)
    return (np.asarray(l_pos, dtype=np.int64),
            np.asarray(r_pos, dtype=np.int64))


def join(lbat, rbat):
    """Equi-join on tail values: aligned (left, right) candidate lists.

    Left order is preserved (a *leftjoin* in MonetDB terms), which keeps
    void-headed intermediates aligned during tuple reconstruction.
    """
    if lbat.atom.varsized != rbat.atom.varsized:
        raise TypeError("cannot join {0} with {1}".format(
            lbat.atom, rbat.atom))
    if lbat.atom.varsized:
        l_pos, r_pos = _join_positions_varsized(lbat, rbat)
    else:
        l_pos, r_pos = _join_positions_fixed(lbat.tail, rbat.tail)
    return (_positions_to_candidates(lbat, l_pos),
            _positions_to_candidates(rbat, r_pos))


def nested_loop_join(lbat, rbat):
    """Reference O(n*m) equi-join used to validate every other join."""
    lvalues = lbat.decoded()
    rvalues = rbat.decoded()
    l_pos = []
    r_pos = []
    for i, lv in enumerate(lvalues):
        for j, rv in enumerate(rvalues):
            if lv == rv and lv is not None:
                l_pos.append(i)
                r_pos.append(j)
    return (_positions_to_candidates(lbat, np.asarray(l_pos, dtype=np.int64)),
            _positions_to_candidates(rbat, np.asarray(r_pos, dtype=np.int64)))


def semijoin(lbat, rbat):
    """Candidates of ``lbat`` whose tail value occurs in ``rbat``."""
    if lbat.atom.varsized:
        rset = set(v for v in rbat.heap.get_many(rbat.tail) if v is not None)
        mask = np.asarray([v in rset for v in lbat.heap.get_many(lbat.tail)])
    else:
        mask = np.isin(lbat.tail, rbat.tail)
    return _positions_to_candidates(lbat, np.flatnonzero(mask))


def antijoin(lbat, rbat):
    """Candidates of ``lbat`` whose tail value does not occur in ``rbat``."""
    if lbat.atom.varsized:
        rset = set(v for v in rbat.heap.get_many(rbat.tail) if v is not None)
        mask = np.asarray([v not in rset
                           for v in lbat.heap.get_many(lbat.tail)])
    else:
        mask = ~np.isin(lbat.tail, rbat.tail)
    return _positions_to_candidates(lbat, np.flatnonzero(mask))


# ---------------------------------------------------------------------------
# candidate-list set operations
# ---------------------------------------------------------------------------

def cand_intersect(a, b):
    return BAT(OID, np.intersect1d(a.tail, b.tail), tsorted=True, tkey=True)


def cand_union(a, b):
    return BAT(OID, np.union1d(a.tail, b.tail), tsorted=True, tkey=True)


def cand_diff(a, b):
    return BAT(OID, np.setdiff1d(a.tail, b.tail), tsorted=True, tkey=True)


def cand_filter(candidates, mask_bat):
    """Candidates at positions where an aligned bit BAT is true.

    ``mask_bat`` must be aligned with ``candidates`` (same length) — the
    shape produced by evaluating a batcalc expression over columns already
    projected onto the candidate list.
    """
    if len(mask_bat) != len(candidates):
        raise ValueError("mask and candidate list are not aligned")
    mask = np.asarray(mask_bat.tail, dtype=bool)
    return BAT(OID, candidates.tail[mask].copy(), tkey=True)


def cand_compose(candidates, positions):
    """Candidates re-ordered/sub-set by a positions BAT.

    Used to compose a join's position output (positions *within* a
    candidate list) back into base-table oids, and to stack sort
    permutations.
    """
    pos = np.asarray(positions.tail, dtype=np.int64)
    return BAT(OID, candidates.tail[pos].copy())


# ---------------------------------------------------------------------------
# sorting and grouping
# ---------------------------------------------------------------------------

def order(bat, descending=False):
    """Stable sort order of the tail as a positions BAT (void-headed)."""
    values = _comparable_tail(bat)
    if bat.atom.varsized:
        keys = [(v is None, v if v is not None else "") for v in values]
        positions = np.asarray(
            sorted(range(len(keys)), key=keys.__getitem__), dtype=np.int64)
    else:
        positions = np.argsort(values, kind="stable").astype(np.int64)
    if descending:
        positions = positions[::-1].copy()
    return BAT(OID, positions)


def sort(bat, descending=False):
    """(sorted BAT, order BAT): tail sorted, plus the applied permutation."""
    positions = order(bat, descending=descending)
    sorted_bat = bat.fetch(positions.tail)
    sorted_bat._tsorted = not descending
    sorted_bat._trevsorted = descending
    return sorted_bat, positions


def group(bat, groups=None):
    """Group by tail value, optionally refining existing group ids.

    Returns ``(gids, extents, histogram)``:

    * ``gids`` — per-row dense group id (0..G-1), aligned with ``bat``;
    * ``extents`` — for each group, the position of its first member;
    * ``histogram`` — per-group member count.
    """
    if bat.atom.varsized:
        values = bat.tail  # offsets are interned: equal string <=> equal offset
    else:
        values = bat.tail
    if groups is not None:
        key = np.stack([groups.tail.astype(np.int64),
                        values.astype(np.int64)
                        if values.dtype.kind != "f" else
                        values.view(np.int64)], axis=1)
        _, first_pos, gids = np.unique(key, axis=0, return_index=True,
                                       return_inverse=True)
    else:
        _, first_pos, gids = np.unique(values, return_index=True,
                                       return_inverse=True)
    gids = gids.astype(np.int64).reshape(-1)
    histogram = np.bincount(gids, minlength=len(first_pos)).astype(np.int64)
    return (BAT(OID, gids),
            BAT(OID, first_pos.astype(np.int64)),
            BAT(LNG, histogram))


def sort_multi(*keys_and_flags):
    """Multi-key stable sort order.

    Arguments alternate (key BAT, ascending flag):
    ``sort_multi(k1, True, k2, False)`` orders by k1 ascending, ties by
    k2 descending.  Returns a positions BAT, like :func:`order`.
    """
    import functools
    keys = keys_and_flags[0::2]
    flags = [bool(f) for f in keys_and_flags[1::2]]
    if not keys:
        raise ValueError("sort_multi needs at least one key")
    decoded = [k.decoded() for k in keys]
    n = len(decoded[0])

    def compare(i, j):
        for values, ascending in zip(decoded, flags):
            a, b = values[i], values[j]
            if a == b:
                continue
            if a is None:
                outcome = -1
            elif b is None:
                outcome = 1
            else:
                outcome = -1 if a < b else 1
            return outcome if ascending else -outcome
        return -1 if i < j else (0 if i == j else 1)  # stability

    positions = sorted(range(n), key=functools.cmp_to_key(compare))
    return BAT(OID, np.asarray(positions, dtype=np.int64))


def cand_sort(candidates):
    """Candidate list re-sorted into ascending oid order."""
    return BAT(OID, np.sort(candidates.tail), tsorted=True, tkey=True)


def unique(bat):
    """Candidates of the first occurrence of each distinct tail value."""
    _, extents, _ = group(bat)
    positions = np.sort(extents.tail)
    return _positions_to_candidates(bat, positions)


# ---------------------------------------------------------------------------
# aggregates
# ---------------------------------------------------------------------------

def _valid_mask(bat):
    if bat.atom.varsized:
        return bat.tail != bat.heap.NIL_OFFSET
    return ~bat.atom.is_nil(bat.tail)


def aggr_count(bat):
    return int(np.count_nonzero(_valid_mask(bat)))


def aggr_sum(bat):
    mask = _valid_mask(bat)
    if not mask.any():
        return None
    values = bat.tail[mask]
    if values.dtype.kind == "f":
        return float(values.sum())
    return int(values.sum())


def aggr_min(bat):
    values = _comparable_tail(bat)
    mask = _valid_mask(bat)
    if not mask.any():
        return None
    values = values[mask]
    return min(values) if bat.atom.varsized else values.min().item()


def aggr_max(bat):
    values = _comparable_tail(bat)
    mask = _valid_mask(bat)
    if not mask.any():
        return None
    values = values[mask]
    return max(values) if bat.atom.varsized else values.max().item()


def aggr_avg(bat):
    count = aggr_count(bat)
    if count == 0:
        return None
    return aggr_sum(bat) / count


def grouped_sum(bat, gids, ngroups):
    """Per-group sums as a BAT aligned with group ids 0..ngroups-1."""
    weights = bat.tail.astype(np.float64)
    sums = np.bincount(gids.tail, weights=weights, minlength=ngroups)
    if bat.tail.dtype.kind == "f":
        return BAT(DBL, sums)
    return BAT(LNG, sums.astype(np.int64))


def grouped_count(bat, gids, ngroups):
    counts = np.bincount(gids.tail, minlength=ngroups)
    return BAT(LNG, counts.astype(np.int64))


def grouped_min(bat, gids, ngroups):
    out = np.full(ngroups, np.inf)
    np.minimum.at(out, gids.tail, bat.tail.astype(np.float64))
    return _grouped_extreme_result(bat, out)


def grouped_max(bat, gids, ngroups):
    out = np.full(ngroups, -np.inf)
    np.maximum.at(out, gids.tail, bat.tail.astype(np.float64))
    return _grouped_extreme_result(bat, out)


def _grouped_extreme_result(bat, out):
    if bat.tail.dtype.kind == "f":
        return BAT(DBL, out)
    return BAT(bat.atom, out.astype(bat.atom.dtype))


def grouped_avg(bat, gids, ngroups):
    sums = np.bincount(gids.tail, weights=bat.tail.astype(np.float64),
                       minlength=ngroups)
    counts = np.bincount(gids.tail, minlength=ngroups)
    with np.errstate(invalid="ignore", divide="ignore"):
        return BAT(DBL, sums / counts)


# ---------------------------------------------------------------------------
# batcalc: element-wise maps
# ---------------------------------------------------------------------------

_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_COMPARE = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_LOGIC = {
    "and": np.logical_and,
    "or": np.logical_or,
}


def _operand_array(operand):
    if isinstance(operand, BAT):
        if operand.atom.varsized:
            return np.asarray(operand.heap.get_many(operand.tail),
                              dtype=object)
        return operand.tail
    return operand


def calc(op, left, right):
    """Element-wise arithmetic/comparison/logic over BATs and scalars.

    Arithmetic yields a numeric BAT; comparisons and logic yield a bit
    BAT.  At least one operand must be a BAT; BAT operands must be
    aligned (equal length, void heads).
    """
    lval = _operand_array(left)
    rval = _operand_array(right)
    if op in _ARITH:
        result = _ARITH[op](lval, rval)
        if result.dtype.kind == "f":
            return BAT(DBL, result.astype(np.float64))
        return BAT(LNG, result.astype(np.int64))
    if op in _COMPARE:
        return BAT(BIT, _COMPARE[op](lval, rval).astype(bool))
    if op in _LOGIC:
        return BAT(BIT, _LOGIC[op](np.asarray(lval, dtype=bool),
                                   np.asarray(rval, dtype=bool)))
    raise KeyError("unknown calc operator {0!r}".format(op))


def calc_not(operand):
    return BAT(BIT, ~np.asarray(_operand_array(operand), dtype=bool))


def calc_isnil(operand):
    """Element-wise nil test (``IS NULL``).

    Nil is the atom's in-domain sentinel (var-sized atoms test the
    offset, so a None string is nil).  Boolean BATs are never nil: the
    engine does not model three-valued logic, so a comparison result
    ``IS NULL`` is all-false rather than treating False (the bit
    atom's nominal sentinel) as missing.
    """
    if not isinstance(operand, BAT):
        return operand is None
    if operand.atom is BIT or operand.atom.dtype.kind == "b":
        return BAT(BIT, np.zeros(len(operand), dtype=bool))
    if operand.atom.varsized:
        mask = np.asarray(operand.atom.is_nil(operand.tail), dtype=bool)
        return BAT(BIT, mask)
    return BAT(BIT, np.asarray(operand.atom.is_nil(operand.tail),
                               dtype=bool))


def ifthenelse(cond, then_bat, else_bat):
    """Element-wise conditional over aligned BATs."""
    mask = np.asarray(cond.tail, dtype=bool)
    result = np.where(mask, _operand_array(then_bat),
                      _operand_array(else_bat))
    atom = then_bat.atom if isinstance(then_bat, BAT) else else_bat.atom
    if atom.varsized:
        return BAT.from_values(list(result), atom=STR)
    return BAT(atom, result.astype(atom.dtype))
