"""BAT persistence: columns as files, loaded via memory mapping.

Section 3: "Internally, MonetDB stores columns using memory mapped
files. ... this use of arrays in virtual memory exploits the fast
in-hardware address to disk-block mapping implemented by the MMU."

A BAT serializes to ``<prefix>.tail.npy`` (plus ``<prefix>.heap`` and
``<prefix>.offsets.npy`` for var-sized atoms) and a small JSON sidecar
with the atom name and properties.  Loading uses numpy's ``mmap_mode``
so the tail array is demand-paged straight from the file — the closest
Python equivalent of the paper's design.  Appends to a loaded BAT
copy-on-write into anonymous memory (numpy concatenation), exactly like
MonetDB's delta story.
"""

import json
import os

import numpy as np

from repro.core.atoms import atom_by_name
from repro.core.bat import BAT
from repro.core.heap import StringHeap


def save_bat(bat, prefix):
    """Write a void-headed BAT to ``<prefix>.*``; returns the sidecar
    path."""
    if not bat.hdense:
        raise ValueError("only void-headed BATs persist (like MonetDB)")
    np.save(prefix + ".tail.npy", bat.tail)
    meta = {
        "atom": bat.atom.name,
        "count": len(bat),
        "hseqbase": bat.hseqbase,
    }
    if bat.atom.varsized:
        with open(prefix + ".heap", "wb") as handle:
            handle.write(bytes(bat.heap._data))
    sidecar = prefix + ".bat.json"
    with open(sidecar, "w") as handle:
        json.dump(meta, handle)
    return sidecar


def load_bat(prefix, mmap=True):
    """Load a BAT saved by :func:`save_bat`.

    With ``mmap=True`` the tail is a read-only memory map: point
    lookups page in exactly the blocks they touch.
    """
    with open(prefix + ".bat.json") as handle:
        meta = json.load(handle)
    atom = atom_by_name(meta["atom"])
    tail = np.load(prefix + ".tail.npy",
                   mmap_mode="r" if mmap else None)
    heap = None
    if atom.varsized:
        heap = StringHeap()
        with open(prefix + ".heap", "rb") as handle:
            heap._data = bytearray(handle.read())
        heap._intern = _rebuild_intern(heap._data)
    return BAT(atom, tail, hseqbase=meta["hseqbase"], heap=heap)


def _rebuild_intern(data):
    """Reconstruct the interning map from the NUL-separated heap."""
    intern = {}
    offset = 0
    while offset < len(data):
        end = data.index(b"\0", offset)
        value = data[offset:end].decode("utf-8", "surrogatepass")
        intern.setdefault(value, offset)
        offset = end + 1
    return intern


def save_database(db, directory):
    """Persist a whole Database's catalog and columns to a directory."""
    os.makedirs(directory, exist_ok=True)
    schema = {}
    for name, table in db.catalog.tables.items():
        schema[name] = {
            "columns": [(c, table.atoms[c].name)
                        for c in table.column_names],
            "deleted": sorted(table.deleted),
            "base_count": table.base_count,
        }
        for column in table.column_names:
            save_bat(table.bind(column),
                     os.path.join(directory,
                                  "{0}.{1}".format(name, column)))
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump(schema, handle, indent=2)


def load_database(directory, mmap=True):
    """Load a Database saved by :func:`save_database`."""
    from repro.sql import Database
    with open(os.path.join(directory, "catalog.json")) as handle:
        schema = json.load(handle)
    db = Database()
    for name, info in schema.items():
        table = db.catalog.create_table(
            name, [(c, t) for c, t in info["columns"]])
        for column, _ in info["columns"]:
            bat = load_bat(os.path.join(directory,
                                        "{0}.{1}".format(name, column)),
                           mmap=mmap)
            table.columns[column] = bat
        table.deleted = set(info["deleted"])
        table.base_count = info["base_count"]
    return db
