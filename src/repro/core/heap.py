"""Variable-width value heaps.

The paper (Section 3): "variable-width types are split into two arrays,
one with offsets, and the other with all concatenated data".  The
:class:`StringHeap` is the concatenated-data half; the offsets live in the
BAT tail array.  Identical strings are interned, so repeated values share
one heap entry — which is also what makes dictionary compression natural
for column stores.
"""

import numpy as np


class StringHeap:
    """Append-only heap of NUL-terminated UTF-8 strings.

    Offsets returned by :meth:`put` are stable forever; offset ``-1`` is
    the nil string.
    """

    NIL_OFFSET = -1

    def __init__(self):
        self._data = bytearray()
        self._intern = {}

    def __len__(self):
        return len(self._data)

    @property
    def nbytes(self):
        return len(self._data)

    def put(self, value):
        """Store a string, returning its heap offset (interned)."""
        if value is None:
            return self.NIL_OFFSET
        offset = self._intern.get(value)
        if offset is None:
            offset = len(self._data)
            self._data += value.encode("utf-8", "surrogatepass") + b"\0"
            self._intern[value] = offset
        return offset

    def put_many(self, values):
        """Store an iterable of strings; return an int64 offset array."""
        return np.fromiter((self.put(v) for v in values), dtype=np.int64,
                           count=len(values))

    def get(self, offset):
        """Fetch the string at ``offset`` (None for the nil offset)."""
        offset = int(offset)
        if offset == self.NIL_OFFSET:
            return None
        end = self._data.index(b"\0", offset)
        return self._data[offset:end].decode("utf-8", "surrogatepass")

    def get_many(self, offsets):
        return [self.get(o) for o in np.asarray(offsets)]

    def __contains__(self, value):
        return value in self._intern

    def find(self, value):
        """Offset of ``value`` if already interned, else None.

        Selections on string BATs use this: when the literal is not in the
        heap, no tuple can match, without scanning anything.
        """
        if value is None:
            return self.NIL_OFFSET
        return self._intern.get(value)

    def __repr__(self):
        return "StringHeap({0} bytes, {1} strings)".format(
            len(self._data), len(self._intern))
