"""The kernel registry: MAL operation names -> BAT Algebra implementations.

This is the third tier of Section 3.1 — "the library of highly optimized
implementations of the binary relational algebra operators" — exposed
under the dotted names MAL instructions use (``algebra.select``,
``batcalc.+``, ``aggr.sum``, ...).  The MAL interpreter resolves each
instruction against this registry; optimizer modules rewrite programs in
terms of these same names.
"""

from dataclasses import dataclass

from repro.core import algebra
from repro.core.bat import BAT


@dataclass(frozen=True)
class KernelFunction:
    """A registered kernel operation."""

    name: str
    fn: callable
    n_results: int = 1

    def __call__(self, *args):
        return self.fn(*args)


KERNEL = {}


def register(name, fn, n_results=1):
    if name in KERNEL:
        raise ValueError("duplicate kernel op {0!r}".format(name))
    KERNEL[name] = KernelFunction(name, fn, n_results)
    return KERNEL[name]


def lookup_op(name):
    try:
        return KERNEL[name]
    except KeyError:
        raise KeyError("unknown kernel operation {0!r}".format(name)) \
            from None


# -- selections -------------------------------------------------------------

register("algebra.select", algebra.select_eq)
register("algebra.selectrange", algebra.select_range)
register("algebra.selectmask", algebra.select_mask)

# -- projection ---------------------------------------------------------------

register("algebra.project", algebra.project)
register("algebra.leftfetchjoin", algebra.project)  # MonetDB's classic name
register("algebra.projectconst", algebra.project_const)


def _const_column(aligned, value, atom_name):
    from repro.core.atoms import atom_by_name
    return algebra.project_const(aligned, value, atom_by_name(atom_name))


register("sql.constcolumn", _const_column)

# -- joins ---------------------------------------------------------------------

register("algebra.join", algebra.join, n_results=2)
register("algebra.semijoin", algebra.semijoin)
register("algebra.antijoin", algebra.antijoin)

# -- candidate set operations ---------------------------------------------------

register("candidates.intersect", algebra.cand_intersect)
register("candidates.union", algebra.cand_union)
register("candidates.diff", algebra.cand_diff)
register("candidates.filter", algebra.cand_filter)
register("candidates.compose", algebra.cand_compose)

# -- sorting / grouping -----------------------------------------------------------

register("algebra.sort", algebra.sort, n_results=2)
register("algebra.order", algebra.order)
register("algebra.sortmulti", algebra.sort_multi)
register("algebra.unique", algebra.unique)
register("group.group", algebra.group, n_results=3)
register("candidates.sort", algebra.cand_sort)

# -- aggregates -------------------------------------------------------------------

register("aggr.count", algebra.aggr_count)
register("aggr.sum", algebra.aggr_sum)
register("aggr.min", algebra.aggr_min)
register("aggr.max", algebra.aggr_max)
register("aggr.avg", algebra.aggr_avg)
register("aggr.grouped_sum", algebra.grouped_sum)
register("aggr.grouped_count", algebra.grouped_count)
register("aggr.grouped_min", algebra.grouped_min)
register("aggr.grouped_max", algebra.grouped_max)
register("aggr.grouped_avg", algebra.grouped_avg)

# -- element-wise calculations -------------------------------------------------------

for _op in ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
            "and", "or"):
    register("batcalc." + _op,
             (lambda op: lambda left, right: algebra.calc(op, left, right))
             (_op))
register("batcalc.not", algebra.calc_not)
register("batcalc.isnil", algebra.calc_isnil)
register("batcalc.ifthenelse", algebra.ifthenelse)

# -- scalar calculations (fold-able by the constant-folding optimizer) --------

import operator as _operator

_SCALAR_OPS = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
    "==": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}

for _name, _fn in _SCALAR_OPS.items():
    register("calc." + _name, _fn)
register("calc.not", lambda a: not a)
register("calc.isnil", lambda a: a is None)

# -- structural BAT operations ----------------------------------------------------------

register("bat.mirror", BAT.mirror)
register("bat.reverse", BAT.reverse)
register("bat.mark", BAT.mark)
register("bat.slice", lambda b, lo, hi: b.slice(int(lo), int(hi)))
register("bat.copy", BAT.copy)
register("bat.count", lambda b: len(b))
