"""The MonetDB core: BAT storage (DSM) and the BAT Algebra.

This package implements the paper's Figure 1: relational data decomposed
into Binary Association Tables (BATs) — two simple memory arrays with a
(usually virtual, densely ascending) surrogate *head* and a value *tail* —
and the zero-degrees-of-freedom bulk operators of the BAT Algebra that a
MAL program is compiled into.
"""

from repro.core.atoms import (
    Atom,
    BIT,
    DBL,
    FLT,
    INT,
    LNG,
    OID,
    STR,
    atom_by_name,
    nil_value,
)
from repro.core.heap import StringHeap
from repro.core.bat import BAT, AddressSpace, global_address_space
from repro.core import algebra
from repro.core.kernel import KERNEL, KernelFunction, lookup_op
from repro.core.persist import (
    load_bat,
    load_database,
    save_bat,
    save_database,
)

__all__ = [
    "Atom",
    "OID",
    "BIT",
    "INT",
    "LNG",
    "FLT",
    "DBL",
    "STR",
    "atom_by_name",
    "nil_value",
    "StringHeap",
    "BAT",
    "AddressSpace",
    "global_address_space",
    "algebra",
    "KERNEL",
    "KernelFunction",
    "lookup_op",
    "save_bat",
    "load_bat",
    "save_database",
    "load_database",
]
