"""SQL-driven continuous queries: the DataCell on the full stack.

Section 6.2: "The DataCell aims at using the complete software stack of
MonetDB to provide a rich data stream management solution ... The
enhanced SQL functionality allows for general predicate based window
processing."

Here the basket *is* a table: each flush replaces the basket table's
contents and re-runs every registered SQL statement through the normal
parser → compiler → optimizer → interpreter path, appending the result
rows to the query's output stream.  Windows spanning basket boundaries
remain the domain of :mod:`repro.datacell.windows`; this bridge covers
the per-basket (tumbling-basket) SQL semantics.
"""

from repro.datacell.basket import Basket
from repro.sql import Database


class SQLStreamEngine:
    """Continuous SQL queries over a basket table.

    Parameters
    ----------
    schema:
        Ordered (column name, type name) pairs of the event stream.
    basket_size:
        Events per basket (the bulk knob, as in
        :class:`repro.datacell.engine.DataCellEngine`).
    table_name:
        Name of the basket table the queries select from.
    """

    def __init__(self, schema, basket_size=1024, table_name="stream"):
        self.schema = list(schema)
        self.table_name = table_name
        self.db = Database()
        self.db.execute("CREATE TABLE {0} ({1})".format(
            table_name,
            ", ".join("{0} {1}".format(n, t) for n, t in self.schema)))
        self.basket = Basket([n for n, _ in self.schema], basket_size)
        self.queries = {}     # name -> SQL text
        self.results = {}     # name -> list of result-row lists
        self.baskets_processed = 0

    def register(self, name, sql_text):
        """Register a continuous SELECT over the basket table."""
        if name in self.queries:
            raise ValueError("duplicate query {0!r}".format(name))
        self.queries[name] = sql_text
        self.results[name] = []
        return name

    def push(self, event):
        self.basket.append(event)
        if self.basket.full:
            self.flush()

    def push_many(self, events):
        for event in events:
            self.push(event)

    def flush(self):
        """Process the current basket through every registered query."""
        if len(self.basket) == 0:
            return
        columns = self.basket.drain()
        table = self.db.catalog.get(self.table_name)
        # Replace the basket table's contents (cheap: delta machinery).
        if table.visible_count:
            table.delete_oids(table.tid().decoded())
        rows = list(zip(*(columns[name].tolist()
                          for name, _ in self.schema)))
        table.append_rows(rows)
        table.merge_deltas()
        for name, sql_text in self.queries.items():
            result = self.db.execute(sql_text)
            if len(result):
                self.results[name].extend(result.rows())
        self.baskets_processed += 1

    def stream(self, name):
        try:
            return self.results[name]
        except KeyError:
            raise KeyError("no continuous query {0!r}".format(name)) \
                from None
