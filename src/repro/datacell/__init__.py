"""DataCell: stream processing on the columnar kernel (Section 6.2).

"The DataCell aims at using the complete software stack of MonetDB to
provide a rich data stream management solution.  Its salient feature is
to focus on incremental bulk-event processing using the binary
relational algebra engine.  The enhanced SQL functionality allows for
general predicate based window processing."

Events flow into *baskets* (columnar event buffers); continuous queries
fire per basket, evaluating their predicates and window aggregates with
bulk vectorized primitives.  Basket size 1 degenerates to classic
per-event stream processing — the baseline experiment E11 sweeps
against.
"""

from repro.datacell.basket import Basket
from repro.datacell.windows import (
    PredicateWindow,
    SlidingCountWindow,
    TumblingCountWindow,
)
from repro.datacell.engine import ContinuousQuery, DataCellEngine
from repro.datacell.sql_bridge import SQLStreamEngine

__all__ = [
    "Basket",
    "ContinuousQuery",
    "DataCellEngine",
    "SQLStreamEngine",
    "TumblingCountWindow",
    "SlidingCountWindow",
    "PredicateWindow",
]
