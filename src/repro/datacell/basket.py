"""Baskets: columnar event buffers.

A basket is the DataCell's unit of work: events accumulate in
column-major order, and when the engine fires, the whole basket is
handed to the bulk operators at once.
"""

import numpy as np


class Basket:
    """A bounded columnar buffer of events."""

    def __init__(self, schema, capacity):
        """``schema``: ordered attribute names; ``capacity``: events held
        before the basket reports itself full."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.schema = list(schema)
        self.capacity = capacity
        self._columns = {name: [] for name in self.schema}
        self.events_seen = 0

    def __len__(self):
        return len(self._columns[self.schema[0]]) if self.schema else 0

    @property
    def full(self):
        return len(self) >= self.capacity

    def append(self, event):
        """Add one event (tuple in schema order)."""
        if len(event) != len(self.schema):
            raise ValueError("event arity mismatch: {0!r}".format(event))
        for name, value in zip(self.schema, event):
            self._columns[name].append(value)
        self.events_seen += 1

    def drain(self):
        """Take all buffered events as numpy columns; empties the basket."""
        out = {name: np.asarray(values)
               for name, values in self._columns.items()}
        self._columns = {name: [] for name in self.schema}
        return out

    def __repr__(self):
        return "Basket({0}/{1} events)".format(len(self), self.capacity)
