"""Window semantics for continuous queries.

Windows consume a stream of (already filtered) event columns and decide
when to *fire* an aggregate over which events.  The predicate window is
the DataCell's distinguishing generality: window membership is decided
by an arbitrary predicate over event attributes rather than a fixed
count or time width.
"""

import numpy as np

from repro.vectorized.expressions import compile_expr


class _BufferedWindow:
    """Shared machinery: an append-only columnar buffer of events."""

    def __init__(self):
        self._buffer = None

    def _extend(self, columns):
        if self._buffer is None:
            self._buffer = {k: np.asarray(v) for k, v in columns.items()}
        else:
            self._buffer = {k: np.concatenate([self._buffer[k],
                                               np.asarray(columns[k])])
                            for k in self._buffer}

    def _size(self):
        if self._buffer is None:
            return 0
        return len(next(iter(self._buffer.values()), []))

    def _take(self, count):
        """First ``count`` buffered events, removing them."""
        taken = {k: v[:count] for k, v in self._buffer.items()}
        self._buffer = {k: v[count:] for k, v in self._buffer.items()}
        return taken

    def _peek(self, count):
        return {k: v[:count] for k, v in self._buffer.items()}


class TumblingCountWindow(_BufferedWindow):
    """Fire once per ``width`` events; windows do not overlap."""

    def __init__(self, width):
        super().__init__()
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width

    def feed(self, columns):
        """Feed filtered events; yield one column-dict per fired window."""
        self._extend(columns)
        while self._size() >= self.width:
            yield self._take(self.width)


class SlidingCountWindow(_BufferedWindow):
    """Fire every ``slide`` events over the last ``width`` events."""

    def __init__(self, width, slide):
        super().__init__()
        if width < 1 or slide < 1:
            raise ValueError("width and slide must be positive")
        self.width = width
        self.slide = slide
        self._pending = 0

    def feed(self, columns):
        self._extend(columns)
        self._pending += len(next(iter(columns.values()), []))
        while self._size() >= self.width and self._pending >= self.slide:
            yield self._peek(self.width)
            self._take(self.slide)
            self._pending -= self.slide


class PredicateWindow(_BufferedWindow):
    """Fire when a closing predicate holds; the window holds every
    buffered event for which the *membership* predicate holds.

    ``member`` and ``close`` are vectorized expression specs over the
    event attributes (see
    :func:`repro.vectorized.expressions.compile_expr`); the window
    closes at the first event satisfying ``close``, emits the members
    among the events up to (and including) it, and drops the rest.
    """

    def __init__(self, member, close):
        super().__init__()
        self.member = compile_expr(member)
        self.close = compile_expr(close)

    def feed(self, columns):
        self._extend(columns)
        while self._size():
            from repro.vectorized.vector import Batch
            batch = Batch(self._buffer)
            closing = np.asarray(self.close(batch), dtype=bool)
            hits = np.flatnonzero(closing)
            if len(hits) == 0:
                return
            end = int(hits[0]) + 1
            window = self._take(end)
            member_mask = np.asarray(
                self.member(Batch(window)), dtype=bool)
            yield {k: v[member_mask] for k, v in window.items()}
