"""The DataCell engine: baskets feeding continuous bulk queries."""

import numpy as np

from repro.datacell.basket import Basket
from repro.vectorized.expressions import compile_expr
from repro.vectorized.vector import Batch

_AGGREGATES = {
    "sum": lambda v: float(np.sum(v)),
    "count": lambda v: int(len(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "avg": lambda v: float(np.mean(v)),
}


class ContinuousQuery:
    """One standing query: filter -> window -> aggregate.

    Parameters
    ----------
    name:
        Identifier for the result stream.
    predicate:
        Vectorized expression spec filtering events (None keeps all).
    window:
        A window from :mod:`repro.datacell.windows` (None aggregates
        each basket as it comes, an implicit basket-tumbling window).
    aggregate:
        ``(kind, attribute)`` with kind in sum/count/min/max/avg, or
        None to emit the raw qualifying events.
    """

    def __init__(self, name, predicate=None, window=None, aggregate=None):
        self.name = name
        self.predicate = compile_expr(predicate) \
            if predicate is not None else None
        self.window = window
        if aggregate is not None:
            kind, attribute = aggregate
            if kind not in _AGGREGATES:
                raise KeyError("unknown aggregate {0!r}".format(kind))
        self.aggregate = aggregate
        self.results = []
        self.events_processed = 0
        self.activations = 0

    def process(self, columns):
        """Feed one drained basket's columns through the query."""
        self.activations += 1
        n = len(next(iter(columns.values()), []))
        if n == 0:
            return
        self.events_processed += n
        if self.predicate is not None:
            mask = np.asarray(self.predicate(Batch(columns)), dtype=bool)
            if not mask.any():
                return
            columns = {k: np.asarray(v)[mask] for k, v in columns.items()}
        if self.window is not None:
            for fired in self.window.feed(columns):
                self._emit(fired)
        else:
            self._emit(columns)

    def _emit(self, columns):
        n = len(next(iter(columns.values()), []))
        if n == 0:
            return
        if self.aggregate is None:
            self.results.append(columns)
            return
        kind, attribute = self.aggregate
        self.results.append(_AGGREGATES[kind](columns[attribute]))


class DataCellEngine:
    """Routes an event stream through a basket into continuous queries.

    ``basket_size`` is the bulk knob of experiment E11: size 1 is
    per-event processing; larger baskets amortize each query's fixed
    activation cost over many events.
    """

    def __init__(self, schema, basket_size=1024):
        self.basket = Basket(schema, basket_size)
        self.queries = []

    def register(self, query):
        self.queries.append(query)
        return query

    def push(self, event):
        """Ingest one event; fires the queries when the basket fills."""
        self.basket.append(event)
        if self.basket.full:
            self.flush()

    def push_many(self, events):
        for event in events:
            self.push(event)

    def flush(self):
        """Force processing of a partially filled basket."""
        if len(self.basket) == 0:
            return
        columns = self.basket.drain()
        for query in self.queries:
            query.process(columns)

    def query(self, name):
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError("no continuous query {0!r}".format(name))
