"""The DataCell engine: baskets feeding continuous bulk queries."""

import numpy as np

from repro.datacell.basket import Basket
from repro.faults import NO_FAULTS, TransientFault
from repro.vectorized.expressions import compile_expr
from repro.vectorized.vector import Batch

_AGGREGATES = {
    "sum": lambda v: float(np.sum(v)),
    "count": lambda v: int(len(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "avg": lambda v: float(np.mean(v)),
}


class ContinuousQuery:
    """One standing query: filter -> window -> aggregate.

    Parameters
    ----------
    name:
        Identifier for the result stream.
    predicate:
        Vectorized expression spec filtering events (None keeps all).
    window:
        A window from :mod:`repro.datacell.windows` (None aggregates
        each basket as it comes, an implicit basket-tumbling window).
    aggregate:
        ``(kind, attribute)`` with kind in sum/count/min/max/avg, or
        None to emit the raw qualifying events.
    """

    def __init__(self, name, predicate=None, window=None, aggregate=None):
        self.name = name
        self.predicate = compile_expr(predicate) \
            if predicate is not None else None
        self.window = window
        if aggregate is not None:
            kind, attribute = aggregate
            if kind not in _AGGREGATES:
                raise KeyError("unknown aggregate {0!r}".format(kind))
        self.aggregate = aggregate
        self.results = []
        self.events_processed = 0
        self.activations = 0

    def process(self, columns):
        """Feed one drained basket's columns through the query."""
        self.activations += 1
        n = len(next(iter(columns.values()), []))
        if n == 0:
            return
        self.events_processed += n
        if self.predicate is not None:
            mask = np.asarray(self.predicate(Batch(columns)), dtype=bool)
            if not mask.any():
                return
            columns = {k: np.asarray(v)[mask] for k, v in columns.items()}
        if self.window is not None:
            for fired in self.window.feed(columns):
                self._emit(fired)
        else:
            self._emit(columns)

    def _emit(self, columns):
        n = len(next(iter(columns.values()), []))
        if n == 0:
            return
        if self.aggregate is None:
            self.results.append(columns)
            return
        kind, attribute = self.aggregate
        self.results.append(_AGGREGATES[kind](columns[attribute]))


class DataCellEngine:
    """Routes an event stream through a basket into continuous queries.

    ``basket_size`` is the bulk knob of experiment E11: size 1 is
    per-event processing; larger baskets amortize each query's fixed
    activation cost over many events.

    Every flush passes through the ``datacell.flush`` injection site.
    A transient fault there fails the flush *before* any query sees
    the basket; ``failure_policy`` decides the fate of the drained
    events — ``"replay"`` parks them on a pending list reprocessed at
    the head of the next flush (no event lost, delivery delayed),
    ``"drop"`` discards them (load shedding, counted in
    ``events_dropped``).  An injected latency spike only stalls the
    flush (``stall_units``); the basket still processes.
    """

    POLICIES = ("replay", "drop")

    def __init__(self, schema, basket_size=1024, faults=None,
                 failure_policy="replay"):
        if failure_policy not in self.POLICIES:
            raise ValueError("failure_policy must be one of {0}".format(
                self.POLICIES))
        self.basket = Basket(schema, basket_size)
        self.queries = []
        self.faults = faults if faults is not None else NO_FAULTS
        self.failure_policy = failure_policy
        self._pending = []
        self.flushes_failed = 0
        self.events_dropped = 0
        self.events_replayed = 0
        self.stall_units = 0

    def register(self, query):
        self.queries.append(query)
        return query

    def push(self, event):
        """Ingest one event; fires the queries when the basket fills."""
        self.basket.append(event)
        if self.basket.full:
            self.flush()

    def push_many(self, events):
        for event in events:
            self.push(event)

    def flush(self):
        """Force processing of a partially filled basket."""
        if len(self.basket) == 0 and not self._pending:
            return
        batches = []
        if self._pending:
            replayed, self._pending = self._pending, []
            batches.extend(replayed)
        if len(self.basket):
            batches.append(self.basket.drain())
        for i, columns in enumerate(batches):
            try:
                self.stall_units += self.faults.inject(
                    "datacell.flush",
                    events=len(next(iter(columns.values()), [])))
            except TransientFault:
                self.flushes_failed += 1
                failed = batches[i:]
                lost = sum(len(next(iter(c.values()), [])) for c in failed)
                if self.failure_policy == "drop":
                    self.events_dropped += lost
                else:
                    self._pending.extend(failed)
                    self.events_replayed += lost
                return
            for query in self.queries:
                query.process(columns)

    def query(self, name):
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError("no continuous query {0!r}".format(name))
