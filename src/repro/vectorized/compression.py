"""Ultra-lightweight column compression ([44], Section 5).

X100's compression schemes trade compression ratio for *decompression
speed*: all decoding is branch-free bulk work (a few cycles per tuple),
so scans can decompress at RAM bandwidth and I/O volume drops.

Schemes: RLE (sorted/clustered data), dictionary (low-cardinality),
PFOR (patched frame-of-reference: small offsets from a base, with an
exception list for outliers), PFOR-DELTA (PFOR over deltas — dense or
nearly-sorted data).
"""

from dataclasses import dataclass

import numpy as np

SCHEMES = ("rle", "dict", "pfor", "pfor-delta", "raw")

#: Decompression CPU cost per tuple, in simulated cycles ([44]: "less
#: than 5 CPU cycles per tuple").
DECODE_CYCLES_PER_TUPLE = {
    "raw": 0,
    "rle": 2,
    "dict": 2,
    "pfor": 3,
    "pfor-delta": 5,
}


@dataclass
class CompressedColumn:
    """A compressed column: scheme + payload arrays."""

    scheme: str
    count: int
    payload: dict
    dtype: object

    @property
    def nbytes(self):
        return sum(np.asarray(v).nbytes for v in self.payload.values())

    @property
    def ratio(self):
        """Uncompressed bytes / compressed bytes."""
        raw = self.count * np.dtype(self.dtype).itemsize
        return raw / self.nbytes if self.nbytes else float("inf")

    @property
    def decode_cycles(self):
        return self.count * DECODE_CYCLES_PER_TUPLE[self.scheme]


def _width_for(max_value):
    """Smallest unsigned dtype holding values up to ``max_value``."""
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return dtype
    return np.uint64


def rle_encode(values):
    values = np.asarray(values)
    if len(values) == 0:
        return CompressedColumn("rle", 0, {"values": values,
                                           "lengths": values}, values.dtype)
    change = np.flatnonzero(np.concatenate(
        [[True], values[1:] != values[:-1]]))
    run_values = values[change]
    lengths = np.diff(np.concatenate([change, [len(values)]]))
    return CompressedColumn("rle", len(values),
                            {"values": run_values,
                             "lengths": lengths.astype(np.int32)},
                            values.dtype)


def rle_decode(column):
    return np.repeat(column.payload["values"], column.payload["lengths"])


def dict_encode(values):
    values = np.asarray(values)
    dictionary, codes = np.unique(values, return_inverse=True)
    codes = codes.astype(_width_for(max(len(dictionary) - 1, 0)))
    return CompressedColumn("dict", len(values),
                            {"codes": codes, "dictionary": dictionary},
                            values.dtype)


def dict_decode(column):
    return column.payload["dictionary"][column.payload["codes"]]


def pfor_encode(values, exception_quantile=0.98):
    """Patched frame-of-reference.

    Offsets from the column minimum are stored in the smallest width
    covering ``exception_quantile`` of the values; the rest become
    patched exceptions (position + original value).
    """
    values = np.asarray(values)
    if len(values) == 0:
        return CompressedColumn("pfor", 0, {
            "base": np.asarray([0]), "codes": np.asarray([], np.uint8),
            "exc_pos": np.asarray([], np.int64),
            "exc_val": values}, values.dtype)
    base = int(values.min())
    offsets = values.astype(np.int64) - base
    cutoff = int(np.quantile(offsets, exception_quantile))
    code_dtype = _width_for(max(cutoff, 1))
    limit = np.iinfo(code_dtype).max
    exceptions = offsets > limit
    codes = np.where(exceptions, 0, offsets).astype(code_dtype)
    return CompressedColumn("pfor", len(values), {
        "base": np.asarray([base], dtype=np.int64),
        "codes": codes,
        "exc_pos": np.flatnonzero(exceptions).astype(np.int64),
        "exc_val": values[exceptions],
    }, values.dtype)


def pfor_decode(column):
    base = int(column.payload["base"][0])
    out = column.payload["codes"].astype(np.int64) + base
    exc_pos = column.payload["exc_pos"]
    if len(exc_pos):
        out[exc_pos] = column.payload["exc_val"]
    return out.astype(column.dtype)


def pfor_delta_encode(values):
    """PFOR over first-order deltas (dense/nearly-sorted columns)."""
    values = np.asarray(values)
    if len(values) == 0:
        inner = pfor_encode(values)
        return CompressedColumn("pfor-delta", 0, inner.payload,
                                values.dtype)
    deltas = np.diff(values.astype(np.int64), prepend=np.int64(0))
    inner = pfor_encode(deltas)
    return CompressedColumn("pfor-delta", len(values), inner.payload,
                            values.dtype)


def pfor_delta_decode(column):
    inner = CompressedColumn("pfor", column.count, column.payload,
                             np.int64)
    deltas = pfor_decode(inner)
    return np.cumsum(deltas).astype(column.dtype)


_ENCODERS = {
    "rle": rle_encode,
    "dict": dict_encode,
    "pfor": pfor_encode,
    "pfor-delta": pfor_delta_encode,
}

_DECODERS = {
    "rle": rle_decode,
    "dict": dict_decode,
    "pfor": pfor_decode,
    "pfor-delta": pfor_delta_decode,
}


def compress(values, scheme=None):
    """Compress with an explicit scheme or the heuristic choice."""
    values = np.asarray(values)
    if scheme is None:
        scheme = choose_scheme(values)
    if scheme == "raw":
        return CompressedColumn("raw", len(values), {"values": values},
                                values.dtype)
    try:
        return _ENCODERS[scheme](values)
    except KeyError:
        raise KeyError("unknown scheme {0!r}; available: {1}".format(
            scheme, SCHEMES)) from None


def decompress(column):
    if column.scheme == "raw":
        return column.payload["values"]
    return _DECODERS[column.scheme](column)


def choose_scheme(values):
    """Pick the scheme with the best ratio on a sample (cheap heuristic)."""
    values = np.asarray(values)
    if len(values) == 0 or values.dtype.kind not in "iu":
        return "raw"
    # Run detection needs a *contiguous* sample: strided sampling would
    # jump over runs entirely.
    contiguous = values[:4096]
    runs = np.count_nonzero(np.diff(contiguous)) + 1
    if runs < len(contiguous) / 4:
        return "rle"
    sample = values[:: max(len(values) // 1024, 1)]
    distinct = len(np.unique(sample))
    if distinct <= max(len(sample) // 8, 1):
        return "dict"
    spread = int(sample.max()) - int(sample.min())
    delta_spread = int(np.abs(np.diff(sample.astype(np.int64))).max()) \
        if len(sample) > 1 else 0
    if delta_spread and delta_spread < spread // 256:
        return "pfor-delta"
    if spread < 1 << 16:
        return "pfor"
    return "raw"
