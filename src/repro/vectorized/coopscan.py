"""Cooperative scans ([45], Section 5): "multiple active queries
cooperate to create synergy rather than competition for I/O resources."

A :class:`ScanQuery` needs every page of a range, in *any* order — the
relaxation cooperative scans exploit.  Two scheduling policies:

* ``independent`` — classic: each query delivers pages *in order*; it
  can only consume the page at its own cursor, reading it through the
  shared LRU buffer.  Staggered concurrent scans sit at different
  positions, so pages get evicted between cursors and are re-read.
* ``cooperative`` — an ABM-style scheduler exploiting the relaxation
  that a scan may consume relevant pages in *any* order: queries first
  drain whatever relevant pages are buffered; on a miss, the page
  chosen for I/O is the one *most* queries still need, so one transfer
  feeds many queries.
"""

from dataclasses import dataclass, field

from repro.vectorized.buffer import BufferManager


@dataclass
class ScanQuery:
    """One scan of pages [start, stop) that may consume out of order.

    ``arrival_ms`` staggers query starts — the realistic case where
    concurrent scans are at different positions, which is what makes
    independent LRU scanning re-read pages.
    """

    name: str
    start: int
    stop: int
    arrival_ms: float = 0.0
    needed: set = field(init=False)
    finish_time_ms: float = None

    def __post_init__(self):
        if self.stop <= self.start:
            raise ValueError("empty scan range")
        self.needed = set(range(self.start, self.stop))

    @property
    def done(self):
        return not self.needed

    def consume(self, page_id):
        self.needed.discard(page_id)


def run_scans(queries, disk, buffer_capacity, policy="cooperative",
              read_ahead=4):
    """Run concurrent scans to completion; returns the buffer manager.

    Scheduling proceeds in rounds: each round, every unfinished query
    first consumes all relevant buffered pages; then one I/O is issued
    according to the policy.  Query finish times are stamped from the
    disk's virtual clock.
    """
    if policy not in ("cooperative", "independent"):
        raise KeyError("unknown policy {0!r}".format(policy))
    buffer = BufferManager(disk, buffer_capacity, read_ahead=read_ahead)
    pending = list(queries)
    rr = 0  # round-robin cursor for the independent policy
    while any(not q.done for q in pending):
        arrived = [q for q in pending
                   if q.arrival_ms <= disk.stats.time_ms]
        # Consume phase.  Independent scans deliver in order: only the
        # cursor page is consumable.  Cooperative scans drain any
        # relevant resident page — the order relaxation that creates
        # the synergy.
        for query in arrived:
            if query.done:
                continue
            if policy == "independent":
                while query.needed and min(query.needed) in buffer:
                    page = min(query.needed)
                    buffer.get(page)
                    query.consume(page)
            else:
                for page in [p for p in query.needed if p in buffer]:
                    buffer.get(page)
                    query.consume(page)
            if query.done and query.finish_time_ms is None:
                query.finish_time_ms = disk.stats.time_ms
        active = [q for q in arrived if not q.done]
        if not active:
            future = [q.arrival_ms for q in pending if not q.done]
            if not future:
                break
            disk.idle_until(min(future))
            continue
        # I/O phase: one decision per round.
        if policy == "independent":
            query = active[rr % len(active)]
            rr += 1
            page = min(query.needed)
        else:
            demand = {}
            for query in active:
                for page in query.needed:
                    demand[page] = demand.get(page, 0) + 1
            # Most-demanded page; ties broken towards sequentiality.
            page = max(demand, key=lambda p: (demand[p], -p))
        buffer.get(page)
        for query in active:
            if page in query.needed:
                query.consume(page)
                if query.done:
                    query.finish_time_ms = disk.stats.time_ms
    return buffer
