"""Vectorized expression primitives.

Expressions are evaluated per batch with one numpy bulk call per node —
the X100 "primitives" whose per-tuple cost amortizes the interpretation
overhead over the vector length.
"""

import numpy as np

_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "and": np.logical_and,
    "or": np.logical_or,
}


class Expression:
    """Base class: callable on a Batch, returns a numpy array."""

    def __call__(self, batch):
        raise NotImplementedError


class Col(Expression):
    def __init__(self, name):
        self.name = name

    def __call__(self, batch):
        return batch.column(self.name)

    def __repr__(self):
        return "Col({0!r})".format(self.name)


class Const(Expression):
    def __init__(self, value):
        self.value = value

    def __call__(self, batch):
        return self.value

    def __repr__(self):
        return "Const({0!r})".format(self.value)


class BinExpr(Expression):
    def __init__(self, op, left, right):
        if op not in _OPS:
            raise KeyError("unknown vector op {0!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def __call__(self, batch):
        return _OPS[self.op](self.left(batch), self.right(batch))

    def __repr__(self):
        return "({0!r} {1} {2!r})".format(self.left, self.op, self.right)


class NotExpr(Expression):
    def __init__(self, operand):
        self.operand = operand

    def __call__(self, batch):
        return np.logical_not(self.operand(batch))


def compile_expr(spec):
    """Build an expression from a nested tuple spec.

    ``("*", ("col", "qty"), ("const", 2))`` and plain strings/values as
    shorthands: a string is a column, any other scalar a constant.
    """
    if isinstance(spec, Expression):
        return spec
    if isinstance(spec, str):
        return Col(spec)
    if isinstance(spec, tuple):
        head = spec[0]
        if head == "col":
            return Col(spec[1])
        if head == "const":
            return Const(spec[1])
        if head == "not":
            return NotExpr(compile_expr(spec[1]))
        return BinExpr(head, compile_expr(spec[1]), compile_expr(spec[2]))
    return Const(spec)
