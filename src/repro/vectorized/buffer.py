"""Explicit buffer manager over a simulated sequential-I/O disk.

"Rather than relying on memory-mapped files for I/O, X100 uses an
explicit buffer manager optimized for sequential I/O" (Section 5).  The
simulated disk charges a seek whenever a read is not adjacent to the
previous one, making the sequential-vs-random asymmetry explicit; the
buffer manager adds LRU caching and read-ahead.
"""

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class DiskStats:
    reads: int = 0
    seeks: int = 0
    time_ms: float = 0.0


class SimulatedDisk:
    """A disk of ``n_pages`` pages with seek + transfer cost accounting."""

    def __init__(self, n_pages, seek_ms=4.0, transfer_ms=0.1):
        self.n_pages = n_pages
        self.seek_ms = seek_ms
        self.transfer_ms = transfer_ms
        self.stats = DiskStats()
        self._head = -1  # nothing under the head yet: first read seeks

    def read(self, page_id):
        """Read one page, charging seek cost on non-adjacent access."""
        if not 0 <= page_id < self.n_pages:
            raise IndexError("page {0} out of range".format(page_id))
        self.stats.reads += 1
        if page_id != self._head:
            self.stats.seeks += 1
            self.stats.time_ms += self.seek_ms
        self.stats.time_ms += self.transfer_ms
        self._head = page_id + 1
        return page_id

    def idle_until(self, time_ms):
        """Advance the virtual clock (disk idle, waiting for arrivals)."""
        self.stats.time_ms = max(self.stats.time_ms, time_ms)


class BufferManager:
    """An LRU pool of ``capacity`` pages with optional read-ahead.

    ``get(page)`` returns True on a buffer hit; misses read from disk
    (plus ``read_ahead`` sequential successors, amortizing the seek).
    """

    def __init__(self, disk, capacity, read_ahead=0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.disk = disk
        self.capacity = capacity
        self.read_ahead = read_ahead
        self.hits = 0
        self.misses = 0
        self._pool = OrderedDict()

    def __contains__(self, page_id):
        return page_id in self._pool

    @property
    def resident(self):
        return list(self._pool)

    def get(self, page_id):
        if page_id in self._pool:
            self._pool.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._admit(self.disk.read(page_id))
        for ahead in range(page_id + 1, min(page_id + 1 + self.read_ahead,
                                            self.disk.n_pages)):
            if ahead not in self._pool:
                self._admit(self.disk.read(ahead))
        return False

    def _admit(self, page_id):
        self._pool[page_id] = None
        self._pool.move_to_end(page_id)
        while len(self._pool) > self.capacity:
            self._pool.popitem(last=False)

    def pin_state(self):
        """(hits, misses) snapshot for delta accounting."""
        return (self.hits, self.misses)
