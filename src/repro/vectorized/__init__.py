"""The X100 vectorized execution engine (Section 5).

X100 "conserves the efficient zero-degree-of-freedom columnar operators
found in MonetDB's BAT Algebra, but embeds them in a pipelined
relational execution model, where small slices of columns (called
'vectors'), rather than entire columns, are pulled top-down through a
relational operator tree."

* :mod:`repro.vectorized.operators` — the pull-based operator tree;
  vector size 1 degenerates to tuple-at-a-time, the full column length
  to MonetDB-style operator-at-a-time (experiment E5 sweeps between).
* :mod:`repro.vectorized.expressions` — vectorized primitives.
* :mod:`repro.vectorized.compression` — the ultra-light compression
  schemes of [44]: RLE, dictionary, PFOR, PFOR-DELTA.
* :mod:`repro.vectorized.buffer` — an explicit buffer manager over a
  simulated sequential-I/O-optimized disk.
* :mod:`repro.vectorized.coopscan` — cooperative scans [45].
"""

from repro.vectorized.vector import Batch
from repro.vectorized.expressions import Col, Const, BinExpr, compile_expr
from repro.vectorized.operators import (
    ExecutionContext,
    ScalarVectorAggregate,
    VectorAggregate,
    VectorHashJoin,
    VectorProject,
    VectorScan,
    VectorSelect,
    run_engine,
)
from repro.vectorized.compression import (
    CompressedColumn,
    choose_scheme,
    compress,
    decompress,
)
from repro.vectorized.buffer import BufferManager, SimulatedDisk
from repro.vectorized.coopscan import ScanQuery, run_scans

__all__ = [
    "Batch",
    "Col",
    "Const",
    "BinExpr",
    "compile_expr",
    "ExecutionContext",
    "VectorScan",
    "VectorSelect",
    "VectorProject",
    "VectorHashJoin",
    "VectorAggregate",
    "ScalarVectorAggregate",
    "run_engine",
    "CompressedColumn",
    "compress",
    "decompress",
    "choose_scheme",
    "SimulatedDisk",
    "BufferManager",
    "ScanQuery",
    "run_scans",
]
