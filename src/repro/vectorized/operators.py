"""Pull-based vectorized operators.

Each operator's ``next_batch()`` returns the next :class:`Batch` or
None.  Per-batch Python overhead is constant, so tiny vectors are
interpretation-bound (vector size 1 ≈ a tuple-at-a-time RDBMS) and the
per-tuple cost drops with the vector size — until the query's working
set of vectors overflows the cache, which the optional
:class:`ExecutionContext` hierarchy accounting makes visible
(experiment E5 reproduces Section 5's sweep).
"""

import numpy as np

from repro.core.bat import global_address_space
from repro.hardware import trace as trace_mod
from repro.observability.tracer import NO_TRACE
from repro.vectorized.expressions import compile_expr
from repro.vectorized.vector import Batch, concat_batches

DEFAULT_VECTOR_SIZE = 1024


class ExecutionContext:
    """Shared execution state: vector size and optional cache tracing.

    When a hierarchy is given, every operator charges its input/output
    vector traffic against reusable per-operator buffers: while the
    plan's combined vectors fit the cache the buffers stay resident;
    oversized vectors stream through and miss.

    ``tracer`` (default: the disabled ``NO_TRACE``) collects spans and
    counters for this context's pipelines; the parallel executor gives
    each worker context a private tracer whose streams are merged after
    the exchange drains.  ``worker_span`` is set by the executor to the
    worker's top-level span so the exchange can attribute pulled tuples.
    """

    def __init__(self, vector_size=DEFAULT_VECTOR_SIZE, hierarchy=None):
        if vector_size < 1:
            raise ValueError("vector size must be positive")
        self.vector_size = vector_size
        self.hierarchy = hierarchy
        self.tracer = NO_TRACE
        self.worker_span = None
        self.batches_produced = 0
        self.profile = {}  # operator class name -> [batches, rows]

    def record(self, operator, batch):
        """Per-primitive profiling — the bookkeeping X100 uses to tune
        its vector size and pick primitives."""
        entry = self.profile.setdefault(type(operator).__name__, [0, 0])
        entry[0] += 1
        entry[1] += len(batch)

    def trace_vector_io(self, operator, batch):
        if self.hierarchy is None or len(batch) == 0:
            return
        base = operator._io_base
        if base is None:
            base = global_address_space.allocate(
                max(self.vector_size * 8 * max(len(batch.names), 1), 1))
            operator._io_base = base
        self.hierarchy.access(trace_mod.sequential(
            base, len(batch) * len(batch.names), 8))


class VectorOperator:
    """Base operator: pull protocol plus per-batch accounting."""

    def __init__(self, context):
        self.context = context
        self._io_base = None

    def open(self):
        pass

    def next_batch(self):
        raise NotImplementedError

    def batches(self):
        self.open()
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            self.context.batches_produced += 1
            self.context.record(self, batch)
            self.context.trace_vector_io(self, batch)
            if self.context.tracer.enabled:
                self.context.tracer.add("vectors")
            yield batch


class VectorScan(VectorOperator):
    """Scan full columns, slicing them into vectors (zero-copy views)."""

    def __init__(self, context, columns):
        super().__init__(context)
        self.columns = {name: np.asarray(values)
                        for name, values in columns.items()}
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged scan input")
        self._n = lengths.pop() if lengths else 0
        self._pos = 0

    def open(self):
        self._pos = 0

    def next_batch(self):
        if self._pos >= self._n:
            return None
        end = min(self._pos + self.context.vector_size, self._n)
        batch = Batch({name: v[self._pos:end]
                       for name, v in self.columns.items()})
        self._pos = end
        return batch


class VectorSelect(VectorOperator):
    """Filter by a vectorized predicate (empty batches are skipped)."""

    def __init__(self, context, child, predicate):
        super().__init__(context)
        self.child = child
        self.predicate = compile_expr(predicate)
        self._source = None

    def open(self):
        self._source = self.child.batches()

    def next_batch(self):
        for batch in self._source:
            mask = np.asarray(self.predicate(batch), dtype=bool)
            if mask.any():
                return batch.filtered(mask)
        return None


class VectorProject(VectorOperator):
    """Compute output columns from expressions."""

    def __init__(self, context, child, outputs):
        super().__init__(context)
        self.child = child
        self.outputs = {name: compile_expr(spec)
                        for name, spec in outputs.items()}
        self._source = None

    def open(self):
        self._source = self.child.batches()

    def next_batch(self):
        batch = next(self._source, None)
        if batch is None:
            return None
        n = len(batch)
        out = {}
        for name, expr in self.outputs.items():
            values = expr(batch)
            if np.ndim(values) == 0:
                values = np.full(n, values)
            out[name] = values
        return Batch(out)


class VectorHashJoin(VectorOperator):
    """Equi-join: blocking build side, streaming vectorized probe."""

    def __init__(self, context, build_child, probe_child, build_key,
                 probe_key, build_prefix=""):
        super().__init__(context)
        self.build_child = build_child
        self.probe_child = probe_child
        self.build_key = build_key
        self.probe_key = probe_key
        self.build_prefix = build_prefix
        self._build = None
        self._source = None

    def open(self):
        columns = concat_batches(list(self.build_child.batches()))
        self._build = {
            "columns": columns,
            "keys": columns.get(self.build_key,
                                np.empty(0, dtype=np.int64)),
        }
        order = np.argsort(self._build["keys"], kind="stable")
        self._build["order"] = order
        self._build["sorted"] = self._build["keys"][order]
        self._source = self.probe_child.batches()

    def next_batch(self):
        for batch in self._source:
            probe_keys = np.asarray(batch.column(self.probe_key))
            sorted_keys = self._build["sorted"]
            left = np.searchsorted(sorted_keys, probe_keys, side="left")
            right = np.searchsorted(sorted_keys, probe_keys, side="right")
            counts = right - left
            total = int(counts.sum())
            if total == 0:
                continue
            probe_pos = np.repeat(
                np.arange(len(probe_keys), dtype=np.int64), counts)
            ends = np.cumsum(counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                ends - counts, counts)
            build_pos = self._build["order"][
                np.repeat(left, counts) + offsets]
            out = batch.taken(probe_pos)
            for name, values in self._build["columns"].items():
                out_name = self.build_prefix + name
                if out_name in out.columns:
                    if name == self.build_key:
                        continue  # equal by definition
                    raise ValueError(
                        "column collision on {0!r}".format(out_name))
                out = out.with_column(out_name, values[build_pos])
            return out
        return None


class VectorAggregate(VectorOperator):
    """Blocking grouped aggregation with vectorized accumulation.

    ``aggregates``: {output name: (kind, input expression)} with kind in
    sum/count/min/max/avg.  Group keys map through a running dictionary
    (one Python step per *distinct* key per batch, not per tuple).
    """

    KINDS = ("sum", "count", "min", "max", "avg")

    def __init__(self, context, child, group_key, aggregates):
        super().__init__(context)
        self.child = child
        self.group_key = group_key
        for name, (kind, _) in aggregates.items():
            if kind not in self.KINDS:
                raise KeyError("unknown aggregate {0!r}".format(kind))
        self.aggregates = {name: (kind, compile_expr(spec))
                           for name, (kind, spec) in aggregates.items()}
        self._result = None

    def open(self):
        key_to_gid = {}
        keys = []
        sums = {}
        counts = {}
        mins = {}
        maxs = {}
        group_counts = []

        def _grow(arrays, amount, fill):
            for name in arrays:
                arrays[name] = np.concatenate(
                    [arrays[name], np.full(amount, fill)])

        for name in self.aggregates:
            sums[name] = np.zeros(0)
            counts[name] = np.zeros(0)
            mins[name] = np.zeros(0)
            maxs[name] = np.zeros(0)

        n_groups = 0
        for batch in self.child.batches():
            raw_keys = np.asarray(batch.column(self.group_key))
            uniq, inverse = np.unique(raw_keys, return_inverse=True)
            local_to_global = np.empty(len(uniq), dtype=np.int64)
            for i, key in enumerate(uniq.tolist()):
                gid = key_to_gid.get(key)
                if gid is None:
                    gid = n_groups
                    key_to_gid[key] = gid
                    keys.append(key)
                    n_groups += 1
                local_to_global[i] = gid
            gids = local_to_global[inverse]
            grow = n_groups - len(next(iter(sums.values()))) \
                if self.aggregates else 0
            if grow > 0:
                _grow(sums, grow, 0.0)
                _grow(counts, grow, 0.0)
                _grow(mins, grow, np.inf)
                _grow(maxs, grow, -np.inf)
            for name, (kind, expr) in self.aggregates.items():
                if kind == "count":
                    counts[name] += np.bincount(gids, minlength=n_groups)
                    continue
                values = np.asarray(expr(batch), dtype=np.float64)
                if kind in ("sum", "avg"):
                    sums[name] += np.bincount(gids, weights=values,
                                              minlength=n_groups)
                    counts[name] += np.bincount(gids, minlength=n_groups)
                elif kind == "min":
                    np.minimum.at(mins[name], gids, values)
                else:
                    np.maximum.at(maxs[name], gids, values)

        out = {self.group_key: np.asarray(keys)}
        for name, (kind, _) in self.aggregates.items():
            if kind == "sum":
                out[name] = sums[name]
            elif kind == "count":
                out[name] = counts[name].astype(np.int64)
            elif kind == "avg":
                with np.errstate(invalid="ignore"):
                    out[name] = sums[name] / counts[name]
            elif kind == "min":
                out[name] = mins[name]
            else:
                out[name] = maxs[name]
        self._result = Batch(out) if n_groups else None

    def next_batch(self):
        result = self._result
        self._result = None
        return result


class ScalarVectorAggregate(VectorOperator):
    """Aggregate everything into one row."""

    def __init__(self, context, child, aggregates):
        super().__init__(context)
        self.child = child
        self.aggregates = {name: (kind, compile_expr(spec))
                           for name, (kind, spec) in aggregates.items()}
        self._result = None

    def open(self):
        state = {name: {"sum": 0.0, "count": 0, "min": np.inf,
                        "max": -np.inf}
                 for name in self.aggregates}
        saw_rows = False
        for batch in self.child.batches():
            saw_rows = saw_rows or len(batch) > 0
            for name, (kind, expr) in self.aggregates.items():
                s = state[name]
                if kind == "count":
                    s["count"] += len(batch)
                    continue
                values = np.asarray(expr(batch), dtype=np.float64)
                s["sum"] += float(values.sum())
                s["count"] += len(values)
                if len(values):
                    s["min"] = min(s["min"], float(values.min()))
                    s["max"] = max(s["max"], float(values.max()))
        out = {}
        for name, (kind, _) in self.aggregates.items():
            s = state[name]
            if kind == "sum":
                out[name] = np.asarray([s["sum"]])
            elif kind == "count":
                out[name] = np.asarray([s["count"]])
            elif kind == "avg":
                out[name] = np.asarray(
                    [s["sum"] / s["count"] if s["count"] else np.nan])
            elif kind == "min":
                out[name] = np.asarray([s["min"] if saw_rows else np.nan])
            else:
                out[name] = np.asarray([s["max"] if saw_rows else np.nan])
        self._result = Batch(out)

    def next_batch(self):
        result = self._result
        self._result = None
        return result


def run_engine(root):
    """Drain a plan; returns {column: full numpy array}."""
    return concat_batches(list(root.batches()))
