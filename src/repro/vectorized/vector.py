"""Batches: the unit of data flow between vectorized operators.

A batch is a set of equally long column vectors (numpy arrays).  The
vector size is the engine's central tuning knob: all the vectors of a
(sub-)query together should fit the CPU cache (Section 5).
"""

import numpy as np


class Batch:
    """Aligned column vectors flowing through the operator tree."""

    __slots__ = ("columns",)

    def __init__(self, columns):
        self.columns = dict(columns)
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged batch: {0}".format(lengths))

    def __len__(self):
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError("batch has no column {0!r}; available: {1}"
                           .format(name, sorted(self.columns))) from None

    @property
    def names(self):
        return list(self.columns)

    @property
    def nbytes(self):
        return sum(np.asarray(v).nbytes for v in self.columns.values())

    def filtered(self, mask):
        """A new batch keeping the rows where ``mask`` is true."""
        return Batch({name: np.asarray(v)[mask]
                      for name, v in self.columns.items()})

    def taken(self, positions):
        """A new batch gathering ``positions`` from every column."""
        return Batch({name: np.asarray(v)[positions]
                      for name, v in self.columns.items()})

    def with_column(self, name, values):
        columns = dict(self.columns)
        columns[name] = values
        return Batch(columns)

    def renamed(self, mapping):
        return Batch({mapping.get(name, name): v
                      for name, v in self.columns.items()})

    def __repr__(self):
        return "Batch({0} rows, columns={1})".format(len(self), self.names)


def concat_batches(batches):
    """Concatenate a list of batches into one dict of full columns."""
    batches = [b for b in batches if len(b)]
    if not batches:
        return {}
    names = batches[0].names
    return {name: np.concatenate([b.column(name) for b in batches])
            for name in names}
