"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.faults import (
    NO_FAULTS,
    CrashError,
    FaultInjector,
    FaultPlan,
    NullInjector,
    TransientFault,
    crash_points,
)


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultPlan("site", "meltdown")

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            FaultPlan("site", "latency", delay=0)

    def test_hits_none_matches_every_hit(self):
        plan = FaultPlan("site", "transient", hits=None)
        assert plan.matches(1) and plan.matches(999)

    def test_hits_are_exact(self):
        plan = FaultPlan("site", "crash", hits=(2, 4))
        assert not plan.matches(1)
        assert plan.matches(2)
        assert not plan.matches(3)
        assert plan.matches(4)


class TestFaultInjector:
    def test_unarmed_site_is_free(self):
        inj = FaultInjector()
        assert inj.inject("anything") == 0
        assert inj.hits["anything"] == 1
        assert inj.fired == []

    def test_crash_at_nth_hit(self):
        inj = FaultInjector().crash_at("s", hit=3)
        assert inj.inject("s") == 0
        assert inj.inject("s") == 0
        with pytest.raises(CrashError) as exc:
            inj.inject("s")
        assert exc.value.site == "s"
        assert exc.value.hit == 3
        # Past the armed hit the site is healthy again.
        assert inj.inject("s") == 0
        assert inj.fired == [("s", 3, "crash")]

    def test_crash_carries_torn_and_detail(self):
        inj = FaultInjector().crash_at("wal.append", torn=5)
        with pytest.raises(CrashError) as exc:
            inj.inject("wal.append", size=42)
        assert exc.value.torn == 5
        assert exc.value.detail["size"] == 42

    def test_transient_at_hits(self):
        inj = FaultInjector().transient_at("s", hits=(1, 2))
        for _ in range(2):
            with pytest.raises(TransientFault):
                inj.inject("s")
        assert inj.inject("s") == 0

    def test_latency_returns_delay(self):
        inj = FaultInjector().delay_at("s", hits=(2,), delay=7)
        assert inj.inject("s") == 0
        assert inj.inject("s") == 7
        assert inj.fired == [("s", 2, "latency")]

    def test_sites_are_counted_independently(self):
        inj = FaultInjector().crash_at("a", hit=1)
        assert inj.inject("b") == 0
        with pytest.raises(CrashError):
            inj.inject("a")

    def test_seeded_schedule_is_reproducible(self):
        def run(seed):
            inj = FaultInjector.seeded(seed, {"s": ("transient", 0.3)})
            outcomes = []
            for _ in range(50):
                try:
                    inj.inject("s")
                    outcomes.append("ok")
                except TransientFault:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert "fault" in run(7)
        assert run(7) != run(8)

    def test_seeded_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultInjector.seeded(1, {"s": ("meltdown", 0.5)})

    def test_explicit_plan_wins_over_seeded_rate(self):
        inj = FaultInjector.seeded(1, {"s": ("transient", 1.0)})
        inj.plan(FaultPlan("s", "latency", hits=(1,), delay=3))
        assert inj.inject("s") == 3


class TestNullInjector:
    def test_singleton_is_inert(self):
        assert NO_FAULTS.inject("anything") == 0
        assert not NO_FAULTS.hits

    def test_cannot_be_armed(self):
        with pytest.raises(RuntimeError):
            NullInjector().crash_at("s")


class TestCrashPoints:
    def test_enumerates_every_hit_of_every_site(self):
        observed = {"b": 2, "a": 1}
        assert crash_points(observed) == [("a", 1), ("b", 1), ("b", 2)]

    def test_sites_filter(self):
        observed = {"a": 1, "b": 2}
        assert crash_points(observed, sites={"b"}) == [("b", 1), ("b", 2)]

    def test_round_trips_a_dry_run(self):
        dry = FaultInjector()
        dry.inject("x")
        dry.inject("x")
        dry.inject("y")
        assert crash_points(dry.observed()) == [("x", 1), ("x", 2),
                                                ("y", 1)]
