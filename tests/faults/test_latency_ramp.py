"""Unit tests for the gray-node latency-ramp fault plan: delay that
*grows* instead of dropping, seeded per-hit jitter, and the match
filter that grays a single link while its site-mates stay healthy."""

import pytest

from repro.datacyclotron.link import SimulatedLink
from repro.faults import FaultInjector, LatencyRamp


class TestRampShape:
    def test_linear_ramp_from_start_hit(self):
        ramp = LatencyRamp("shard.ship", start_hit=3, base_delay=10,
                           step=5)
        assert not ramp.matches(2)
        assert ramp.matches(3)
        assert [ramp.delay_for(h) for h in (3, 4, 5)] == [10, 15, 20]

    def test_cap_bounds_the_ramp(self):
        ramp = LatencyRamp("shard.ship", base_delay=10, step=10, cap=25)
        assert [ramp.delay_for(h) for h in (1, 2, 3, 9)] == \
            [10, 20, 25, 25]

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRamp("s", start_hit=0)
        with pytest.raises(ValueError):
            LatencyRamp("s", base_delay=0)
        with pytest.raises(ValueError):
            LatencyRamp("s", step=-1)
        with pytest.raises(ValueError):
            LatencyRamp("s", base_delay=10, cap=5)
        with pytest.raises(ValueError):
            LatencyRamp("s", jitter=3)  # jitter needs a seed


class TestSeededJitter:
    def test_delay_is_a_pure_function_of_seed_and_hit(self):
        a = LatencyRamp("s", base_delay=10, step=2, seed=42, jitter=5)
        b = LatencyRamp("s", base_delay=10, step=2, seed=42, jitter=5)
        assert [a.delay_for(h) for h in range(1, 20)] == \
            [b.delay_for(h) for h in range(1, 20)]

    def test_different_seeds_differ(self):
        a = LatencyRamp("s", base_delay=10, step=2, seed=1, jitter=5)
        b = LatencyRamp("s", base_delay=10, step=2, seed=2, jitter=5)
        assert [a.delay_for(h) for h in range(1, 20)] != \
            [b.delay_for(h) for h in range(1, 20)]

    def test_jitter_bounded(self):
        ramp = LatencyRamp("s", base_delay=10, step=0, seed=9, jitter=4)
        for hit in range(1, 50):
            assert 10 <= ramp.delay_for(hit) <= 14


class TestInjectorIntegration:
    def test_ramp_at_delays_but_never_drops(self):
        faults = FaultInjector()
        faults.ramp_at("shard.ship", base_delay=3, step=2)
        delays = [faults.inject("shard.ship") for _ in range(4)]
        assert delays == [3, 5, 7, 9]  # every hit returns, later each time

    def test_match_filter_grays_one_link_only(self):
        faults = FaultInjector()
        faults.ramp_at("shard.ship", base_delay=5, step=5,
                       match={"link": "coord->s1"})
        healthy = [faults.inject("shard.ship", link="coord->s0")
                   for _ in range(3)]
        gray = [faults.inject("shard.ship", link="coord->s1")
                for _ in range(3)]
        assert healthy == [0, 0, 0]
        assert gray == [5, 10, 15]  # hit numbering is per matched link

    def test_matched_plan_hits_are_relative_to_its_traffic(self):
        faults = FaultInjector()
        faults.crash_at("shard.ship", hit=2, match={"link": "bad"})
        assert faults.inject("shard.ship", link="good") == 0
        assert faults.inject("shard.ship", link="bad") == 0  # bad hit 1
        assert faults.inject("shard.ship", link="good") == 0
        with pytest.raises(Exception):
            faults.inject("shard.ship", link="bad")  # bad hit 2 crashes


class TestGrayLink:
    def test_ramped_link_delivers_late_in_fifo_order(self):
        """A gray link is slow, not dead: every message still arrives,
        each later than the last, and FIFO holdback makes the queue
        swell — the signature hedged reads and breakers key on."""
        faults = FaultInjector()
        faults.ramp_at("shard.ship", base_delay=10, step=10)
        link = SimulatedLink("shard.ship", faults=faults, name="gray")
        deliver_ats = []
        now = 0
        for i in range(4):
            assert link.send(("msg", i), now)
            deliver_ats.append(link.last_deliver_at)
        assert deliver_ats == sorted(deliver_ats)
        assert link.stats.dropped == 0
        assert link.stats.stalled == 4
        # Everything eventually arrives, in order.
        got = link.deliver(deliver_ats[-1])
        assert got == [("msg", i) for i in range(4)]

    def test_repl_ship_site_works_identically(self):
        faults = FaultInjector()
        faults.ramp_at("repl.ship", base_delay=4, step=1)
        link = SimulatedLink("repl.ship", faults=faults)
        link.send("frame", 0)
        assert link.last_deliver_at == 5  # now + 1 + base_delay
        assert link.deliver(5) == ["frame"]
