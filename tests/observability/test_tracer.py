"""Unit tests for the tracing core: spans, counters, exclusive
hardware attribution, the disabled tracer, rendering and the exported
schema."""

import json

import pytest

from repro.hardware.profiles import SCALED_DEFAULT, TINY
from repro.hardware import trace as trace_mod
from repro.observability.schema import SpanSchemaError, validate_span_tree
from repro.observability.tracer import (
    NO_TRACE,
    NullTracer,
    Span,
    Tracer,
    render_text,
)


# -- Span ---------------------------------------------------------------------

def test_span_counters_accumulate():
    span = Span("op")
    span.add("tuples_out", 10)
    span.add("tuples_out", 5)
    span.add("vectors")
    assert span.counter("tuples_out") == 15
    assert span.counter("vectors") == 1
    assert span.counter("missing") == 0
    assert span.counter("missing", default=-1) == -1


def test_span_inclusive_sums_subtree():
    root = Span("root")
    a, b, c = Span("a"), Span("b"), Span("c")
    root.children = [a, b]
    a.children = [c]
    root.add("cycles", 1)
    a.add("cycles", 10)
    c.add("cycles", 100)
    assert root.inclusive("cycles") == 111
    assert a.inclusive("cycles") == 110
    assert b.inclusive("cycles") == 0


def test_span_walk_find():
    root = Span("root", kind="query")
    a = Span("op", kind="operator")
    b = Span("op", kind="operator")
    m = Span("morsel", kind="morsel")
    root.children = [a, b]
    b.children = [m]
    assert [s.name for s in root.walk()] == ["root", "op", "op", "morsel"]
    assert root.find("morsel") is m
    assert root.find("absent") is None
    assert root.find_all(name="op") == [a, b]
    assert root.find_all(kind="morsel") == [m]
    assert root.find_all(name="op", kind="morsel") == []


# -- Tracer lifecycle ---------------------------------------------------------

def test_nested_spans_build_a_tree():
    tracer = Tracer()
    with tracer.span("query", kind="query") as q:
        with tracer.span("compile", kind="phase"):
            pass
        with tracer.span("execute", kind="pipeline"):
            tracer.add("tuples_out", 7)
    assert tracer.roots == [q]
    assert [c.name for c in q.children] == ["compile", "execute"]
    assert q.children[1].counter("tuples_out") == 7


def test_begin_end_explicit_pairing():
    tracer = Tracer()
    root = tracer.begin("outer")
    tracer.begin("inner")
    assert tracer.current.name == "inner"
    tracer.end()
    tracer.end()
    assert tracer.current is None
    assert tracer.roots == [root]
    assert [c.name for c in root.children] == ["inner"]


def test_end_without_open_span_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        tracer.end()


def test_end_all_closes_everything():
    tracer = Tracer()
    tracer.begin("a")
    tracer.begin("b")
    tracer.begin("c")
    tracer.end_all()
    assert tracer.current is None
    assert len(tracer.roots) == 1


def test_exception_marks_span_with_error_attr():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("query"):
            raise ValueError("boom")
    assert tracer.roots[0].attrs["error"] == "ValueError"


def test_add_outside_any_span_is_a_noop():
    tracer = Tracer()
    tracer.add("tuples_out", 3)
    assert tracer.roots == []


def test_adopt_grafts_under_open_span():
    worker = Tracer()
    with worker.span("worker-0", kind="worker"):
        pass
    main = Tracer()
    with main.span("exchange") as ex:
        main.adopt(worker.roots)
    assert [c.name for c in ex.children] == ["worker-0"]


# -- hardware attribution -----------------------------------------------------

def _touch(hierarchy, base, n):
    hierarchy.access(trace_mod.sequential(base, n, 8))


def test_exclusive_attribution_sums_to_global():
    hierarchy = TINY.make_hierarchy()
    tracer = Tracer()
    tracer.watch(hierarchy)
    with tracer.span("query") as q:
        _touch(hierarchy, 0, 512)
        with tracer.span("child"):
            _touch(hierarchy, 1 << 20, 1024)
        _touch(hierarchy, 1 << 22, 256)
    # Own counters over the tree reproduce the hierarchy exactly.
    for cache in hierarchy.caches:
        key = cache.name + "_misses"
        assert sum(s.counter(key) for s in q.walk()) == cache.stats.misses
    assert sum(s.counter("accesses") for s in q.walk()) \
        == hierarchy.accesses
    assert q.inclusive("cycles") == hierarchy.total_cycles
    # The child's work is not double counted on the parent.
    child = q.find("child")
    assert child.counter("accesses") == 1024
    assert q.counter("accesses") == 512 + 256


def test_own_counters_are_never_negative():
    hierarchy = SCALED_DEFAULT.make_hierarchy()
    tracer = Tracer()
    tracer.watch(hierarchy)
    with tracer.span("root") as root:
        with tracer.span("a"):
            _touch(hierarchy, 0, 2048)
        with tracer.span("b"):
            _touch(hierarchy, 1 << 21, 2048)
    for span in root.walk():
        for value in span.counters.values():
            assert value >= 0


def test_watch_same_hierarchy_twice_counts_once():
    hierarchy = TINY.make_hierarchy()
    tracer = Tracer()
    tracer.watch(hierarchy)
    tracer.watch(hierarchy)
    with tracer.span("q") as q:
        _touch(hierarchy, 0, 128)
    assert q.counter("accesses") == 128


# -- the disabled tracer ------------------------------------------------------

def test_null_tracer_is_inert():
    assert NO_TRACE.enabled is False
    assert isinstance(NO_TRACE, NullTracer)
    with NO_TRACE.span("query", sql="SELECT 1") as span:
        assert span is None
    assert NO_TRACE.begin("x") is None
    assert NO_TRACE.end() is None
    assert NO_TRACE.end_all() is None
    assert NO_TRACE.add("tuples_out", 5) is None
    assert NO_TRACE.watch(object()) is None
    assert NO_TRACE.adopt([]) is None


# -- rendering and export -----------------------------------------------------

def _sample_tree():
    tracer = Tracer()
    with tracer.span("query", kind="query", engine="serial") as q:
        with tracer.span("scan", kind="operator"):
            tracer.add("tuples_out", 100)
            tracer.add("cycles", 400)
        with tracer.span("morsel", kind="morsel", worker=1, index=0):
            tracer.add("tuples_scanned", 42)
    return q


def test_render_text_tree_shape():
    text = render_text(_sample_tree())
    lines = text.splitlines()
    assert lines[0].startswith("query [engine=serial]")
    # The root has no own cycles: it shows the inclusive subtree total.
    assert "cycles~=400" in lines[0]
    assert any(line.startswith("|- scan") for line in lines)
    assert any(line.startswith("`- morsel [worker=1 index=0]")
               for line in lines)
    assert "tuples_out=100" in text


def test_to_json_roundtrip_validates():
    q = _sample_tree()
    data = json.loads(q.to_json())
    assert data == q.to_dict()
    assert validate_span_tree(data) == 3


# -- schema validation --------------------------------------------------------

def test_schema_accepts_minimal_span():
    node = {"name": "q", "kind": "query", "attrs": {}, "counters": {},
            "children": []}
    assert validate_span_tree(node) == 1


@pytest.mark.parametrize("mutate, fragment", [
    (lambda n: n.pop("counters"), "missing keys"),
    (lambda n: n.update(extra=1), "unexpected keys"),
    (lambda n: n.update(name=""), "non-empty string"),
    (lambda n: n["attrs"].update(bad=[1, 2]), "JSON scalar"),
    (lambda n: n["counters"].update(bad="x"), "must be a number"),
    (lambda n: n["counters"].update(bad=float("nan")), "finite"),
    (lambda n: n["children"].append("not-a-span"), "must be a dict"),
])
def test_schema_rejects_malformed(mutate, fragment):
    node = {"name": "q", "kind": "query", "attrs": {}, "counters": {},
            "children": []}
    mutate(node)
    with pytest.raises(SpanSchemaError, match=fragment):
        validate_span_tree(node)


def test_schema_rejects_unbounded_depth():
    node = {"name": "q", "kind": "s", "attrs": {}, "counters": {},
            "children": []}
    for _ in range(70):
        node = {"name": "q", "kind": "s", "attrs": {}, "counters": {},
                "children": [node]}
    with pytest.raises(SpanSchemaError, match="deeper"):
        validate_span_tree(node)
