"""Golden-trace regression tests.

Each case profiles one canonical query over a fixed dataset and
compares the *normalized* span tree — names, kinds, nesting and the
deterministic tuple-flow counters, with simulated cycles and cache
counters stripped — against a checked-in JSON file under
``tests/observability/golden/``.  A plan-shape change (new operator,
different morsel split, lost instrumentation) fails here; a hardware
-profile retune does not.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/observability/test_golden.py \
        --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.sql.database import Database

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Counters that are pure functions of the plan and the data — safe to
#: pin.  Cycle and miss counters depend on the simulated hardware
#: profile and stay out of the goldens.
KEEP_COUNTERS = ("tuples_out", "tuples_scanned", "vectors",
                 "recycler_hits", "wal_bytes")

#: Attributes pinned per span (worker/morsel identity, engine).
KEEP_ATTRS = ("engine", "workers", "worker", "index", "start", "stop")


def normalize(node):
    """Reduce a ``Span.to_dict`` tree to its stable skeleton."""
    return {
        "name": node["name"],
        "kind": node["kind"],
        "attrs": {k: node["attrs"][k] for k in KEEP_ATTRS
                  if k in node["attrs"]},
        "counters": {k: node["counters"][k] for k in KEEP_COUNTERS
                     if k in node["counters"]},
        "children": [normalize(child) for child in node["children"]],
    }


def _dataset():
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1})".format(i % 7, (i * 37) % 100) for i in range(200)))
    db.execute("CREATE TABLE u (k BIGINT, w BIGINT)")
    db.execute("INSERT INTO u VALUES " + ", ".join(
        "({0}, {1})".format(i % 5, i * 3) for i in range(40)))
    return db


CASES = {
    "serial_filter_projection":
        ("SELECT k, v FROM t WHERE v < 50", 1),
    "serial_scalar_aggregate":
        ("SELECT count(*) FROM t", 1),
    "serial_group_by":
        ("SELECT v, sum(k) s FROM t GROUP BY v", 1),
    "serial_join":
        ("SELECT t.v, u.w FROM t JOIN u ON t.k = u.k WHERE u.w < 30", 1),
    "parallel_filter_projection":
        ("SELECT k, v FROM t WHERE v < 50", 2),
    "parallel_group_by":
        ("SELECT v, sum(k) s FROM t GROUP BY v", 2),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_trace_matches_golden(case, request):
    sql, workers = CASES[case]
    profile = _dataset().profile(sql, workers=workers)
    if workers > 1:
        assert profile.root.attrs["engine"] == "parallel", \
            "expected a parallel plan for {0!r}".format(sql)
    actual = normalize(profile.to_dict())
    path = GOLDEN_DIR / (case + ".json")
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                        + "\n")
        return
    assert path.exists(), (
        "missing golden file {0}; run with --update-golden".format(path))
    expected = json.loads(path.read_text())
    assert actual == expected, (
        "span tree for {0!r} drifted from {1}; if the change is "
        "intentional, rerun with --update-golden".format(sql, path.name))
