"""Property tests over randomly generated queries (hypothesis).

Three invariants the exclusive-attribution design promises for every
traced query, fault-free:

* tuple conservation — the exchange span's output count equals the sum
  of its workers' output counts (nothing is dropped or duplicated at
  the exchange boundary);
* monotone hierarchy — a span's inclusive cycle total bounds the sum
  of its children's (own counters are never negative);
* exact accounting — summing any hardware counter over all spans of a
  tree reproduces the watched hierarchy's global counters exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.database import Database
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator

QUERIES_PER_CASE = 3


def _profiled_queries(seed, workers):
    generator = QueryGenerator(seed)
    db = Database()
    for statement in generator.setup_statements():
        db.execute(statement)
    for i in range(QUERIES_PER_CASE):
        sql = generator.gen_query(case_id=i)
        yield sql, db, db.profile(sql, workers=workers)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_tuple_conservation_across_exchange(seed):
    for sql, db, profile in _profiled_queries(seed, workers=2):
        if profile.root.attrs["engine"] != "parallel":
            continue  # fell back: no exchange boundary to check
        exchange = profile.root.find("exchange")
        workers = exchange.find_all(kind="worker")
        assert len(workers) == 2, sql
        assert exchange.counter("tuples_out") \
            == sum(w.counter("tuples_out") for w in workers), sql


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000),
       workers=st.sampled_from([1, 3]))
def test_child_cycles_bounded_by_parent(seed, workers):
    for sql, db, profile in _profiled_queries(seed, workers):
        for span in profile.root.walk():
            for value in span.counters.values():
                assert value >= 0, sql
            assert sum(c.inclusive("cycles") for c in span.children) \
                <= span.inclusive("cycles"), sql


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_counters_sum_exactly_to_global_accounting(seed):
    for sql, db, profile in _profiled_queries(seed, workers=1):
        spans = list(profile.root.walk())
        hierarchy = profile.hierarchy
        for cache in hierarchy.caches:
            key = cache.name + "_misses"
            assert sum(s.counter(key) for s in spans) \
                == cache.stats.misses, sql
        assert sum(s.counter("TLB_misses") for s in spans) \
            == hierarchy.tlb.stats.misses, sql
        assert sum(s.counter("cycles") for s in spans) \
            == hierarchy.total_cycles, sql


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_parallel_counters_sum_to_worker_set(seed):
    for sql, db, profile in _profiled_queries(seed, workers=2):
        if profile.root.attrs["engine"] != "parallel":
            continue
        spans = list(profile.root.walk())
        ws = profile.worker_set
        assert sum(s.counter("cycles") for s in spans) \
            == ws.total_cycles(), sql
        assert sum(s.counter(ws.shared_llc.name + "_misses")
                   for s in spans) == ws.shared_llc.stats.misses, sql


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_profiling_does_not_change_answers(seed):
    for sql, db, profile in _profiled_queries(seed, workers=2):
        assert_same_rows(profile.result.rows(), db.query(sql),
                         context=sql)
