"""``Database.profile`` and the EXPLAIN / PROFILE statements.

The acceptance bar for the observability subsystem: a serial profile's
root cycle total must match the watched hierarchy's global accounting
(the implementation achieves exact equality; the tests also assert the
1%% criterion explicitly), and a parallel profile's per-worker span
streams must sum back to the worker set's counters exactly.
"""

import pytest

from repro.observability.profiling import QueryProfile
from repro.observability.schema import validate_span_tree
from repro.observability.tracer import Tracer
from repro.sql.database import Database, ResultSet
from repro.wal import WriteAheadLog
from tests.helpers import assert_same_rows


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    rows = ", ".join("({0}, {1})".format(i % 7, (i * 37) % 100)
                     for i in range(200))
    database.execute("INSERT INTO t VALUES " + rows)
    return database


EXPECTED = [(i % 7, (i * 37) % 100) for i in range(200)
            if (i * 37) % 100 < 50]


# -- serial profiles ----------------------------------------------------------

def test_serial_profile_result_matches_plain_query(db):
    sql = "SELECT k, v FROM t WHERE v < 50"
    profile = db.profile(sql)
    assert isinstance(profile, QueryProfile)
    assert_same_rows(profile.result.rows(), EXPECTED)
    assert_same_rows(db.query(sql), EXPECTED)


def test_serial_root_cycles_match_hierarchy_accounting(db):
    profile = db.profile("SELECT k, v FROM t WHERE v < 50")
    total = profile.hierarchy.total_cycles
    assert total > 0
    assert abs(profile.cycles - total) <= 0.01 * total
    # The implementation is exact, not merely within 1%.
    assert profile.cycles == total


def test_serial_profile_counters_sum_exactly(db):
    profile = db.profile("SELECT k, v FROM t WHERE v < 50")
    spans = list(profile.root.walk())
    hierarchy = profile.hierarchy
    for cache in hierarchy.caches:
        key = cache.name + "_misses"
        assert sum(s.counter(key) for s in spans) == cache.stats.misses
    assert sum(s.counter("TLB_misses") for s in spans) \
        == hierarchy.tlb.stats.misses
    assert sum(s.counter("cpu_cycles") for s in spans) \
        == hierarchy.cpu_cycles
    assert sum(s.counter("accesses") for s in spans) == hierarchy.accesses


def test_serial_profile_span_tree_shape(db):
    profile = db.profile("SELECT k, v FROM t WHERE v < 50")
    root = profile.root
    assert root.name == "query"
    assert root.kind == "query"
    assert root.attrs["engine"] == "serial"
    assert root.attrs["sql"].startswith("SELECT")
    assert [c.name for c in root.children] == ["compile", "execute"]
    operators = root.find_all(kind="operator")
    assert {s.name for s in operators} >= {"sql.tid", "sql.bind"}
    assert profile.counter("tuples_out") > 0
    assert validate_span_tree(profile.to_dict()) == len(list(root.walk()))


def test_profile_text_renders_operator_tree(db):
    text = db.profile("SELECT k, v FROM t WHERE v < 50").text()
    assert text.splitlines()[0].startswith("query [engine=serial]")
    assert "sql.bind" in text
    assert "tuples_out=" in text
    assert "cycles" in text


def test_profile_accepts_custom_hardware_profile(db):
    from repro.hardware.profiles import PENTIUM4_XEON
    profile = db.profile("SELECT k FROM t", hardware_profile=PENTIUM4_XEON)
    assert profile.cycles == profile.hierarchy.total_cycles


def test_last_profile_is_recorded(db):
    assert db.last_profile is None
    profile = db.profile("SELECT k FROM t")
    assert db.last_profile is profile


# -- parallel profiles --------------------------------------------------------

def test_parallel_profile_merges_worker_streams(db):
    sql = "SELECT v, sum(k) s FROM t GROUP BY v"
    profile = db.profile(sql, workers=3)
    root = profile.root
    assert root.attrs["engine"] == "parallel"
    assert root.attrs["workers"] == 3
    assert profile.worker_set is not None
    assert_same_rows(profile.result.rows(), db.query(sql))

    exchange = root.find("exchange")
    workers = exchange.find_all(kind="worker")
    assert len(workers) == 3
    # Tuple conservation over the exchange boundary.
    assert exchange.counter("tuples_out") \
        == sum(w.counter("tuples_out") for w in workers)
    # Morsel spans carry per-morsel attribution.
    morsels = root.find_all(kind="morsel")
    assert morsels
    assert sum(m.counter("tuples_scanned") for m in morsels) == 200


def test_parallel_profile_cycles_sum_to_worker_set(db):
    profile = db.profile("SELECT v, sum(k) s FROM t GROUP BY v",
                         workers=3)
    spans = list(profile.root.walk())
    ws = profile.worker_set
    assert sum(s.counter("cycles") for s in spans) == ws.total_cycles()
    assert sum(s.counter(ws.shared_llc.name + "_misses") for s in spans) \
        == ws.shared_llc.stats.misses


def test_parallel_profile_falls_back_to_serial(db):
    # LIMIT without ORDER BY has no parallel plan shape: the profile
    # silently runs the serial engine, like execute().
    before = db.parallel_fallbacks
    profile = db.profile("SELECT k FROM t LIMIT 5", workers=2)
    assert db.parallel_fallbacks == before + 1
    assert profile.root.attrs["engine"] == "serial"
    assert profile.hierarchy is not None
    assert profile.result.rows() == [(i,) for i in range(5)]


# -- EXPLAIN / PROFILE statements ---------------------------------------------

def test_profile_statement_returns_plan_resultset(db):
    result = db.execute("PROFILE SELECT count(*) FROM t")
    assert isinstance(result, ResultSet)
    assert result.names == ["plan"]
    lines = [row[0] for row in result.rows()]
    assert lines[0].startswith("query")
    assert db.last_profile is not None
    assert db.last_profile.result.rows() == [(200,)]


def test_explain_statement_returns_plan_resultset(db):
    result = db.execute("EXPLAIN SELECT k FROM t WHERE k = 1")
    assert result.names == ["plan"]
    lines = [row[0] for row in result.rows()]
    assert lines == db.explain("SELECT k FROM t WHERE k = 1").splitlines()


def test_explain_unwraps_explain_prefix(db):
    assert db.explain("EXPLAIN SELECT k FROM t") \
        == db.explain("SELECT k FROM t")


# -- EXPLAIN / PROFILE of non-SELECT statements (regression) ------------------

@pytest.mark.parametrize("sql, kind", [
    ("INSERT INTO t VALUES (1, 2)", "INSERT"),
    ("DELETE FROM t WHERE k = 1", "DELETE"),
    ("UPDATE t SET v = 0 WHERE k = 1", "UPDATE"),
    ("CREATE TABLE u (a BIGINT)", "CREATE TABLE"),
    ("SET workers = 2", "SET"),
])
def test_explain_non_select_names_statement_kind(db, sql, kind):
    with pytest.raises(TypeError, match="EXPLAIN supports only SELECT "
                       "statements, got " + kind):
        db.explain(sql)
    with pytest.raises(TypeError, match="got " + kind):
        db.execute("EXPLAIN " + sql)


@pytest.mark.parametrize("sql, kind", [
    ("INSERT INTO t VALUES (1, 2)", "INSERT"),
    ("DELETE FROM t WHERE k = 1", "DELETE"),
])
def test_profile_non_select_names_statement_kind(db, sql, kind):
    with pytest.raises(TypeError, match="PROFILE supports only SELECT "
                       "statements, got " + kind):
        db.profile(sql)
    with pytest.raises(TypeError, match="got " + kind):
        db.execute("PROFILE " + sql)


def test_profile_rejects_bad_worker_count(db):
    with pytest.raises(ValueError):
        db.profile("SELECT k FROM t", workers=0)


# -- session tracer -----------------------------------------------------------

def test_session_tracer_records_statement_spans():
    tracer = Tracer()
    db = Database(wal=WriteAheadLog(), tracer=tracer)
    db.execute("CREATE TABLE t (k BIGINT)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    assert db.query("SELECT k FROM t WHERE k > 1") == [(2,), (3,)]
    assert [s.name for s in tracer.roots] == ["statement"] * 3
    assert tracer.roots[2].attrs["sql"].startswith("SELECT")
    # The WAL reports frame bytes into the session trace: the CREATE
    # and the INSERT each log one record, and together they account
    # for every byte in the log.
    logged = sum(s.inclusive("wal_bytes") for s in tracer.roots)
    assert tracer.roots[1].inclusive("wal_bytes") > 0
    assert logged == db.wal.size_bytes
    # The interpreter nests operator spans under the SELECT statement.
    assert tracer.roots[2].find_all(kind="operator")


def test_recycler_hits_are_counted():
    tracer = Tracer()
    db = Database.with_recycling()
    db.tracer = tracer
    db.interpreter.tracer = tracer
    db.execute("CREATE TABLE t (k BIGINT)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    with tracer.span("repeat") as span:
        db._execute_statement("SELECT k FROM t WHERE k > 1")
        db._execute_statement("SELECT k FROM t WHERE k > 1")
    assert span.inclusive("recycler_hits") > 0
