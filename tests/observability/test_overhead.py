"""Disabled-tracing overhead guard (CI only).

With the default :data:`~repro.observability.tracer.NO_TRACE`, every
instrumented site pays one attribute test and nothing else.  This test
times the E13 bulk workload with the guards in place against the same
run with the interpreter's dispatch guard bypassed, and fails if the
guarded path is more than 5% slower.

Timing tests are noisy under pytest-on-a-laptop; the test only runs
when ``OBSERVABILITY_OVERHEAD`` is set (the CI workflow sets it).
"""

import os
import time

import pytest

from repro.sql import Database
from repro.workloads import StarSchema

pytestmark = pytest.mark.skipif(
    not os.environ.get("OBSERVABILITY_OVERHEAD"),
    reason="timing-sensitive; set OBSERVABILITY_OVERHEAD=1 to run")

SQL = ("SELECT category, sum(qty) AS total FROM sales "
       "JOIN items ON sales.item_id = items.item_id "
       "WHERE qty >= 5 GROUP BY category ORDER BY category")


def _best_of(fn, repeats=9):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_overhead_under_5_percent():
    db = StarSchema(n_sales=50_000, n_items=100).populate(Database())
    assert not db.tracer.enabled
    expected = db.query(SQL)  # warm the plan cache

    guarded = _best_of(lambda: db.query(SQL))

    # Bypass the per-instruction dispatch guard: the remaining delta
    # is exactly what tracing costs a database that never profiles.
    db.interpreter._execute = db.interpreter._execute_plain
    assert db.query(SQL) == expected
    plain = _best_of(lambda: db.query(SQL))

    overhead = guarded / plain - 1.0
    assert overhead <= 0.05, (
        "disabled-tracing overhead {0:.1%} exceeds 5% "
        "(guarded {1:.4f}s vs plain {2:.4f}s)".format(
            overhead, guarded, plain))
