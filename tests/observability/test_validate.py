"""Tier-1 error-band test for the cost-model validation harness
(bench E19 prints the same table)."""

import math

from repro.observability.tracer import Tracer
from repro.observability.validate import (
    ERROR_BAND,
    PatternReport,
    check_error_band,
    validate_cost_model,
)


def test_every_pattern_within_error_band():
    reports = validate_cost_model()
    assert [r.pattern for r in reports] == list(ERROR_BAND)
    violations = check_error_band(reports)
    assert violations == [], "\n".join(
        "{0}: predicted {1:.0f} vs actual {2} (rel err {3:.3f} > "
        "band {4})".format(v.pattern, v.predicted, v.actual,
                           v.relative_error, ERROR_BAND[v.pattern])
        for v in violations)


def test_basic_patterns_are_tight():
    """The directly-modelled patterns should do far better than the
    factor-2 bound — a drift here is a regression even inside the
    band."""
    reports = {r.pattern: r for r in validate_cost_model()}
    assert reports["sequential_traversal"].relative_error < 0.01
    assert reports["random_traversal"].relative_error < 0.10
    assert reports["multi_cursor_resident"].relative_error < 0.10


def test_validation_is_deterministic():
    first = validate_cost_model(seed=11)
    second = validate_cost_model(seed=11)
    assert [(r.pattern, r.predicted, r.actual) for r in first] \
        == [(r.pattern, r.predicted, r.actual) for r in second]


def test_traced_validation_emits_pattern_spans():
    tracer = Tracer()
    reports = validate_cost_model(n=1 << 10, tracer=tracer)
    assert len(tracer.roots) == len(reports)
    for span, report in zip(tracer.roots, reports):
        assert span.name == report.pattern
        assert span.kind == "pattern"
        assert span.attrs["predicted_cycles"] == report.predicted
        assert math.isclose(span.attrs["relative_error"],
                            report.relative_error)
        # The span watched the replay hierarchy, so its cycle total is
        # the actual the report compares against.
        assert span.inclusive("cycles") == report.actual


def test_pattern_report_edge_cases():
    assert PatternReport("p", 0.0, 0).relative_error == 0.0
    assert PatternReport("p", 5.0, 0).relative_error == float("inf")
    assert PatternReport("p", 150.0, 100).relative_error == 0.5
    assert PatternReport("p", 150.0, 100).ratio == 1.5
    assert check_error_band([PatternReport("unknown_pattern", 9.0, 1)]) \
        == []
