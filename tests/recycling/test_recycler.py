"""Tests for the recycler and its integration with the engine."""

import pytest

from repro.recycling import Recycler
from repro.sql import Database


class TestRecyclerCache:
    def test_lookup_miss_then_hit(self):
        r = Recycler()
        hit, _ = r.lookup(("op", 1))
        assert not hit
        r.store(("op", 1), ("result",), cost=0.5, nbytes=100)
        hit, value = r.lookup(("op", 1))
        assert hit
        assert value == ("result",)
        assert r.stats.hit_ratio == 0.5
        assert r.stats.seconds_saved == 0.5

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            Recycler(policy="magic")

    def test_capacity_respected(self):
        r = Recycler(capacity_bytes=250, policy="lru")
        for i in range(5):
            r.store(("op", i), i, cost=1.0, nbytes=100)
        assert r.bytes_cached <= 250
        assert r.stats.evictions == 3

    def test_lru_evicts_oldest(self):
        r = Recycler(capacity_bytes=200, policy="lru")
        r.store(("a",), 1, cost=1.0, nbytes=100)
        r.store(("b",), 2, cost=1.0, nbytes=100)
        r.lookup(("a",))            # refresh a
        r.store(("c",), 3, cost=1.0, nbytes=100)  # evicts b
        assert r.lookup(("a",))[0]
        assert not r.lookup(("b",))[0]

    def test_benefit_keeps_expensive_entries(self):
        r = Recycler(capacity_bytes=200, policy="benefit")
        r.store(("cheap",), 1, cost=0.001, nbytes=100)
        r.store(("dear",), 2, cost=10.0, nbytes=100)
        r.store(("new",), 3, cost=0.001, nbytes=100)
        assert r.lookup(("dear",))[0]

    def test_oversized_entry_rejected(self):
        r = Recycler(capacity_bytes=100)
        r.store(("big",), 1, cost=1.0, nbytes=1000)
        assert len(r) == 0

    def test_clear_and_invalidate(self):
        r = Recycler()
        r.store(("t1", 1), 1, cost=1.0, nbytes=10)
        r.store(("t2", 2), 2, cost=1.0, nbytes=10)
        r.invalidate_where(lambda k: k[0] == "t1")
        assert not r.lookup(("t1", 1))[0]
        assert r.lookup(("t2", 2))[0]
        r.clear()
        assert len(r) == 0


class TestEngineIntegration:
    def make_db(self):
        db = Database.with_recycling()
        db.execute("CREATE TABLE obs (region INT, mag DOUBLE)")
        db.execute("INSERT INTO obs VALUES "
                   + ", ".join("({0}, {1}.5)".format(i % 50, i % 13)
                               for i in range(400)))
        return db

    def test_transparent_results(self):
        db = self.make_db()
        plain = Database()
        plain.execute("CREATE TABLE obs (region INT, mag DOUBLE)")
        plain.execute("INSERT INTO obs VALUES "
                      + ", ".join("({0}, {1}.5)".format(i % 50, i % 13)
                                  for i in range(400)))
        q = ("SELECT region, sum(mag) FROM obs WHERE region < 20 "
             "GROUP BY region ORDER BY region")
        for _ in range(3):
            assert db.query(q) == plain.query(q)

    def test_repeated_query_recycles(self):
        db = self.make_db()
        q = "SELECT count(*) FROM obs WHERE region = 7"
        db.execute(q)
        executed_before = db.interpreter.stats.instructions_executed
        db.execute(q)
        executed_again = (db.interpreter.stats.instructions_executed
                          - executed_before)
        assert db.interpreter.stats.instructions_recycled > 0
        # The repeat run recomputes fewer instructions than the first.
        first_run = executed_before
        assert executed_again < first_run

    def test_overlapping_queries_share_work(self):
        db = self.make_db()
        db.query("SELECT mag FROM obs WHERE region = 3")
        hits_before = db.recycler.stats.hits
        # Same selection feeding a different aggregate: the select and
        # bind results recycle.
        db.query("SELECT count(*) FROM obs WHERE region = 3")
        assert db.recycler.stats.hits > hits_before

    def test_updates_invalidate(self):
        db = self.make_db()
        q = "SELECT count(*) FROM obs WHERE region = 7"
        first = db.execute(q).scalar()
        db.execute("INSERT INTO obs VALUES (7, 1.0)")
        assert db.execute(q).scalar() == first + 1

    def test_deletes_invalidate(self):
        db = self.make_db()
        q = "SELECT count(*) FROM obs WHERE region = 7"
        first = db.execute(q).scalar()
        db.execute("DELETE FROM obs WHERE region = 7")
        assert db.execute(q).scalar() == 0
        assert first > 0
