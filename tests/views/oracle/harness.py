"""Shared machinery for the view-maintenance differential oracle.

Seeded view definitions are derived from the same :class:`QueryGenerator`
schemas the engine oracles replay, and the expected contents of every
view after every committed batch is a *full recomputation* of its SELECT
through the row-at-a-time reference executor.  An incremental maintainer
that drops, duplicates or mis-weights a single delta diverges from that
recomputation immediately.
"""

from repro.sql.parser import parse_sql
from tests.helpers import assert_same_rows

# Statement mix skewed toward retractions: updates and deletes are where
# weighted Z-set maintenance earns its keep (negative weights, extremum
# retraction, groups vanishing at weight zero).
RETRACTION_HEAVY = {"insert": 2, "update": 3, "delete": 2}


def view_specs(generator, case_id, kinds=("linear", "aggregate",
                                          "scalar", "join", "eager")):
    """Seeded ``(name, select_sql)`` view definitions over the
    generator's schema, one per requested maintenance kind."""
    t0 = generator.tables[0]
    key = t0.column_names[0]
    nums = t0.columns_of_type("BIGINT")
    num = nums[-1] if len(nums) > 1 else key
    specs = []
    if "linear" in kinds:
        predicate = generator.gen_predicate(t0, case_id=case_id)
        specs.append(("v_lin", "SELECT {0} FROM {1} WHERE {2}".format(
            ", ".join(t0.column_names), t0.name, predicate)))
    if "aggregate" in kinds:
        specs.append((
            "v_grp",
            "SELECT {key}, count(*) AS n, sum({num}) AS s, "
            "min({num}) AS lo, max({num}) AS hi, avg({num}) AS a "
            "FROM {t} GROUP BY {key}".format(key=key, num=num,
                                             t=t0.name)))
    if "scalar" in kinds:
        specs.append(("v_tot",
                      "SELECT count(*) AS n, sum({0}) AS s "
                      "FROM {1}".format(num, t0.name)))
    if "join" in kinds and len(generator.tables) > 1:
        t1 = generator.tables[1]
        k1 = t1.column_names[0]
        other = t1.column_names[-1]
        specs.append((
            "v_join",
            "SELECT {t0}.{key}, {t0}.{num}, {t1}.{other} FROM {t0} "
            "JOIN {t1} ON {t0}.{key} = {t1}.{k1}".format(
                t0=t0.name, t1=t1.name, key=key, num=num,
                other=other, k1=k1)))
    if "eager" in kinds:
        specs.append(("v_dis",
                      "SELECT DISTINCT {0} FROM {1}".format(key,
                                                            t0.name)))
    return specs


def create_views(executor, specs):
    for name, sql in specs:
        executor.execute("CREATE MATERIALIZED VIEW {0} AS {1}".format(
            name, sql))


def expected_contents(reference, specs):
    """name -> full recomputation of the view through the reference."""
    return {name: reference.execute(parse_sql(sql))
            for name, sql in specs}


def assert_view_contents(contents_of, reference, specs, context):
    """``contents_of(name)`` must equal the reference recomputation for
    every view, as a multiset."""
    for name, sql in specs:
        assert_same_rows(
            contents_of(name), reference.execute(parse_sql(sql)),
            context="{0} view={1} ({2})".format(context, name, sql))
