"""The view-maintenance differential oracle.

After every committed batch of a seeded DML script, every materialized
view's contents must equal a full recomputation of its SELECT through
the row-at-a-time reference executor — on the plain single-node engine,
on an engine recovered after a crash on the commit path, on a
replicated cluster after drain, and on a two-shard deployment.

``VIEW_SEED`` shifts the seed band so CI can sweep disjoint corpora:
``VIEW_SEED=n`` covers seeds ``50n+1 .. 50n+8``.
"""

import os

import pytest

from repro.faults import CrashError, FaultInjector
from repro.replication import ReplicationGroup
from repro.sharding import ShardedDatabase
from repro.sql.database import Database
from repro.sql.parser import parse_sql
from repro.wal import WriteAheadLog
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor
from tests.oracle.test_recovery_differential import copy_tables
from tests.views.oracle.harness import (RETRACTION_HEAVY,
                                        assert_view_contents,
                                        create_views, view_specs)

SEED_BASE = int(os.environ.get("VIEW_SEED", "0")) * 50
SEEDS = list(range(SEED_BASE + 1, SEED_BASE + 9))
SCRIPTS_PER_SEED = 3

CRASH_SITES = [("commit.validate", "pre"), ("wal.append", "pre"),
               ("commit.publish", "post"), ("commit.apply", "post")]


def build_engine(generator):
    db = Database(wal=WriteAheadLog())
    for statement in generator.setup_statements():
        db.execute(statement)
    return db


def make_reference(generator):
    return ReferenceExecutor(copy_tables(generator.reference_tables()))


@pytest.mark.parametrize("seed", SEEDS)
def test_single_node_views_match_recomputation(seed):
    """Every commit, every view kind: incremental == recomputation;
    a WAL replay from scratch rebuilds the identical view state."""
    generator = QueryGenerator(seed)
    db = build_engine(generator)
    specs = view_specs(generator, case_id=0)
    create_views(db, specs)
    reference = make_reference(generator)
    assert_view_contents(db.views.contents, reference, specs,
                         "seed={0} initial".format(seed))
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i,
                                          weights=RETRACTION_HEAVY)
        for j, sql in enumerate(script):
            db.execute(sql)  # autocommit: one batch per statement
            reference.apply_dml(parse_sql(sql))
            assert_view_contents(
                db.views.contents, reference, specs,
                "seed={0} script#{1} stmt#{2} {3!r}".format(
                    seed, i, j, sql))
    db.recover()
    assert_view_contents(db.views.contents, reference, specs,
                         "seed={0} after replay".format(seed))
    for name, _ in specs:
        assert db.views.counters[name]["deltas"] > 0


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("site,expect", CRASH_SITES)
def test_recovered_views_match_recomputation(seed, site, expect):
    """A crash planted on the commit path must leave the recovered
    views equal to a recomputation over the pre- or post-script tables,
    depending on whether the commit record became durable."""
    generator = QueryGenerator(seed)
    db = build_engine(generator)
    specs = view_specs(generator, case_id=0)
    create_views(db, specs)
    pre = ReferenceExecutor(copy_tables(generator.reference_tables()))
    post = ReferenceExecutor(copy_tables(generator.reference_tables()))
    script = generator.gen_dml_script(case_id=0,
                                      weights=RETRACTION_HEAVY)
    for sql in script:
        post.apply_dml(parse_sql(sql))

    inj = FaultInjector()
    db.faults = inj
    db.wal.faults = inj
    inj.crash_at(site)
    txn = db.begin()
    for sql in script:
        txn.execute(sql)
    with pytest.raises(CrashError):
        txn.commit()
    db.recover()
    reference = pre if expect == "pre" else post
    assert_view_contents(
        db.views.contents, reference, specs,
        "seed={0} crash at {1} -> {2}".format(seed, site, expect))


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_replicated_views_converge_to_recomputation(seed):
    """create_view records ship through the WAL: after drain, every
    serving replica maintains the same views as the reference."""
    generator = QueryGenerator(seed)
    group = ReplicationGroup(n_replicas=2)
    for statement in generator.setup_statements():
        group.execute(statement)
    specs = view_specs(generator, case_id=0)
    create_views(group, specs)
    group.drain()
    reference = make_reference(generator)
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i,
                                          weights=RETRACTION_HEAVY)
        for sql in script:
            group.execute(sql)
            reference.apply_dml(parse_sql(sql))
        group.drain()
        for node in group.nodes:
            if not node.alive:
                continue
            assert_view_contents(
                node.db.views.contents, reference, specs,
                "seed={0} script#{1} node={2}".format(seed, i,
                                                      node.node_id))
    assert group.divergence_report() == []


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_sharded_views_match_recomputation(seed):
    """Two shards, every base table partitioned by its first column:
    linear views concatenate per-shard contents, aggregate views merge
    per-shard partial accumulators — both must equal recomputation."""
    generator = QueryGenerator(seed)
    db = ShardedDatabase(n_shards=2)
    for table in generator.tables:
        db.execute(table.create_sql(
            partition_key=table.column_names[0]))
        if table.rows:
            db.execute(table.insert_sql())
    specs = view_specs(generator, case_id=0,
                       kinds=("linear", "aggregate"))
    create_views(db, specs)
    reference = make_reference(generator)

    def contents(name):
        return db.query("SELECT * FROM {0}".format(name))

    assert_view_contents(contents, reference, specs,
                         "seed={0} initial".format(seed))
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i,
                                          weights=RETRACTION_HEAVY)
        for sql in script:
            db.execute(sql)
            reference.apply_dml(parse_sql(sql))
        assert_view_contents(
            contents, reference, specs,
            "seed={0} script#{1}".format(seed, i))
    assert db.stats.view_reads > 0
