"""Property-based view maintenance invariants (Hypothesis).

For random view definitions over a small NULL-bearing schema and random
interleaved insert/delete histories, the incrementally maintained
contents must equal a full recomputation through the reference executor
after every single commit — including empty deltas (deletes that match
nothing), NULL aggregate arguments, and retraction of a group's last
row (zero-weight groups must vanish, scalar aggregates must not)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Database
from repro.sql.parser import parse_sql
from tests.helpers import assert_same_rows
from tests.oracle.reference import ReferenceExecutor

COLUMNS = ("k", "a", "b")

# Predicates draw only from maintainer-evaluated space (view WHERE
# clauses run over decoded None-space rows, mirroring the reference's
# three-valued logic under truthiness).  Aggregate arguments stay
# BIGINT: the engine's grouped min/max over NaN-nil DOUBLEs warns, and
# this suite runs under -W error.
_COMPARISON = st.builds(
    "{0} {1} {2}".format,
    st.sampled_from(("a", "b")),
    st.sampled_from(("=", "<>", "<", "<=", ">", ">=")),
    st.integers(-4, 4).map(str))
_IS_NULL = st.sampled_from(("a", "b")).map("{0} IS NULL".format)
_ATOM = _COMPARISON | _IS_NULL
PREDICATE = st.one_of(
    _ATOM,
    st.builds("({0}) {1} ({2})".format, _ATOM,
              st.sampled_from(("AND", "OR")), _ATOM))

PROJECTION = st.sampled_from((
    "k, a, b", "a, b", "k, a + b AS s", "b, k"))

# Inserted rows: small key domain so deletes retract many rows and
# groups drain to empty; a and b are nullable.
_VALUE = st.integers(-4, 4) | st.none()
INSERT = st.tuples(st.just("insert"), st.integers(0, 3), _VALUE,
                   _VALUE)
# Keys 0..5 but inserts only use 0..3: deletes at 4-5 are empty deltas.
DELETE = st.tuples(st.just("delete"), st.integers(0, 5))
OPS = st.lists(INSERT | DELETE, min_size=1, max_size=12)


def _literal(value):
    return "NULL" if value is None else str(value)


def _make_db(seed_rows):
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, a BIGINT, b BIGINT)")
    for row in seed_rows:
        db.execute("INSERT INTO t VALUES ({0})".format(
            ", ".join(_literal(v) for v in row)))
    return db


def _run_history(view_sql, seed_rows, ops):
    """Replay ``ops``, checking incremental == recomputation after
    every commit."""
    db = _make_db(seed_rows)
    db.execute("CREATE MATERIALIZED VIEW v AS " + view_sql)
    select = parse_sql(view_sql)
    rows = [tuple(r) for r in seed_rows]

    def check(label):
        reference = ReferenceExecutor({"t": (list(COLUMNS), rows)})
        assert_same_rows(db.views.contents("v"),
                         reference.execute(select),
                         context="{0} after {1}".format(view_sql,
                                                        label))

    check("materialize")
    for op in ops:
        if op[0] == "insert":
            db.execute("INSERT INTO t VALUES ({0})".format(
                ", ".join(_literal(v) for v in op[1:])))
            rows.append(tuple(op[1:]))
        else:
            db.execute("DELETE FROM t WHERE k = {0}".format(op[1]))
            rows = [r for r in rows if r[0] != op[1]]
        check(op)
    return db


@settings(max_examples=60, deadline=None)
@given(projection=PROJECTION, predicate=PREDICATE,
       seed_rows=st.lists(st.tuples(st.integers(0, 3), _VALUE, _VALUE),
                          max_size=6),
       ops=OPS)
def test_linear_views_track_any_history(projection, predicate,
                                        seed_rows, ops):
    _run_history(
        "SELECT {0} FROM t WHERE {1}".format(projection, predicate),
        seed_rows, ops)


@settings(max_examples=60, deadline=None)
@given(predicate=PREDICATE | st.none(),
       seed_rows=st.lists(st.tuples(st.integers(0, 3), _VALUE, _VALUE),
                          max_size=6),
       ops=OPS)
def test_grouped_aggregates_track_any_history(predicate, seed_rows,
                                              ops):
    where = "" if predicate is None else " WHERE {0}".format(predicate)
    sql = ("SELECT k, count(*) AS n, count(a) AS na, sum(a) AS s, "
           "min(a) AS lo, max(a) AS hi, avg(a) AS av FROM t{0} "
           "GROUP BY k".format(where))
    db = _run_history(sql, seed_rows, ops)
    # Zero-weight groups are gone from the backing store itself, not
    # merely filtered at read time.
    live_keys = {row[0] for row in db.views.contents("v")}
    tracked = {group.key_values[0]
               for group in db.views._views["v"]._groups.values()
               if group.weight}  # implementation peek: no zombie groups
    assert tracked == live_keys


@settings(max_examples=40, deadline=None)
@given(seed_rows=st.lists(st.tuples(st.integers(0, 3), _VALUE, _VALUE),
                          max_size=4),
       ops=OPS)
def test_scalar_aggregates_track_any_history(seed_rows, ops):
    db = _run_history(
        "SELECT count(*) AS n, count(b) AS nb, sum(b) AS s, "
        "avg(b) AS av FROM t", seed_rows, ops)
    # However the history ends — even fully drained — exactly one row.
    assert len(db.views.contents("v")) == 1


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_retraction_to_empty_then_regrowth(ops):
    """Drain the table completely mid-history, then regrow it: the
    maintainer must come back from empty without residue."""
    db = _make_db([(0, 1, 1), (1, None, 2)])
    db.execute("CREATE MATERIALIZED VIEW v AS "
               "SELECT k, count(*) AS n, sum(a) AS s FROM t GROUP BY k")
    select = parse_sql("SELECT k, count(*) AS n, sum(a) AS s FROM t "
                       "GROUP BY k")
    for key in range(4):
        db.execute("DELETE FROM t WHERE k = {0}".format(key))
    assert db.views.contents("v") == []
    rows = []
    for op in ops:
        if op[0] == "insert":
            db.execute("INSERT INTO t VALUES ({0})".format(
                ", ".join(_literal(v) for v in op[1:])))
            rows.append(tuple(op[1:]))
        else:
            db.execute("DELETE FROM t WHERE k = {0}".format(op[1]))
            rows = [r for r in rows if r[0] != op[1]]
    reference = ReferenceExecutor({"t": (list(COLUMNS), rows)})
    assert_same_rows(db.views.contents("v"), reference.execute(select),
                     context="after regrowth")
