"""Unit coverage of repro.views: DDL surface, maintenance operators,
read-only enforcement, observability and plan-cache interaction."""

import pytest

from repro.observability.tracer import Tracer
from repro.sql import Database, parse_sql, render_select
from repro.views import ViewError
from tests.helpers import assert_same_rows


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT, s VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 10, 'a'), (2, 20, 'b'), "
               "(1, 5, 'c')")
    return db


# -- DDL surface ---------------------------------------------------------------


def test_create_and_select_linear_view():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW big AS "
               "SELECT k, v FROM t WHERE v > 6")
    assert_same_rows(db.query("SELECT * FROM big"), [(1, 10), (2, 20)])
    # The backing table is ordinary: projections and WHERE work.
    assert_same_rows(db.query("SELECT k FROM big WHERE v = 20"), [(2,)])


def test_drop_view_removes_backing_table():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k FROM t")
    db.execute("DROP MATERIALIZED VIEW w")
    assert not db.views.names()
    with pytest.raises(KeyError):
        db.execute("SELECT * FROM w")
    with pytest.raises(KeyError):
        db.execute("DROP MATERIALIZED VIEW w")


def test_view_kinds_classified():
    db = make_db()
    db.execute("CREATE TABLE u (k BIGINT, w BIGINT)")
    cases = [
        ("SELECT k, v FROM t WHERE v > 0", "linear"),
        ("SELECT k, count(*) AS n FROM t GROUP BY k", "aggregate"),
        ("SELECT sum(v) AS sv FROM t", "aggregate"),
        ("SELECT t.k, u.w FROM t JOIN u ON t.k = u.k", "join"),
        ("SELECT DISTINCT k FROM t", "eager"),
        ("SELECT k, count(*) AS n FROM t GROUP BY k HAVING count(*) > 1",
         "eager"),
        ("SELECT a.k FROM t a JOIN t b ON a.k = b.k", "eager"),
    ]
    for index, (select, kind) in enumerate(cases):
        name = "view{0}".format(index)
        db.execute("CREATE MATERIALIZED VIEW {0} AS {1}".format(
            name, select))
        assert db.views.definition(name).kind == kind, select


def test_rejected_definitions():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k FROM t")
    bad = [
        "CREATE MATERIALIZED VIEW x AS SELECT k FROM t ORDER BY k",
        "CREATE MATERIALIZED VIEW x AS SELECT k FROM t LIMIT 3",
        "CREATE MATERIALIZED VIEW x AS SELECT k FROM w",   # view-over-view
        "CREATE MATERIALIZED VIEW w AS SELECT k FROM t",   # duplicate
        "CREATE MATERIALIZED VIEW t AS SELECT k FROM t",   # name is a table
        "CREATE MATERIALIZED VIEW x AS SELECT k FROM nope",
    ]
    for sql in bad:
        with pytest.raises(ViewError):
            db.execute(sql)
    # A failed CREATE leaves no trace: the name stays free.
    assert db.views.names() == ["w"]
    assert "x" not in db.catalog


def test_create_table_cannot_shadow_view():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k FROM t")
    with pytest.raises(ValueError):
        db.execute("CREATE TABLE w (a BIGINT)")


def test_views_are_read_only():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k, v FROM t")
    for sql in ("INSERT INTO w VALUES (9, 9)",
                "DELETE FROM w WHERE k = 1",
                "UPDATE w SET v = 0 WHERE k = 1"):
        with pytest.raises(ValueError, match="read-only"):
            db.execute(sql)
        with db.begin() as txn:
            with pytest.raises(ValueError, match="read-only"):
                txn.execute(sql)
            txn.abort()


def test_view_ddl_rejected_inside_transaction():
    db = make_db()
    txn = db.begin()
    with pytest.raises(NotImplementedError):
        txn.execute("CREATE MATERIALIZED VIEW w AS SELECT k FROM t")
    with pytest.raises(NotImplementedError):
        txn.execute("DROP MATERIALIZED VIEW w")
    txn.abort()


def test_render_select_round_trips():
    for sql in [
        "SELECT k, v + 1 AS w FROM t WHERE (v > 3 AND s = 'a') OR k = 1",
        "SELECT k, count(*) AS n, sum(v) AS sv FROM t GROUP BY k",
        "SELECT DISTINCT t.k, u.w FROM t JOIN u ON t.k = u.k "
        "WHERE u.w IS NULL",
        "SELECT count(*) AS n FROM t WHERE NOT (v = 2)",
    ]:
        select = parse_sql(sql)
        assert parse_sql(render_select(select)) == select, sql


# -- incremental maintenance ---------------------------------------------------


def test_linear_view_tracks_inserts_updates_deletes():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW big AS "
               "SELECT k, v FROM t WHERE v > 6")
    db.execute("INSERT INTO t VALUES (3, 30, 'd'), (4, 2, 'e')")
    assert_same_rows(db.query("SELECT * FROM big"),
                     [(1, 10), (2, 20), (3, 30)])
    db.execute("UPDATE t SET v = 3 WHERE k = 2")  # falls out of the view
    assert_same_rows(db.query("SELECT * FROM big"), [(1, 10), (3, 30)])
    db.execute("UPDATE t SET v = 40 WHERE k = 4")  # climbs into the view
    assert_same_rows(db.query("SELECT * FROM big"),
                     [(1, 10), (3, 30), (4, 40)])
    db.execute("DELETE FROM t WHERE k = 1")
    assert_same_rows(db.query("SELECT * FROM big"), [(3, 30), (4, 40)])


def test_linear_view_keeps_duplicates_as_multiset():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW ks AS SELECT k FROM t")
    assert_same_rows(db.query("SELECT * FROM ks"), [(1,), (1,), (2,)])
    db.execute("DELETE FROM t WHERE v = 5")  # retracts ONE copy of (1,)
    assert_same_rows(db.query("SELECT * FROM ks"), [(1,), (2,)])


def test_aggregate_view_groups_track_weights():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW agg AS SELECT k, count(*) AS n, "
               "sum(v) AS sv, avg(v) AS av FROM t GROUP BY k")
    assert_same_rows(db.query("SELECT * FROM agg"),
                     [(1, 2, 15, 7.5), (2, 1, 20, 20.0)])
    db.execute("INSERT INTO t VALUES (2, 10, 'x')")
    assert_same_rows(db.query("SELECT * FROM agg"),
                     [(1, 2, 15, 7.5), (2, 2, 30, 15.0)])
    # Retraction down to zero weight: the group VANISHES (no zero row).
    db.execute("DELETE FROM t WHERE k = 1")
    assert_same_rows(db.query("SELECT * FROM agg"), [(2, 2, 30, 15.0)])
    assert db.query("SELECT count(*) FROM agg") == [(1,)]


def test_minmax_retraction_recomputes_group():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW ext AS SELECT k, min(v) AS lo, "
               "max(v) AS hi FROM t GROUP BY k")
    assert_same_rows(db.query("SELECT * FROM ext"),
                     [(1, 5, 10), (2, 20, 20)])
    before = db.views.counters["ext"]["group_recomputes"]
    db.execute("DELETE FROM t WHERE v = 5")  # retracts group 1's minimum
    assert_same_rows(db.query("SELECT * FROM ext"),
                     [(1, 10, 10), (2, 20, 20)])
    assert db.views.counters["ext"]["group_recomputes"] == before + 1
    # Retracting a non-extremum answers from the accumulator alone.
    db.execute("INSERT INTO t VALUES (2, 30, 'z')")
    mid = db.views.counters["ext"]["group_recomputes"]
    db.execute("DELETE FROM t WHERE v = 30")  # 30 is the max... recompute
    db.execute("INSERT INTO t VALUES (1, 7, 'q')")
    after = db.views.counters["ext"]["group_recomputes"]
    db.execute("DELETE FROM t WHERE v = 7")   # 7 is not group 1's min=...
    # 7 > min(10)? no: min is 10 -> 7 became the min; keep the check
    # simple: the view stays correct either way.
    assert_same_rows(db.query("SELECT * FROM ext"),
                     [(1, 10, 10), (2, 20, 20)])
    assert after >= mid


def test_scalar_aggregate_view_always_has_one_row():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW tot AS "
               "SELECT count(*) AS n, sum(v) AS sv FROM t")
    assert db.query("SELECT * FROM tot") == [(3, 35)]
    db.execute("DELETE FROM t WHERE k > 0")
    # Empty base: exactly one row, count 0, sum NULL (logical space).
    assert db.views.contents("tot") == [(0, None)]
    db.execute("INSERT INTO t VALUES (7, 70, 'x')")
    assert db.query("SELECT * FROM tot") == [(1, 70)]


def test_join_view_bilinear_both_sides():
    db = make_db()
    db.execute("CREATE TABLE u (k BIGINT, w BIGINT)")
    db.execute("INSERT INTO u VALUES (1, 100), (3, 300)")
    db.execute("CREATE MATERIALIZED VIEW j AS SELECT t.k, t.v, u.w "
               "FROM t JOIN u ON t.k = u.k")
    assert_same_rows(db.query("SELECT * FROM j"),
                     [(1, 10, 100), (1, 5, 100)])
    db.execute("INSERT INTO t VALUES (3, 30, 'd')")   # delta on the left
    assert_same_rows(db.query("SELECT * FROM j"),
                     [(1, 10, 100), (1, 5, 100), (3, 30, 300)])
    db.execute("INSERT INTO u VALUES (2, 200)")       # delta on the right
    assert_same_rows(db.query("SELECT * FROM j"),
                     [(1, 10, 100), (1, 5, 100), (3, 30, 300),
                      (2, 20, 200)])
    db.execute("DELETE FROM u WHERE k = 1")           # retract right side
    assert_same_rows(db.query("SELECT * FROM j"),
                     [(3, 30, 300), (2, 20, 200)])


def test_join_view_both_sides_in_one_transaction():
    """dR joins old S, then dS joins new R: together exactly
    dR|><|S + R|><|dS + dR|><|dS."""
    db = make_db()
    db.execute("CREATE TABLE u (k BIGINT, w BIGINT)")
    db.execute("INSERT INTO u VALUES (1, 100)")
    db.execute("CREATE MATERIALIZED VIEW j AS SELECT t.k, u.w "
               "FROM t JOIN u ON t.k = u.k")
    with db.begin() as txn:
        txn.execute("INSERT INTO t VALUES (5, 50, 'n')")
        txn.execute("INSERT INTO u VALUES (5, 500)")   # matches new row
        txn.execute("DELETE FROM u WHERE k = 1")
    assert_same_rows(db.query("SELECT * FROM j"), [(5, 500)])


def test_eager_view_recomputes():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW d AS SELECT DISTINCT k FROM t")
    assert_same_rows(db.query("SELECT * FROM d"), [(1,), (2,)])
    db.execute("INSERT INTO t VALUES (9, 9, 'x'), (9, 9, 'x')")
    assert_same_rows(db.query("SELECT * FROM d"), [(1,), (2,), (9,)])
    assert db.views.counters["d"]["eager_recomputes"] == 1
    db.execute("DELETE FROM t WHERE k = 9")
    assert_same_rows(db.query("SELECT * FROM d"), [(1,), (2,)])


def test_null_rows_filtered_by_predicate():
    """A NULL predicate never matches (SQL semantics in the maintainer's
    logical space), and IS NULL sees decoded Nones."""
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)")
    db.execute("CREATE MATERIALIZED VIEW pos AS "
               "SELECT k FROM t WHERE v > 0")
    db.execute("CREATE MATERIALIZED VIEW missing AS "
               "SELECT k FROM t WHERE v IS NULL")
    assert_same_rows(db.query("SELECT * FROM pos"), [(1,), (3,)])
    assert_same_rows(db.query("SELECT * FROM missing"), [(2,)])
    db.execute("INSERT INTO t VALUES (4, NULL)")
    db.execute("DELETE FROM t WHERE k = 2")
    assert_same_rows(db.query("SELECT * FROM pos"), [(1,), (3,)])
    assert_same_rows(db.query("SELECT * FROM missing"), [(4,)])


def test_null_aggregate_arguments_are_skipped():
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO t VALUES (1, 10), (1, NULL), (2, NULL)")
    db.execute("CREATE MATERIALIZED VIEW agg AS SELECT k, count(*) AS n, "
               "count(v) AS nv, sum(v) AS sv FROM t GROUP BY k")
    # count(*) counts rows; count(v)/sum(v) skip NULLs; an all-NULL
    # group sums to NULL (logical space; the engine stores its nil).
    assert db.views.contents("agg") in (
        [(1, 2, 1, 10), (2, 1, 0, None)],
        [(2, 1, 0, None), (1, 2, 1, 10)])
    db.execute("DELETE FROM t WHERE v IS NULL")
    assert db.views.contents("agg") == [(1, 1, 1, 10)]


# -- observability, plan cache, durability -------------------------------------


def test_view_delta_spans_and_counters():
    tracer = Tracer()
    db = Database(tracer=tracer)
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("CREATE MATERIALIZED VIEW sv AS "
               "SELECT k, sum(v) AS s FROM t GROUP BY k")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")

    def spans(node, name):
        found = [node] if node.name == name else []
        for child in node.children:
            found.extend(spans(child, name))
        return found

    deltas = [s for root in tracer.roots
              for s in spans(root, "view.delta")]
    assert len(deltas) == 1
    assert deltas[0].attrs["view"] == "sv"
    assert deltas[0].attrs["table"] == "t"
    counters = db.views.counters["sv"]
    assert counters["deltas"] == 1
    assert counters["rows_changed"] == 2
    assert counters["last_lsn"] == db.commit_seq


def test_view_ddl_invalidates_plan_cache_and_epoch():
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k, v FROM t")
    db.query("SELECT k FROM w")
    assert db._plan_cache
    epoch_before = db.plan_compiler.cache.schema_epoch
    db.execute("DROP MATERIALIZED VIEW w")
    assert not db._plan_cache
    assert db.plan_compiler.cache.schema_epoch > epoch_before
    # Recreating with a different shape compiles fresh plans.
    db.execute("CREATE MATERIALIZED VIEW w AS SELECT k FROM t")
    assert db.query("SELECT k FROM w") is not None


def test_snapshot_isolated_view_reads():
    """A transaction reads the view as of its snapshot, exactly like
    any other table — backing tables are ordinary catalog tables."""
    db = make_db()
    db.execute("CREATE MATERIALIZED VIEW sv AS "
               "SELECT k, sum(v) AS s FROM t GROUP BY k")
    txn = db.begin(pin=True)
    before = txn.execute("SELECT * FROM sv").rows()
    db.execute("INSERT INTO t VALUES (1, 100, 'z')")
    assert_same_rows(txn.execute("SELECT * FROM sv").rows(), before)
    txn.abort()
    assert_same_rows(db.query("SELECT * FROM sv"),
                     [(1, 115), (2, 20)])
