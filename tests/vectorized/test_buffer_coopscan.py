"""Tests for the simulated disk, buffer manager, and cooperative scans."""

import pytest

from repro.vectorized import BufferManager, ScanQuery, SimulatedDisk, \
    run_scans


class TestSimulatedDisk:
    def test_sequential_reads_seek_once(self):
        disk = SimulatedDisk(100, seek_ms=4.0, transfer_ms=0.1)
        for page in range(10):
            disk.read(page)
        assert disk.stats.reads == 10
        assert disk.stats.seeks == 1  # initial positioning only

    def test_random_reads_seek_every_time(self):
        disk = SimulatedDisk(100)
        for page in (50, 10, 90, 30):
            disk.read(page)
        assert disk.stats.seeks == 4

    def test_time_accounting(self):
        disk = SimulatedDisk(100, seek_ms=4.0, transfer_ms=0.1)
        disk.read(0)
        disk.read(1)
        assert disk.stats.time_ms == pytest.approx(4.0 + 0.2)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            SimulatedDisk(10).read(10)


class TestBufferManager:
    def test_hit_after_miss(self):
        disk = SimulatedDisk(100)
        buf = BufferManager(disk, capacity=4)
        assert buf.get(5) is False
        assert buf.get(5) is True
        assert buf.hits == 1
        assert buf.misses == 1

    def test_lru_eviction(self):
        disk = SimulatedDisk(100)
        buf = BufferManager(disk, capacity=2)
        buf.get(1)
        buf.get(2)
        buf.get(1)      # 2 becomes LRU
        buf.get(3)      # evicts 2
        assert 1 in buf
        assert 2 not in buf

    def test_read_ahead(self):
        disk = SimulatedDisk(100)
        buf = BufferManager(disk, capacity=8, read_ahead=3)
        buf.get(10)
        assert all(p in buf for p in (10, 11, 12, 13))
        assert buf.get(11) is True

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BufferManager(SimulatedDisk(10), 0)


class TestCooperativeScans:
    def make_queries(self, n_queries, n_pages, stagger_ms=2.0):
        """Scans of the full table, arriving a realistic interval apart
        (well within one full-table scan time, so the scans overlap)."""
        return [ScanQuery("q{0}".format(i), 0, n_pages,
                          arrival_ms=i * stagger_ms)
                for i in range(n_queries)]

    def test_all_queries_complete(self):
        for policy in ("cooperative", "independent"):
            disk = SimulatedDisk(64)
            queries = self.make_queries(4, 64)
            run_scans(queries, disk, buffer_capacity=8, policy=policy)
            assert all(q.done for q in queries)
            assert all(q.finish_time_ms is not None for q in queries)

    def test_cooperative_reads_each_page_roughly_once(self):
        disk = SimulatedDisk(128)
        queries = self.make_queries(8, 128, stagger_ms=1.0)
        run_scans(queries, disk, buffer_capacity=16, policy="cooperative")
        assert disk.stats.reads <= 128 * 1.5

    def test_independent_rereads_under_pressure(self):
        disk = SimulatedDisk(128)
        queries = self.make_queries(8, 128)
        run_scans(queries, disk, buffer_capacity=16, policy="independent")
        assert disk.stats.reads >= 128 * 1.5

    def test_cooperation_creates_synergy(self):
        """The [45] claim: cooperative beats independent on total time
        and on per-query latency."""
        disk_coop = SimulatedDisk(128)
        coop = self.make_queries(6, 128)
        run_scans(coop, disk_coop, buffer_capacity=16,
                  policy="cooperative")
        disk_ind = SimulatedDisk(128)
        ind = self.make_queries(6, 128)
        run_scans(ind, disk_ind, buffer_capacity=16, policy="independent")
        assert disk_coop.stats.time_ms < disk_ind.stats.time_ms / 2
        latency_coop = sum(q.finish_time_ms - q.arrival_ms
                           for q in coop) / len(coop)
        latency_ind = sum(q.finish_time_ms - q.arrival_ms
                          for q in ind) / len(ind)
        assert latency_coop < latency_ind / 2

    def test_partial_overlap(self):
        disk = SimulatedDisk(100)
        queries = [ScanQuery("a", 0, 60), ScanQuery("b", 40, 100)]
        run_scans(queries, disk, buffer_capacity=8, policy="cooperative")
        assert all(q.done for q in queries)

    def test_invalid_policy(self):
        with pytest.raises(KeyError):
            run_scans([ScanQuery("a", 0, 4)], SimulatedDisk(4), 2,
                      policy="anarchic")

    def test_empty_scan_range_rejected(self):
        with pytest.raises(ValueError):
            ScanQuery("bad", 5, 5)
