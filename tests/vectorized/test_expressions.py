"""Unit tests for the vectorized expression primitives."""

import numpy as np
import pytest

from repro.vectorized import Batch, BinExpr, Col, Const, compile_expr
from repro.vectorized.expressions import NotExpr


@pytest.fixture
def batch():
    return Batch({"a": np.asarray([1, 2, 3]),
                  "b": np.asarray([10, 20, 30])})


class TestNodes:
    def test_col(self, batch):
        assert Col("a")(batch).tolist() == [1, 2, 3]

    def test_const(self, batch):
        assert Const(5)(batch) == 5

    def test_binexpr(self, batch):
        expr = BinExpr("+", Col("a"), Col("b"))
        assert expr(batch).tolist() == [11, 22, 33]

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            BinExpr("**", Col("a"), Const(2))

    def test_not(self, batch):
        expr = NotExpr(BinExpr(">", Col("a"), Const(1)))
        assert expr(batch).tolist() == [True, False, False]

    def test_reprs(self):
        assert "a" in repr(Col("a"))
        assert "5" in repr(Const(5))
        assert "+" in repr(BinExpr("+", Col("a"), Const(5)))


class TestCompileExpr:
    def test_string_shorthand_is_column(self, batch):
        assert compile_expr("a")(batch).tolist() == [1, 2, 3]

    def test_scalar_shorthand_is_constant(self, batch):
        assert compile_expr(7)(batch) == 7

    def test_nested_tuple_spec(self, batch):
        expr = compile_expr(("*", ("+", "a", 1), 10))
        assert expr(batch).tolist() == [20, 30, 40]

    def test_explicit_col_const_tags(self, batch):
        expr = compile_expr(("-", ("col", "b"), ("const", 5)))
        assert expr(batch).tolist() == [5, 15, 25]

    def test_not_spec(self, batch):
        expr = compile_expr(("not", ("==", "a", 2)))
        assert expr(batch).tolist() == [True, False, True]

    def test_logic_spec(self, batch):
        expr = compile_expr(("and", (">", "a", 1), ("<", "b", 30)))
        assert expr(batch).tolist() == [False, True, False]

    def test_expression_instances_pass_through(self, batch):
        original = Col("a")
        assert compile_expr(original) is original

    def test_comparison_ops(self, batch):
        for op, expected in ((">=", [False, True, True]),
                             ("<=", [True, True, False]),
                             ("!=", [True, False, True])):
            assert compile_expr((op, "a", 2))(batch).tolist() == expected

    def test_division_and_modulo(self, batch):
        assert compile_expr(("/", "b", "a"))(batch).tolist() == \
            [10.0, 10.0, 10.0]
        assert compile_expr(("%", "b", 7))(batch).tolist() == [3, 6, 2]
