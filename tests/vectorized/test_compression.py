"""Tests for the ultra-lightweight compression schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectorized import choose_scheme, compress, decompress
from repro.vectorized.compression import SCHEMES


def roundtrip(values, scheme):
    col = compress(np.asarray(values), scheme)
    return decompress(col)


class TestRoundtrips:
    @pytest.mark.parametrize("scheme", ["rle", "dict", "pfor",
                                        "pfor-delta", "raw"])
    def test_roundtrip_random(self, scheme):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10_000, 5000)
        assert np.array_equal(roundtrip(values, scheme), values)

    @pytest.mark.parametrize("scheme", ["rle", "dict", "pfor",
                                        "pfor-delta", "raw"])
    def test_roundtrip_empty(self, scheme):
        values = np.asarray([], dtype=np.int64)
        assert len(roundtrip(values, scheme)) == 0

    def test_roundtrip_negative(self):
        values = np.asarray([-100, -5, 0, 3, -100])
        for scheme in ("pfor", "pfor-delta", "dict", "rle"):
            assert np.array_equal(roundtrip(values, scheme), values)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            compress(np.arange(4), "zip")


class TestRatios:
    def test_rle_on_sorted_runs(self):
        values = np.repeat(np.arange(100, dtype=np.int64), 100)
        col = compress(values, "rle")
        assert col.ratio > 20

    def test_dict_on_low_cardinality(self):
        rng = np.random.default_rng(1)
        values = rng.choice(np.asarray([10**9, 2 * 10**9, 3 * 10**9]),
                            10_000)
        col = compress(values, "dict")
        assert col.ratio > 6

    def test_pfor_on_small_spread(self):
        rng = np.random.default_rng(2)
        values = (10**12 + rng.integers(0, 200, 10_000)).astype(np.int64)
        col = compress(values, "pfor")
        assert col.ratio > 6

    def test_pfor_exceptions_preserved(self):
        # 1% outliers: kept as patched exceptions, not widened codes.
        values = np.arange(1000, dtype=np.int64) % 200
        values[::100] = 10**9
        col = compress(values, "pfor")
        assert len(col.payload["exc_pos"]) == 10
        assert col.payload["codes"].dtype == np.uint8
        assert np.array_equal(decompress(col), values)

    def test_pfor_delta_on_dense_keys(self):
        values = np.arange(0, 10**6, 7, dtype=np.int64)  # huge spread
        plain = compress(values, "pfor")
        delta = compress(values, "pfor-delta")
        assert delta.ratio > 3 * plain.ratio

    def test_decode_cycles_budget(self):
        """[44]: decompression in < 5 cycles/tuple (PFOR-DELTA is the
        ceiling)."""
        values = np.arange(1000, dtype=np.int64)
        for scheme in ("rle", "dict", "pfor", "pfor-delta"):
            col = compress(values, scheme)
            assert col.decode_cycles <= 5 * len(values)


class TestChooseScheme:
    def test_sorted_runs_pick_rle(self):
        assert choose_scheme(np.repeat(np.arange(50), 50)) == "rle"

    def test_low_cardinality_picks_dict(self):
        rng = np.random.default_rng(3)
        assert choose_scheme(rng.choice([1, 2], 10_000)) in ("dict", "rle")

    def test_dense_ascending_picks_delta(self):
        values = np.arange(0, 10**9, 997, dtype=np.int64)
        assert choose_scheme(values) == "pfor-delta"

    def test_small_spread_picks_pfor(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 1000, 10_000)
        assert choose_scheme(values) == "pfor"

    def test_incompressible_picks_raw(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1 << 60, 10_000)
        assert choose_scheme(values) == "raw"

    def test_floats_pick_raw(self):
        assert choose_scheme(np.asarray([1.5, 2.5])) == "raw"

    def test_auto_roundtrip(self):
        rng = np.random.default_rng(6)
        values = rng.integers(0, 100, 1000)
        col = compress(values)  # heuristic choice
        assert np.array_equal(decompress(col), values)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-10**12, max_value=10**12),
                max_size=200),
       st.sampled_from(["rle", "dict", "pfor", "pfor-delta", "raw"]))
def test_property_all_schemes_roundtrip(values, scheme):
    arr = np.asarray(values, dtype=np.int64)
    col = compress(arr, scheme)
    assert np.array_equal(decompress(col), arr)
    assert col.count == len(arr)
