"""Tests for the vectorized operator tree."""

import numpy as np
import pytest

from repro.hardware import TINY
from repro.vectorized import (
    Batch,
    ExecutionContext,
    ScalarVectorAggregate,
    VectorAggregate,
    VectorHashJoin,
    VectorProject,
    VectorScan,
    VectorSelect,
    run_engine,
)


def sales_columns(n=1000):
    rng = np.random.default_rng(0)
    return {
        "item": rng.integers(0, 10, n),
        "qty": rng.integers(1, 100, n),
        "price": rng.uniform(0.5, 5.0, n),
    }


class TestBatch:
    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3), "b": np.arange(2)})

    def test_missing_column(self):
        with pytest.raises(KeyError):
            Batch({"a": np.arange(3)}).column("z")

    def test_filtered_taken(self):
        b = Batch({"a": np.asarray([1, 2, 3])})
        assert b.filtered(np.asarray([True, False, True])) \
            .column("a").tolist() == [1, 3]
        assert b.taken(np.asarray([2, 0])).column("a").tolist() == [3, 1]


class TestScan:
    @pytest.mark.parametrize("vector_size", [1, 7, 100, 1000, 5000])
    def test_batches_cover_input(self, vector_size):
        ctx = ExecutionContext(vector_size)
        cols = sales_columns(1000)
        out = run_engine(VectorScan(ctx, cols))
        assert np.array_equal(out["qty"], cols["qty"])
        expected_batches = -(-1000 // vector_size)
        assert ctx.batches_produced == expected_batches

    def test_vector_size_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(0)

    def test_ragged_scan_rejected(self):
        ctx = ExecutionContext()
        with pytest.raises(ValueError):
            VectorScan(ctx, {"a": np.arange(3), "b": np.arange(4)})


class TestSelectProject:
    def test_select(self):
        ctx = ExecutionContext(64)
        cols = sales_columns()
        plan = VectorSelect(ctx, VectorScan(ctx, cols), (">", "qty", 50))
        out = run_engine(plan)
        assert (out["qty"] > 50).all()
        assert len(out["qty"]) == int((cols["qty"] > 50).sum())

    def test_select_none_matching(self):
        ctx = ExecutionContext(64)
        plan = VectorSelect(ctx, VectorScan(ctx, sales_columns()),
                            (">", "qty", 1000))
        assert run_engine(plan) == {}

    def test_project_expression(self):
        ctx = ExecutionContext(128)
        cols = sales_columns()
        plan = VectorProject(ctx, VectorScan(ctx, cols),
                             {"revenue": ("*", "qty", "price")})
        out = run_engine(plan)
        assert np.allclose(out["revenue"], cols["qty"] * cols["price"])

    def test_project_constant(self):
        ctx = ExecutionContext(128)
        plan = VectorProject(ctx, VectorScan(ctx, {"a": np.arange(5)}),
                             {"k": ("const", 7), "a": "a"})
        out = run_engine(plan)
        assert out["k"].tolist() == [7] * 5

    def test_compound_predicate(self):
        ctx = ExecutionContext(32)
        cols = sales_columns()
        plan = VectorSelect(
            ctx, VectorScan(ctx, cols),
            ("and", (">", "qty", 20), ("<", "qty", 40)))
        out = run_engine(plan)
        assert ((out["qty"] > 20) & (out["qty"] < 40)).all()


class TestHashJoin:
    def test_join_matches_reference(self):
        ctx = ExecutionContext(64)
        items = {"item": np.asarray([0, 1, 2]),
                 "label": np.asarray([10, 11, 12])}
        sales = {"item": np.asarray([2, 0, 2, 9]),
                 "qty": np.asarray([5, 6, 7, 8])}
        plan = VectorHashJoin(ctx, VectorScan(ctx, items),
                              VectorScan(ctx, sales),
                              build_key="item", probe_key="item")
        out = run_engine(plan)
        assert out["qty"].tolist() == [5, 6, 7]  # 9 has no match
        assert out["label"].tolist() == [12, 10, 12]

    def test_join_duplicates(self):
        ctx = ExecutionContext(8)
        build = {"k": np.asarray([1, 1])}
        probe = {"k": np.asarray([1, 1, 2])}
        plan = VectorHashJoin(ctx, VectorScan(ctx, build),
                              VectorScan(ctx, probe),
                              build_key="k", probe_key="k")
        out = run_engine(plan)
        assert len(out["k"]) == 4

    def test_column_collision_detected(self):
        ctx = ExecutionContext(8)
        build = {"k": np.asarray([1]), "x": np.asarray([1])}
        probe = {"k": np.asarray([1]), "x": np.asarray([2])}
        plan = VectorHashJoin(ctx, VectorScan(ctx, build),
                              VectorScan(ctx, probe),
                              build_key="k", probe_key="k")
        with pytest.raises(ValueError):
            run_engine(plan)

    def test_prefix_avoids_collision(self):
        ctx = ExecutionContext(8)
        build = {"k": np.asarray([1]), "x": np.asarray([1])}
        probe = {"k": np.asarray([1]), "x": np.asarray([2])}
        plan = VectorHashJoin(ctx, VectorScan(ctx, build),
                              VectorScan(ctx, probe),
                              build_key="k", probe_key="k",
                              build_prefix="b_")
        out = run_engine(plan)
        assert out["x"].tolist() == [2]
        assert out["b_x"].tolist() == [1]


class TestAggregates:
    def test_grouped_matches_numpy(self):
        ctx = ExecutionContext(100)
        cols = sales_columns(5000)
        plan = VectorAggregate(
            ctx, VectorScan(ctx, cols), group_key="item",
            aggregates={"total": ("sum", "qty"),
                        "n": ("count", "qty"),
                        "lo": ("min", "qty"),
                        "hi": ("max", "qty"),
                        "mean": ("avg", "qty")})
        out = run_engine(plan)
        order = np.argsort(out["item"])
        for g, item in zip(order, np.sort(np.unique(cols["item"]))):
            mask = cols["item"] == item
            assert out["item"][g] == item
            assert out["total"][g] == cols["qty"][mask].sum()
            assert out["n"][g] == mask.sum()
            assert out["lo"][g] == cols["qty"][mask].min()
            assert out["hi"][g] == cols["qty"][mask].max()
            assert np.isclose(out["mean"][g], cols["qty"][mask].mean())

    def test_grouped_result_independent_of_vector_size(self):
        cols = sales_columns(3000)
        results = []
        for vs in (1, 13, 512, 3000):
            ctx = ExecutionContext(vs)
            plan = VectorAggregate(
                ctx, VectorScan(ctx, cols), group_key="item",
                aggregates={"total": ("sum", "qty")})
            out = run_engine(plan)
            order = np.argsort(out["item"])
            results.append((out["item"][order].tolist(),
                            out["total"][order].tolist()))
        assert all(r == results[0] for r in results)

    def test_unknown_aggregate_kind(self):
        ctx = ExecutionContext()
        with pytest.raises(KeyError):
            VectorAggregate(ctx, VectorScan(ctx, {"a": np.arange(2)}),
                            group_key="a",
                            aggregates={"x": ("median", "a")})

    def test_scalar_aggregate(self):
        ctx = ExecutionContext(77)
        cols = sales_columns(500)
        plan = ScalarVectorAggregate(
            ctx, VectorScan(ctx, cols),
            aggregates={"total": ("sum", "qty"),
                        "n": ("count", "qty"),
                        "hi": ("max", "price")})
        out = run_engine(plan)
        assert out["total"][0] == cols["qty"].sum()
        assert out["n"][0] == 500
        assert np.isclose(out["hi"][0], cols["price"].max())

    def test_scalar_aggregate_empty(self):
        ctx = ExecutionContext(8)
        plan = ScalarVectorAggregate(
            ctx, VectorScan(ctx, {"a": np.asarray([], dtype=np.int64)}),
            aggregates={"n": ("count", "a"), "s": ("sum", "a")})
        out = run_engine(plan)
        assert out["n"][0] == 0
        assert out["s"][0] == 0


class TestProfiling:
    def test_per_operator_counters(self):
        cols = sales_columns(1000)
        ctx = ExecutionContext(100)
        plan = VectorSelect(ctx, VectorScan(ctx, cols), (">", "qty", 0))
        run_engine(plan)
        assert ctx.profile["VectorScan"][0] == 10
        assert ctx.profile["VectorScan"][1] == 1000
        assert ctx.profile["VectorSelect"][1] <= 1000

    def test_profile_empty_before_run(self):
        assert ExecutionContext().profile == {}


class TestInterpretationOverhead:
    def test_batch_count_drives_overhead(self):
        """Vector size 1 produces n batches — the per-tuple method-call
        overhead of tuple-at-a-time engines (Section 5)."""
        cols = sales_columns(2000)
        ctx1 = ExecutionContext(1)
        run_engine(VectorSelect(ctx1, VectorScan(ctx1, cols),
                                (">", "qty", 0)))
        ctx_big = ExecutionContext(1000)
        run_engine(VectorSelect(ctx_big, VectorScan(ctx_big, cols),
                                (">", "qty", 0)))
        assert ctx1.batches_produced >= 1000 * ctx_big.batches_produced / 3

    def test_cache_tracing_shows_vector_overflow(self):
        """Vectors beyond the cache stream and miss; cache-resident
        vectors are reused for free — E5's degrade-at-huge-vectors."""
        cols = {"a": np.arange(1 << 14, dtype=np.int64)}
        cycles = {}
        for vs in (128, 1 << 14):
            h = TINY.make_hierarchy()
            ctx = ExecutionContext(vs, hierarchy=h)
            plan = VectorProject(
                ctx, VectorProject(
                    ctx, VectorScan(ctx, cols), {"a": ("*", "a", 2)}),
                {"a": ("+", "a", 1)})
            run_engine(plan)
            cycles[vs] = h.total_cycles
        assert cycles[128] < cycles[1 << 14]
