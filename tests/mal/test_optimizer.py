"""Unit tests for the optimizer pipeline and its modules."""

import pytest

from repro.core import BAT
from repro.mal import (
    Const,
    DEFAULT_PIPELINE,
    Interpreter,
    MALProgram,
    Var,
    common_subexpression_elimination,
    constant_folding,
    dead_code_elimination,
    parse_program,
)
from repro.mal.optimizer import Pipeline, RECYCLING_PIPELINE
from repro.mal.optimizer.base import IMPURE_OPS, is_pure, register_impure


class TestConstantFolding:
    def test_folds_scalar_chain(self):
        program = parse_program('''
        a := calc.+(1, 2);
        b := calc.*(a, 10);
        c := language.pass(b);
        return c;
        ''')
        out = constant_folding(program)
        ops = [i.op for i in out.instructions]
        assert "calc.+" not in ops
        assert "calc.*" not in ops
        assert Interpreter().run_single(out) == 30

    def test_folded_return_value_reemitted(self):
        program = parse_program('''
        a := calc.+(2, 3);
        return a;
        ''')
        out = constant_folding(program)
        assert Interpreter().run_single(out) == 5

    def test_does_not_fold_variables(self):
        program = MALProgram(returns=("b",))
        program.append(("a",), "language.pass", (Const(1),))
        program.append(("b",), "calc.+", (Var("a"), Const(2)))
        out = constant_folding(program)
        assert any(i.op == "calc.+" for i in out.instructions)


class TestCSE:
    def test_duplicate_instruction_removed(self):
        program = parse_program('''
        age := sql.bind("t", "age");
        c1 := algebra.select(age, 1927);
        c2 := algebra.select(age, 1927);
        n1 := aggr.count(c1);
        n2 := aggr.count(c2);
        s := calc.+(n1, n2);
        return s;
        ''')
        out = common_subexpression_elimination(program)
        selects = [i for i in out.instructions if i.op == "algebra.select"]
        counts = [i for i in out.instructions if i.op == "aggr.count"]
        assert len(selects) == 1
        assert len(counts) == 1

    def test_different_constants_not_merged(self):
        program = parse_program('''
        age := sql.bind("t", "age");
        c1 := algebra.select(age, 1927);
        c2 := algebra.select(age, 1968);
        n1 := aggr.count(c1);
        n2 := aggr.count(c2);
        s := calc.+(n1, n2);
        return s;
        ''')
        out = common_subexpression_elimination(program)
        selects = [i for i in out.instructions if i.op == "algebra.select"]
        assert len(selects) == 2

    def test_returns_renamed_to_canonical(self):
        program = parse_program('''
        a := language.pass(1);
        b := language.pass(1);
        return b;
        ''')
        out = common_subexpression_elimination(program)
        assert out.returns == ("a",)
        assert Interpreter().run_single(out) == 1


class TestDeadCode:
    def test_unused_pure_instructions_removed(self):
        program = parse_program('''
        a := language.pass(1);
        unused := calc.+(a, 1);
        also_unused := calc.+(unused, 1);
        return a;
        ''')
        out = dead_code_elimination(program)
        assert len(out) == 1

    def test_transitively_live_kept(self):
        program = parse_program('''
        a := language.pass(1);
        b := calc.+(a, 1);
        c := calc.+(b, 1);
        return c;
        ''')
        out = dead_code_elimination(program)
        assert len(out) == 3

    def test_impure_ops_survive(self):
        register_impure("test.sideeffect")
        try:
            program = MALProgram(returns=("a",))
            program.append(("a",), "language.pass", (Const(1),))
            program.append(("x",), "test.sideeffect", ())
            out = dead_code_elimination(program)
            assert any(i.op == "test.sideeffect" for i in out.instructions)
        finally:
            IMPURE_OPS.discard("test.sideeffect")
        assert is_pure("test.sideeffect")


class TestPipeline:
    def test_default_pipeline_end_to_end(self):
        program = parse_program('''
        a := calc.+(1, 2);
        dead := calc.*(a, 100);
        x := language.pass(a);
        y := language.pass(a);
        s := calc.+(x, y);
        return s;
        ''')
        out = DEFAULT_PIPELINE.optimize(program)
        assert Interpreter().run_single(out) == 6
        assert len(out) < len(program)

    def test_optimization_preserves_semantics_on_bats(self):
        from tests.mal.test_interpreter import FakeCatalog
        catalog = FakeCatalog({
            "t": {"v": BAT.from_values([3, 1, 4, 1, 5])}
        })
        program = parse_program('''
        v := sql.bind("t", "v");
        c1 := algebra.selectrange(v, 1, 5);
        c2 := algebra.selectrange(v, 1, 5);
        p1 := algebra.leftfetchjoin(c1, v);
        p2 := algebra.leftfetchjoin(c2, v);
        s1 := aggr.sum(p1);
        s2 := aggr.sum(p2);
        total := calc.+(s1, s2);
        return total;
        ''')
        plain = Interpreter(catalog).run_single(program)
        optimized = DEFAULT_PIPELINE.optimize(program)
        fast = Interpreter(catalog).run_single(optimized)
        assert plain == fast

    def test_recycling_pipeline_marks_algebra_ops(self):
        program = parse_program('''
        v := sql.bind("t", "v");
        c := algebra.select(v, 1);
        return c;
        ''')
        out = RECYCLING_PIPELINE.optimize(program)
        marked = {i.op: i.recycle for i in out.instructions}
        assert marked["algebra.select"]
        # Catalog reads are recyclable too (version-keyed).
        assert marked["sql.bind"]

    def test_with_module_extends(self):
        p = Pipeline([constant_folding])
        q = p.with_module(dead_code_elimination)
        assert len(q.modules) == 2
        assert len(p.modules) == 1
