"""Unit tests for the textual MAL parser."""

import pytest

from repro.mal import Const, Var, parse_program
from repro.mal.parser import MALSyntaxError


class TestParser:
    def test_figure1_program(self):
        text = '''
        age := sql.bind("people", "age");
        cand := algebra.select(age, 1927);
        name := sql.bind("people", "name");
        res := algebra.leftfetchjoin(cand, name);
        return res;
        '''
        p = parse_program(text)
        assert len(p) == 4
        assert p.returns == ("res",)
        assert p.instructions[1].op == "algebra.select"
        assert p.instructions[1].args == (Var("age"), Const(1927))

    def test_multi_result(self):
        text = '''
        a := sql.bind("t", "x");
        b := sql.bind("t", "y");
        (l, r) := algebra.join(a, b);
        return l, r;
        '''
        p = parse_program(text)
        assert p.instructions[2].results == ("l", "r")
        assert p.returns == ("l", "r")

    def test_literals(self):
        text = '''
        a := language.pass(3);
        b := language.pass(2.5);
        c := language.pass("hi, \\"there\\"");
        d := language.pass(true);
        e := language.pass(nil);
        return a;
        '''
        p = parse_program(text)
        consts = [i.args[0].value for i in p.instructions]
        assert consts == [3, 2.5, 'hi, "there"', True, None]

    def test_comments_and_blank_lines(self):
        text = '''
        # leading comment
        a := language.pass(1);  # trailing

        return a;
        '''
        assert len(parse_program(text)) == 1

    def test_operator_op_names(self):
        text = '''
        a := language.pass(1);
        b := calc.+(a, 2);
        return b;
        '''
        p = parse_program(text)
        assert p.instructions[1].op == "calc.+"

    def test_syntax_error(self):
        with pytest.raises(MALSyntaxError):
            parse_program("this is not MAL")

    def test_unterminated_string(self):
        with pytest.raises(MALSyntaxError):
            parse_program('a := language.pass("oops);\nreturn a;')

    def test_use_before_def_rejected(self):
        with pytest.raises(ValueError):
            parse_program("x := language.pass(ghost);\nreturn x;")

    def test_commas_inside_strings(self):
        p = parse_program('a := language.pass("x, y");\nreturn a;')
        assert p.instructions[0].args[0].value == "x, y"
