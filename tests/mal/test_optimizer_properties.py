"""Property test: the optimizer pipeline preserves program semantics.

Random straight-line MAL programs over a random catalog are executed
plain and after every pipeline; the returned values must be identical.
This is the safety net that lets optimizer modules be composed freely
(Section 3.1's "assembled into optimization pipelines").
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BAT
from repro.mal import Interpreter, MALProgram
from repro.mal.ast import Const, Var
from repro.mal.optimizer import (
    CRACKING_PIPELINE,
    DEFAULT_PIPELINE,
    RECYCLING_PIPELINE,
)


class SimpleCatalog:
    def __init__(self, tables):
        self.tables = tables

    def bind(self, table, column):
        return self.tables[table][column]

    def count(self, table):
        return len(next(iter(self.tables[table].values())))

    def tid(self, table):
        from repro.core.atoms import OID
        return BAT(OID, np.arange(self.count(table), dtype=np.int64))

    def cracked_select(self, table, column, lo, hi, lo_incl, hi_incl):
        from repro.core.algebra import select_range
        return select_range(self.bind(table, column), lo, hi, lo_incl,
                            hi_incl, candidates=self.tid(table))

    def table_version(self, table):
        return ("fixed", table)


@st.composite
def random_program(draw):
    """A random valid MAL program over table "t" with column "v"."""
    program = MALProgram(name="fuzz")
    program.append(("tid",), "sql.tid", (Const("t"),))
    program.append(("col",), "sql.bind", (Const("t"), Const("v")))
    bat_vars = ["col"]
    cand_vars = ["tid"]
    scalar_vars = []
    n_ops = draw(st.integers(1, 8))
    for i in range(n_ops):
        choice = draw(st.integers(0, 5))
        name = "x{0}".format(i)
        if choice == 0:  # range select on the base column
            lo = draw(st.integers(-10, 60))
            program.append(
                (name,), "algebra.selectrange",
                (Var("col"), Const(lo),
                 Const(lo + draw(st.integers(0, 40))), Const(True),
                 Const(False), Var(draw(st.sampled_from(cand_vars)))))
            cand_vars.append(name)
        elif choice == 1:  # projection
            program.append(
                (name,), "algebra.leftfetchjoin",
                (Var(draw(st.sampled_from(cand_vars))), Var("col")))
            bat_vars.append(name)
        elif choice == 2:  # batcalc over a full column
            op = draw(st.sampled_from(["+", "-", "*"]))
            program.append((name,), "batcalc." + op,
                           (Var(draw(st.sampled_from(bat_vars))),
                            Const(draw(st.integers(-3, 3)))))
            bat_vars.append(name)
        elif choice == 3:  # aggregate
            program.append((name,), "aggr.sum",
                           (Var(draw(st.sampled_from(bat_vars))),))
            scalar_vars.append(name)
        elif choice == 4:  # scalar arithmetic (folding fodder)
            a = draw(st.integers(-5, 5))
            b = draw(st.integers(-5, 5))
            program.append((name,), "calc.+", (Const(a), Const(b)))
            scalar_vars.append(name)
        else:  # duplicate of an earlier instruction (CSE fodder)
            program.append(
                (name,), "algebra.selectrange",
                (Var("col"), Const(5), Const(25), Const(True),
                 Const(False), Var("tid")))
            cand_vars.append(name)
    returns = [draw(st.sampled_from(cand_vars + bat_vars))]
    if scalar_vars:
        returns.append(draw(st.sampled_from(scalar_vars)))
    program.returns = tuple(dict.fromkeys(returns))
    return program.validate()


def _normalize(value):
    if isinstance(value, BAT):
        return ("bat", value.decoded())
    return ("scalar", value)


@settings(max_examples=50, deadline=None)
@given(random_program(),
       st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_property_pipelines_preserve_semantics(program, values):
    catalog = SimpleCatalog({"t": {"v": BAT.from_values(values)}})
    plain = Interpreter(catalog).run(program)
    expected = [_normalize(plain[name]) for name in program.returns]
    for pipeline in (DEFAULT_PIPELINE, RECYCLING_PIPELINE,
                     CRACKING_PIPELINE):
        optimized = pipeline.optimize(program)
        out = Interpreter(catalog).run(optimized)
        # Positional comparison: CSE may canonicalize return *names*.
        got = [_normalize(v) for v in out.values()]
        assert got == expected, "pipeline {0} changed results".format(
            pipeline)
