"""Unit tests for the MAL program representation."""

import pytest

from repro.mal import Const, MALInstruction, MALProgram, Var


class TestInstruction:
    def test_rejects_raw_arguments(self):
        with pytest.raises(TypeError):
            MALInstruction(("x",), "algebra.select", ("not-wrapped",))

    def test_arg_vars(self):
        i = MALInstruction(("x",), "op.f", (Var("a"), Const(1), Var("b")))
        assert i.arg_vars == ("a", "b")

    def test_signature_distinguishes_const_and_var(self):
        a = MALInstruction(("x",), "op.f", (Var("v"),))
        b = MALInstruction(("y",), "op.f", (Const("v"),))
        assert a.signature() != b.signature()

    def test_signature_ignores_result_names(self):
        a = MALInstruction(("x",), "op.f", (Var("v"),))
        b = MALInstruction(("y",), "op.f", (Var("v"),))
        assert a.signature() == b.signature()

    def test_str_single_result(self):
        i = MALInstruction(("x",), "algebra.select", (Var("age"), Const(1927)))
        assert str(i) == "x := algebra.select(age, 1927);"

    def test_str_multi_result_and_string_const(self):
        i = MALInstruction(("a", "b"), "algebra.join",
                           (Var("l"), Const("x")))
        assert str(i) == '(a, b) := algebra.join(l, "x");'

    def test_str_nil_and_bool(self):
        i = MALInstruction(("x",), "op.f", (Const(None), Const(True)))
        assert "nil" in str(i)
        assert "true" in str(i)


class TestProgram:
    def test_append_builder(self):
        p = MALProgram()
        p.append(("x",), "algebra.select", (Var("c"), Const(3)))
        assert len(p) == 1

    def test_validate_def_before_use(self):
        p = MALProgram()
        p.append(("x",), "op.f", (Var("ghost"),))
        with pytest.raises(ValueError):
            p.validate()

    def test_validate_returns_defined(self):
        p = MALProgram(returns=("nope",))
        with pytest.raises(ValueError):
            p.validate()

    def test_copy_is_deep_for_instructions(self):
        p = MALProgram()
        p.append(("x",), "language.pass", (Const(1),))
        q = p.copy()
        q.instructions[0].recycle = True
        assert not p.instructions[0].recycle

    def test_str_roundtrippable_shape(self):
        p = MALProgram(name="q1")
        p.append(("x",), "language.pass", (Const(1),))
        p.returns = ("x",)
        text = str(p)
        assert "function q1():" in text
        assert "return x;" in text
