"""Unit tests for the MAL interpreter."""

import pytest

from repro.core import BAT
from repro.mal import Const, Interpreter, MALProgram, Var, parse_program


class FakeCatalog:
    """Minimal catalog: {table: {column: BAT}}."""

    def __init__(self, tables):
        self.tables = tables

    def bind(self, table, column):
        return self.tables[table][column]

    def count(self, table):
        columns = self.tables[table]
        return len(next(iter(columns.values())))


@pytest.fixture
def people():
    return FakeCatalog({
        "people": {
            "age": BAT.from_values([1907, 1927, 1927, 1968]),
            "name": BAT.from_values(["john", "roger", "bob", "will"]),
        }
    })


class TestExecution:
    def test_figure1_query(self, people):
        """The paper's Figure 1: select(age, 1927) + name projection."""
        program = parse_program('''
        age := sql.bind("people", "age");
        cand := algebra.select(age, 1927);
        name := sql.bind("people", "name");
        res := algebra.leftfetchjoin(cand, name);
        return res;
        ''')
        result = Interpreter(people).run_single(program)
        assert result.decoded() == ["roger", "bob"]

    def test_multi_result_instruction(self, people):
        program = parse_program('''
        a := sql.bind("people", "age");
        (s, perm) := algebra.sort(a);
        return s;
        ''')
        result = Interpreter(people).run_single(program)
        assert result.decoded() == [1907, 1927, 1927, 1968]

    def test_scalar_aggregate(self, people):
        program = parse_program('''
        a := sql.bind("people", "age");
        s := aggr.sum(a);
        return s;
        ''')
        assert Interpreter(people).run_single(program) == 7729

    def test_sql_count(self, people):
        program = parse_program('''
        n := sql.count("people");
        return n;
        ''')
        assert Interpreter(people).run_single(program) == 4

    def test_language_pass(self):
        program = parse_program('''
        a := language.pass(42);
        return a;
        ''')
        assert Interpreter().run_single(program) == 42

    def test_bindings_injection(self):
        program = MALProgram(returns=("y",))
        program.append(("y",), "language.pass", (Var("x"),))
        out = Interpreter().run(program, bindings={"x": 7})
        assert out == {"y": 7}

    def test_undefined_variable(self):
        program = MALProgram(returns=("y",))
        program.append(("y",), "language.pass", (Var("nope"),))
        with pytest.raises(NameError):
            Interpreter().run(program)

    def test_bind_without_catalog(self):
        program = parse_program('a := sql.bind("t", "c");\nreturn a;')
        with pytest.raises(RuntimeError):
            Interpreter().run(program)

    def test_unknown_op(self):
        program = MALProgram(returns=("y",))
        program.append(("y",), "warp.drive", (Const(1),))
        with pytest.raises(KeyError):
            Interpreter().run(program)

    def test_run_single_requires_one_return(self, people):
        program = parse_program('''
        a := sql.bind("people", "age");
        (s, perm) := algebra.sort(a);
        return s, perm;
        ''')
        with pytest.raises(ValueError):
            Interpreter(people).run_single(program)


class TestStats:
    def test_materialization_accounting(self, people):
        program = parse_program('''
        age := sql.bind("people", "age");
        cand := algebra.select(age, 1927);
        return cand;
        ''')
        interp = Interpreter(people)
        interp.run(program)
        # sql.bind returns the 4-tuple column; select materializes 2 oids.
        assert interp.stats.instructions_executed == 2
        assert interp.stats.tuples_materialized == 4 + 2
        assert interp.stats.op_counts["algebra.select"] == 1

    def test_stats_accumulate_across_runs(self, people):
        program = parse_program('''
        n := sql.count("people");
        return n;
        ''')
        interp = Interpreter(people)
        interp.run(program)
        interp.run(program)
        assert interp.stats.instructions_executed == 2


class RecordingRecycler:
    cache_all = True

    def __init__(self):
        self.cache = {}
        self.lookups = 0
        self.hits = 0

    def lookup(self, key):
        self.lookups += 1
        if key in self.cache:
            self.hits += 1
            return True, self.cache[key]
        return False, None

    def store(self, key, value, cost, nbytes):
        self.cache[key] = value


class TestRecyclerHook:
    def test_second_run_hits_cache(self, people):
        program = parse_program('''
        age := sql.bind("people", "age");
        cand := algebra.select(age, 1927);
        return cand;
        ''')
        recycler = RecordingRecycler()
        interp = Interpreter(people, recycler=recycler)
        first = interp.run_single(program)
        second = interp.run_single(program)
        assert first.decoded() == second.decoded()
        assert recycler.hits >= 1
        assert interp.stats.instructions_recycled >= 1

    def test_mutation_invalidates_key(self, people):
        program = parse_program('''
        age := sql.bind("people", "age");
        cand := algebra.select(age, 1927);
        return cand;
        ''')
        recycler = RecordingRecycler()
        interp = Interpreter(people, recycler=recycler)
        interp.run(program)
        people.tables["people"]["age"].append_values([1927])
        result = interp.run_single(program)
        # New version of the BAT -> recomputed, seeing the new tuple.
        assert result.decoded() == [1, 2, 4]
