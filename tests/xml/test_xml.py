"""Tests for XML shredding, staircase joins, and the XPath evaluator."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.xml import (
    shred,
    staircase_ancestor,
    staircase_descendant,
    staircase_following,
    staircase_preceding,
    xpath,
    XPathError,
)

DOC = """
<library>
  <shelf id="a">
    <book><title>Mammals</title><year>2009</year></book>
    <book><title>Dinosaurs</title><year>1999</year></book>
  </shelf>
  <shelf id="b">
    <book><title>Columns</title><year>2005</year></book>
  </shelf>
  <lamp/>
</library>
"""


@pytest.fixture
def doc():
    return shred(DOC)


def reference_maps(document_text):
    """pre rank, parent, descendant sets computed naively via DOM."""
    root = ET.fromstring(document_text)
    pre_of = {}
    nodes = []

    def number(el):
        pre_of[id(el)] = len(nodes)
        nodes.append(el)
        for child in el:
            number(child)

    number(root)
    parent = {pre_of[id(c)]: pre_of[id(e)]
              for e in nodes for c in e}
    descendants = {}
    for el in nodes:
        descendants[pre_of[id(el)]] = sorted(
            pre_of[id(d)] for d in el.iter() if d is not el)
    return nodes, pre_of, parent, descendants


class TestShred:
    def test_counts_and_tags(self, doc):
        assert doc.n_nodes == 13
        assert doc.node_tag(0) == "library"
        assert doc.node_tag(1) == "shelf"

    def test_pre_is_document_order(self, doc):
        nodes, pre_of, _, _ = reference_maps(DOC)
        for pre, el in enumerate(nodes):
            assert doc.node_tag(pre) == el.tag

    def test_parent_pointers(self, doc):
        _, _, parent, _ = reference_maps(DOC)
        for pre in range(1, doc.n_nodes):
            assert int(doc.parent.tail[pre]) == parent[pre]
        assert int(doc.parent.tail[0]) == -1

    def test_text(self, doc):
        titles = [doc.node_text(p) for p in range(doc.n_nodes)
                  if doc.node_tag(p) == "title"]
        assert titles == ["Mammals", "Dinosaurs", "Columns"]

    def test_subtree_size_identity(self, doc):
        _, _, _, descendants = reference_maps(DOC)
        for pre in range(doc.n_nodes):
            assert doc.subtree_size(pre) == len(descendants[pre])

    def test_children_of(self, doc):
        assert [doc.node_tag(c) for c in doc.children_of(0)] == \
            ["shelf", "shelf", "lamp"]


class TestStaircase:
    def test_descendant_single(self, doc):
        _, _, _, descendants = reference_maps(DOC)
        for pre in range(doc.n_nodes):
            got = staircase_descendant(doc, [pre]).tolist()
            assert got == descendants[pre]

    def test_descendant_prunes_nested_contexts(self, doc):
        # Context {shelf-a, book-inside-it}: the nested book is pruned.
        got = staircase_descendant(doc, [1, 2]).tolist()
        assert got == staircase_descendant(doc, [1]).tolist()

    def test_descendant_disjoint_contexts(self, doc):
        _, _, _, descendants = reference_maps(DOC)
        got = staircase_descendant(doc, [1, 8]).tolist()
        assert got == sorted(descendants[1] + descendants[8])

    def test_ancestor(self, doc):
        # title "Columns" is pre 10: ancestors book(9), shelf(8), lib(0).
        assert staircase_ancestor(doc, [10]).tolist() == [0, 8, 9]

    def test_ancestor_shares_paths(self, doc):
        merged = staircase_ancestor(doc, [3, 5]).tolist()
        assert merged == [0, 1, 2, 4][:len(merged)] or 0 in merged

    def test_following(self, doc):
        # following(shelf a): everything after pre 1..7 region.
        got = staircase_following(doc, [1]).tolist()
        assert got == list(range(8, 13))

    def test_preceding(self, doc):
        # preceding(shelf b at pre 8): all nodes whose subtree closed.
        got = staircase_preceding(doc, [8]).tolist()
        # shelf a's whole subtree (pre 1..7) precedes; library does not.
        assert got == list(range(1, 8))

    def test_empty_context(self, doc):
        assert len(staircase_following(doc, [])) == 0
        assert len(staircase_preceding(doc, [])) == 0


class TestXPath:
    def et_find(self, path):
        root = ET.fromstring(DOC)
        pre_of = {}

        def number(el):
            pre_of[id(el)] = len(pre_of)
            for child in el:
                number(child)

        number(root)
        return sorted(pre_of[id(el)] for el in root.findall(path))

    @pytest.mark.parametrize("ours,theirs", [
        ("//book", ".//book"),
        ("//title", ".//title"),
        ("/library/shelf", "./shelf"),
        ("/library/shelf/book/title", "./shelf/book/title"),
        ("//shelf/book", ".//shelf/book"),
        ("//book[title]", ".//book[title]"),
        ("//*", ".//*"),
    ])
    def test_against_elementtree(self, doc, ours, theirs):
        got = xpath(doc, ours).tolist()
        expected = self.et_find(theirs)
        if ours == "//*":
            expected = sorted(set(expected) | {0} - {0})
            expected = self.et_find(".//*") + [0]
            expected = sorted(expected)
        assert got == expected

    def test_root_step(self, doc):
        assert xpath(doc, "/library").tolist() == [0]
        assert xpath(doc, "/nonexistent").tolist() == []

    def test_text_predicate(self, doc):
        got = xpath(doc, "//book[title='Mammals']")
        assert got.tolist() == [2]

    def test_self_text_predicate(self, doc):
        got = xpath(doc, "//year[text()='1999']")
        assert len(got) == 1
        assert doc.node_text(int(got[0])) == "1999"

    def test_unknown_tag_empty(self, doc):
        assert xpath(doc, "//robot").tolist() == []

    def test_malformed_paths(self, doc):
        for bad in ("book", "//", "//book[", "//book]extra"):
            with pytest.raises(XPathError):
                xpath(doc, bad)


# -- property test: staircase joins vs the naive region predicate ----------

@st.composite
def random_document(draw):
    """A random small XML tree as text."""
    def build(depth):
        tag = draw(st.sampled_from(["a", "b", "c"]))
        n_children = draw(st.integers(0, 3)) if depth < 3 else 0
        inner = "".join(build(depth + 1) for _ in range(n_children))
        return "<{0}>{1}</{0}>".format(tag, inner)
    return build(0)


@settings(max_examples=40, deadline=None)
@given(random_document(), st.lists(st.integers(0, 30), min_size=1,
                                   max_size=4))
def test_property_staircase_equals_region_predicates(doc_text, raw_context):
    doc = shred(doc_text)
    context = np.unique(np.asarray(
        [c % doc.n_nodes for c in raw_context], dtype=np.int64))
    pre = np.arange(doc.n_nodes)
    post = doc.post.tail

    def union(predicate):
        out = set()
        for c in context.tolist():
            for u in range(doc.n_nodes):
                if predicate(u, c):
                    out.add(u)
        return sorted(out)

    assert staircase_descendant(doc, context).tolist() == union(
        lambda u, v: pre[v] < pre[u] and post[u] < post[v])
    assert staircase_ancestor(doc, context).tolist() == union(
        lambda u, v: pre[u] < pre[v] and post[u] > post[v])
    assert staircase_following(doc, context).tolist() == sorted(
        set(range(doc.n_nodes))
        & set(union(lambda u, v: pre[u] > pre[v] and post[u] > post[v])))
    assert staircase_preceding(doc, context).tolist() == union(
        lambda u, v: pre[u] < pre[v] and post[u] < post[v])
