"""Cancellation composed with crash recovery on a WAL-backed engine.

A governed kill fires strictly before the commit path, so a cancelled
statement must leave nothing for recovery to find: after any kill at
any checkpoint — autocommit or inside an open transaction — a WAL
replay converges to the pre-statement state.  And when a kill and a
crash fault are both armed, whichever fires first wins cleanly: a kill
inside the statement preempts the commit-path crash site entirely,
while a kill armed beyond the statement's checkpoint range lets the
crash fire with its established pre/post recovery semantics.
"""

import os

import pytest

from repro.faults import CrashError, FaultInjector
from repro.governance import CountingContext, GovernanceError, QueryContext
from repro.sql.database import Database
from repro.sql.parser import parse_sql
from repro.wal import WriteAheadLog
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor

SEED_BASE = int(os.environ.get("GOVERN_SEED", "0")) * 1000
SEEDS = [SEED_BASE + offset for offset in (1, 2, 3)]

KINDS = ("cancel", "deadline")


def build_engine(generator):
    db = Database(wal=WriteAheadLog())
    for statement in generator.setup_statements():
        db.execute(statement)
    return db


def script_with_checkpoints(generator, start_case):
    """First generated script from ``start_case`` on that contains an
    UPDATE or DELETE — an all-INSERT script passes through no
    checkpoints, so there would be nothing to kill."""
    for case_id in range(start_case, start_case + 10):
        script = generator.gen_dml_script(case_id=case_id)
        if any(not sql.startswith("INSERT") for sql in script):
            return script
    raise AssertionError("no governable script in 10 cases")


def state_of(db, generator):
    return {name: sorted(db.query(
        "SELECT {0} FROM {1}".format(", ".join(names), name)))
        for name, (names, _) in generator.reference_tables().items()}


@pytest.mark.parametrize("seed", SEEDS)
def test_autocommit_kill_then_recover_converges_to_pre_state(seed):
    """Sweep every checkpoint of every statement in a DML script: the
    killed statement leaves no trace, before *and* after WAL replay."""
    generator = QueryGenerator(seed)
    script = generator.gen_dml_script(case_id=0)
    for index in range(len(script)):
        # Dry-run this statement once to enumerate its checkpoints.
        counting_db = build_engine(generator)
        for sql in script[:index]:
            counting_db.execute(sql)
        counting = CountingContext()
        counting_db.execute(script[index], context=counting)
        for n, (site, hit) in enumerate(counting.kill_points()):
            db = build_engine(generator)
            for sql in script[:index]:
                db.execute(sql)
            pre = state_of(db, generator)
            context = QueryContext().kill_at(
                hit, kind=KINDS[n % len(KINDS)], site=site)
            with pytest.raises(GovernanceError):
                db.execute(script[index], context=context)
            label = "seed={0} stmt#{1} kill@{2}:{3}".format(
                seed, index, site, hit)
            assert state_of(db, generator) == pre, label
            db.recover()
            assert state_of(db, generator) == pre, label + " post-replay"


@pytest.mark.parametrize("seed", SEEDS)
def test_in_transaction_kill_aborts_and_recovery_finds_nothing(seed):
    """One governed context spans the whole transactional script; a
    kill at any cumulative checkpoint aborts with zero committed
    residue, and replaying the WAL agrees."""
    generator = QueryGenerator(seed)
    script = script_with_checkpoints(generator, start_case=1)

    counting_db = build_engine(generator)
    counting = CountingContext()
    txn = counting_db.begin()
    for sql in script:
        txn.execute(sql, context=counting)
    txn.commit()

    points = counting.kill_points()
    assert points, "script produced no checkpoints"
    for n, (site, hit) in enumerate(points):
        db = build_engine(generator)
        pre = state_of(db, generator)
        context = QueryContext().kill_at(
            hit, kind=KINDS[n % len(KINDS)], site=site)
        txn = db.begin()
        with pytest.raises(GovernanceError):
            for sql in script:
                txn.execute(sql, context=context)
        txn.abort()
        assert txn.closed
        label = "seed={0} kill@{1}:{2}".format(seed, site, hit)
        assert state_of(db, generator) == pre, label
        db.recover()
        assert state_of(db, generator) == pre, label + " post-replay"


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_in_flight_preempts_an_armed_commit_crash(seed):
    """Both a cancel and a commit-path crash are armed; the cancel
    fires first, the commit is never attempted, and recovery converges
    to the pre-script state — the crash site stays cold."""
    generator = QueryGenerator(seed)
    script = script_with_checkpoints(generator, start_case=2)
    db = build_engine(generator)
    pre = state_of(db, generator)

    inj = FaultInjector()
    db.faults = inj
    db.wal.faults = inj
    inj.crash_at("commit.publish")

    context = QueryContext().kill_at(1, kind="cancel")
    txn = db.begin()
    with pytest.raises(GovernanceError):
        for sql in script:
            txn.execute(sql, context=context)
    txn.abort()
    assert not inj.fired  # the crash plan never got its chance

    db.faults = FaultInjector()
    db.wal.faults = db.faults
    db.recover()
    assert state_of(db, generator) == pre


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("site,expect", [("wal.append", "pre"),
                                         ("commit.publish", "post")])
def test_unfired_kill_leaves_crash_semantics_intact(seed, site, expect):
    """A kill armed beyond the script's checkpoint range never fires,
    so the armed crash keeps its documented pre/post recovery
    behaviour — governance composes with, not replaces, fault
    injection."""
    generator = QueryGenerator(seed)
    script = generator.gen_dml_script(case_id=3)
    db = build_engine(generator)
    pre = state_of(db, generator)
    reference = ReferenceExecutor(generator.reference_tables())
    for sql in script:
        reference.apply_dml(parse_sql(sql))
    post = {name: sorted(rows)
            for name, (_, rows) in reference.tables.items()}

    inj = FaultInjector()
    db.faults = inj
    db.wal.faults = inj
    inj.crash_at(site)

    context = QueryContext().kill_at(10 ** 9, kind="cancel")
    txn = db.begin()
    for sql in script:
        txn.execute(sql, context=context)
    with pytest.raises(CrashError):
        txn.commit()
    assert txn.outcome == "crashed"
    db.recover()
    expected = pre if expect == "pre" else post
    assert state_of(db, generator) == expected, \
        "seed={0} crash at {1} -> {2}".format(seed, site, expect)
