"""Session-layer governance: per-statement contexts, SET pragmas, the
retryable error surface (no raw tracebacks leak), transaction abort on
a governed kill, and over-budget tenants shedding via admission
control."""

import pytest

from repro.governance import (
    DeadlineExceeded, GovernanceError, MemoryExceeded, TenantAccountant,
)
from repro.sessions import AdmissionController, SessionManager
from repro.sessions.admission import AdmissionRejected
from repro.sql.database import Database

ROWS = 3000


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (a INT, b INT)")
    for start in range(0, ROWS, 100):
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1})".format(i, i % 7)
            for i in range(start, start + 100)))
    return db


class TestSessionPragmas:
    def test_set_deadline_kills_then_clear_restores(self, db):
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("SET deadline = 1")
        with pytest.raises(DeadlineExceeded):
            session.execute("SELECT a FROM t WHERE b = 3")
        session.execute("SET deadline = 0")  # 0 clears the limit
        assert session.query("SELECT COUNT(*) FROM t") == [(ROWS,)]

    def test_set_memory_budget(self, db):
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("SET memory_budget = 16")
        with pytest.raises(MemoryExceeded) as info:
            session.execute("SELECT a FROM t WHERE b = 3")
        assert info.value.scope == "query"

    def test_pragmas_are_session_local(self, db):
        manager = SessionManager(db)
        limited = manager.session(tenant="t")
        free = manager.session(tenant="t")
        limited.execute("SET deadline = 1")
        assert free.query("SELECT COUNT(*) FROM t") == [(ROWS,)]

    def test_manager_defaults_seed_new_sessions(self, db):
        manager = SessionManager(db, default_deadline=1)
        session = manager.session(tenant="t")
        with pytest.raises(DeadlineExceeded):
            session.execute("SELECT a FROM t WHERE b = 3")

    def test_pragma_validation(self, db):
        session = SessionManager(db).session()
        with pytest.raises(ValueError):
            session.execute("SET deadline = -1")


class TestErrorSurface:
    def test_governed_errors_are_retryable_with_stable_reasons(self, db):
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("SET deadline = 1")
        with pytest.raises(GovernanceError) as info:
            session.execute("SELECT a FROM t WHERE b = 3")
        status = info.value.status()
        assert status["retryable"] is True
        assert status["reason"] == "deadline"
        assert status["site"] in ("interp.instr", "compile.fragment",
                                  "morsel")
        assert session.last_status == status
        assert session.governed == 1 and manager.governed == 1

    def test_no_raw_traceback_leaks_through_session_execute(self, db):
        """Regression pin: the message a client sees is one clean line
        — no frames, no file paths, no chained engine internals."""
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("SET deadline = 1")
        with pytest.raises(GovernanceError) as info:
            session.execute("SELECT a FROM t WHERE b = 3")
        message = str(info.value)
        assert "\n" not in message
        for leak in ("Traceback", 'File "', ".py", "repro.", "0x"):
            assert leak not in message
        assert info.value.__cause__ is None  # not re-wrapped

    def test_governed_kill_is_stamped_on_the_statement_span(self, db):
        from repro.observability.tracer import Tracer
        tracer = Tracer()
        manager = SessionManager(db, tracer=tracer)
        session = manager.session(tenant="t")
        session.execute("SET deadline = 1")
        with pytest.raises(GovernanceError):
            session.execute("SELECT a FROM t WHERE b = 3")
        span = tracer.roots[-1].find("session.statement")
        assert span.attrs["governed"] == "deadline"

    def test_statement_after_kill_succeeds(self, db):
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("SET deadline = 1")
        with pytest.raises(GovernanceError):
            session.execute("SELECT a FROM t WHERE b = 3")
        session.execute("SET deadline = 0")
        assert session.query("SELECT COUNT(*) FROM t") == [(ROWS,)]


class TestTransactionAbort:
    def test_kill_mid_transaction_aborts_it_cleanly(self, db):
        manager = SessionManager(db)
        session = manager.session(tenant="t")
        session.execute("BEGIN")
        session.execute("DELETE FROM t WHERE b = 1")
        session.execute("SET deadline = 1")
        with pytest.raises(GovernanceError):
            session.execute("SELECT a FROM t WHERE b = 3")
        # The kill aborted the transaction: buffered deletes vanished.
        assert not session.in_transaction
        assert session.aborts == 1
        assert db.query("SELECT COUNT(*) FROM t") == [(ROWS,)]

    def test_admission_slot_released_on_governed_abort(self, db):
        admission = AdmissionController(max_inflight=1)
        manager = SessionManager(db, admission=admission,
                                 default_deadline=1)
        session = manager.session(tenant="t")
        session.execute("BEGIN")
        with pytest.raises(GovernanceError):
            session.execute("SELECT a FROM t WHERE b = 3")
        assert admission.inflight == 0  # slot returned, not leaked


class TestTenantShedding:
    def test_overbudget_strikes_arm_a_shed_window(self, db):
        accountant = TenantAccountant(budgets={"hog": 16})
        admission = AdmissionController(overbudget_strikes=2,
                                        penalty_window=3)
        manager = SessionManager(db, admission=admission,
                                 accountant=accountant)
        hog = manager.session(tenant="hog")
        for _ in range(2):
            with pytest.raises(MemoryExceeded) as info:
                hog.execute("SELECT a FROM t WHERE b = 3")
            assert info.value.scope == "tenant"
        assert admission.overbudget_reports == 2
        assert admission.penalized == 1
        # The next penalty_window arrivals of the hog are shed...
        for _ in range(3):
            with pytest.raises(AdmissionRejected):
                admission.acquire("hog")
        # ...then admission recovers deterministically.
        admission.acquire("hog")
        admission.release("hog")

    def test_other_tenants_unaffected_by_a_hogs_penalty(self, db):
        accountant = TenantAccountant(budgets={"hog": 16})
        admission = AdmissionController(overbudget_strikes=1,
                                        penalty_window=5)
        manager = SessionManager(db, admission=admission,
                                 accountant=accountant)
        hog = manager.session(tenant="hog")
        with pytest.raises(MemoryExceeded):
            hog.execute("SELECT a FROM t WHERE b = 3")
        admission.acquire("polite")  # no shed for the budget-abiding
        admission.release("polite")

    def test_accountant_balances_return_to_zero(self, db):
        accountant = TenantAccountant()
        manager = SessionManager(db, accountant=accountant)
        session = manager.session(tenant="t")
        session.query("SELECT a FROM t WHERE b = 3")
        session.query("SELECT COUNT(*) FROM t")
        assert accountant.in_use["t"] == 0
        assert accountant.peak["t"] > 0
