"""Unit tests for the QueryContext primitives: deadlines, cancel
tokens, deterministic kill plans, memory charging and the inert
NO_GOVERNANCE singleton."""

import pytest

from repro.governance import (
    CHECK_FRAGMENT, CHECK_INTERP, CHECKPOINT_SITES, NO_GOVERNANCE,
    CountingContext, DeadlineExceeded, MemoryExceeded, QueryCancelled,
    QueryContext, TenantAccountant,
)


class TestDeadline:
    def test_kills_when_clock_passes_deadline(self):
        ctx = QueryContext(deadline=2)
        ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_INTERP)
        with pytest.raises(DeadlineExceeded) as info:
            ctx.checkpoint(CHECK_INTERP)
        assert info.value.reason == "deadline"
        assert info.value.site == CHECK_INTERP
        assert ctx.killed_by == "deadline"

    def test_tick_charges_link_time_toward_deadline(self):
        ctx = QueryContext(deadline=10)
        ctx.tick(10)  # link delay alone does not kill...
        with pytest.raises(DeadlineExceeded):
            ctx.checkpoint(CHECK_INTERP)  # ...the next checkpoint does

    def test_no_deadline_never_kills(self):
        ctx = QueryContext()
        for _ in range(1000):
            ctx.checkpoint(CHECK_INTERP)
        assert ctx.clock == 1000

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryContext(deadline=0)


class TestCancel:
    def test_cancel_fires_at_next_checkpoint(self):
        ctx = QueryContext()
        ctx.checkpoint(CHECK_INTERP)
        ctx.cancel()
        with pytest.raises(QueryCancelled) as info:
            ctx.checkpoint(CHECK_FRAGMENT)
        assert info.value.reason == "cancelled"
        assert info.value.retryable is True

    def test_kill_at_global_hit(self):
        ctx = QueryContext().kill_at(3, kind="cancel")
        ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_FRAGMENT)
        with pytest.raises(QueryCancelled):
            ctx.checkpoint(CHECK_INTERP)

    def test_kill_at_site_counts_only_that_site(self):
        ctx = QueryContext().kill_at(2, kind="deadline",
                                     site=CHECK_FRAGMENT)
        for _ in range(5):
            ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_FRAGMENT)
        with pytest.raises(DeadlineExceeded):
            ctx.checkpoint(CHECK_FRAGMENT)

    def test_kill_plan_validation(self):
        with pytest.raises(ValueError):
            QueryContext().kill_at(0)
        with pytest.raises(ValueError):
            QueryContext().kill_at(1, kind="meteor")


class TestMemory:
    def test_query_budget_kill(self):
        ctx = QueryContext(memory_budget=100)
        ctx.charge(60)
        with pytest.raises(MemoryExceeded) as info:
            ctx.charge(41)
        assert info.value.scope == "query"
        assert ctx.mem_charged == 101

    def test_tenant_budget_checked_before_query_budget(self):
        accountant = TenantAccountant(default_budget=50)
        ctx = QueryContext(memory_budget=1000, tenant="t",
                           accountant=accountant)
        with pytest.raises(MemoryExceeded) as info:
            ctx.charge(51)
        assert info.value.scope == "tenant"
        assert info.value.tenant == "t"

    def test_release_returns_tenant_bytes(self):
        accountant = TenantAccountant()
        ctx = QueryContext(tenant="t", accountant=accountant)
        ctx.charge(30)
        ctx.charge(12)
        assert accountant.in_use["t"] == 42
        ctx.release()
        assert accountant.in_use["t"] == 0
        ctx.release()  # idempotent
        assert accountant.in_use["t"] == 0

    def test_zero_charge_is_free(self):
        ctx = QueryContext(memory_budget=1)
        ctx.charge(0)
        assert ctx.mem_charged == 0


class TestNullContext:
    def test_inert_hooks(self):
        assert NO_GOVERNANCE.active is False
        NO_GOVERNANCE.checkpoint(CHECK_INTERP)
        NO_GOVERNANCE.charge(1 << 40)
        NO_GOVERNANCE.tick(99)
        NO_GOVERNANCE.release()
        assert NO_GOVERNANCE.clock == 0
        assert NO_GOVERNANCE.total_checkpoints == 0

    def test_cannot_arm_the_shared_singleton(self):
        with pytest.raises(RuntimeError):
            NO_GOVERNANCE.cancel()
        with pytest.raises(RuntimeError):
            NO_GOVERNANCE.kill_at(1)


class TestCountingContext:
    def test_counts_without_killing(self):
        ctx = CountingContext()
        ctx.cancel()  # flag set but the dry run never raises
        for _ in range(4):
            ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_FRAGMENT)
        assert ctx.checkpoints[CHECK_INTERP] == 4
        assert ctx.total_checkpoints == 5

    def test_kill_points_enumeration(self):
        ctx = CountingContext()
        ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_INTERP)
        ctx.checkpoint(CHECK_FRAGMENT)
        assert ctx.kill_points() == [
            (CHECK_FRAGMENT, 1), (CHECK_INTERP, 1), (CHECK_INTERP, 2)]
        assert ctx.kill_points(sites=(CHECK_INTERP,)) == [
            (CHECK_INTERP, 1), (CHECK_INTERP, 2)]


def test_canonical_sites_are_stable():
    """The six checkpoint names are API: error statuses, oracle
    schedules and docs all key on them."""
    assert CHECKPOINT_SITES == (
        "interp.instr", "compile.fragment", "morsel", "scatter.leg",
        "twopc.prepare", "repl.route")
