"""Unit tests for the cross-statement per-tenant memory accountant."""

import pytest

from repro.governance import MemoryExceeded, TenantAccountant


def test_unlimited_by_default():
    acct = TenantAccountant()
    acct.charge("t", 1 << 30)
    assert acct.in_use["t"] == 1 << 30
    assert acct.budget_of("t") is None


def test_default_budget_and_overrides():
    acct = TenantAccountant(default_budget=100, budgets={"vip": 1000})
    assert acct.budget_of("anyone") == 100
    assert acct.budget_of("vip") == 1000


def test_over_budget_charge_is_rejected_not_recorded():
    acct = TenantAccountant(default_budget=100)
    acct.charge("t", 80)
    with pytest.raises(MemoryExceeded) as info:
        acct.charge("t", 21)
    assert info.value.scope == "tenant"
    assert info.value.tenant == "t"
    assert acct.in_use["t"] == 80  # the rejected charge left no trace
    assert acct.kills["t"] == 1


def test_release_frees_budget_for_reuse():
    acct = TenantAccountant(default_budget=100)
    acct.charge("t", 100)
    acct.release("t", 100)
    acct.charge("t", 100)  # full budget available again
    assert acct.peak["t"] == 100


def test_release_more_than_held_is_a_bug():
    acct = TenantAccountant()
    acct.charge("t", 10)
    with pytest.raises(RuntimeError):
        acct.release("t", 11)


def test_tenants_are_isolated():
    acct = TenantAccountant(default_budget=100)
    acct.charge("a", 100)
    acct.charge("b", 100)  # a's usage does not count against b
    snap = acct.snapshot()
    assert snap["a"]["in_use"] == snap["b"]["in_use"] == 100


def test_snapshot_includes_killed_tenants():
    acct = TenantAccountant(default_budget=10)
    with pytest.raises(MemoryExceeded):
        acct.charge("t", 11)
    assert acct.snapshot()["t"]["kills"] == 1


def test_budget_validation():
    with pytest.raises(ValueError):
        TenantAccountant(default_budget=0)
