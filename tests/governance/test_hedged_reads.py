"""Slow-node defense at the sharding coordinator: per-leg timeouts,
hedged re-dispatch to a replica under a gray (latency-ramped) shard,
the per-link circuit breaker, and mid-scatter cancel broadcast."""

import pytest

from repro.faults import FaultInjector
from repro.governance import OPEN, GovernanceError, QueryContext
from repro.sharding.coordinator import ShardedDatabase

QUERY = "SELECT v, COUNT(*) FROM t GROUP BY v"


def load(db):
    db.execute("CREATE TABLE t (k INT, v INT) PARTITION BY (k)")
    for start in range(0, 400, 40):
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1})".format(i, i % 5)
            for i in range(start, start + 40)))
    return db


def gray_faults(link="coord->s1", seed=7):
    faults = FaultInjector()
    faults.ramp_at("shard.ship", start_hit=1, base_delay=40, step=10,
                   cap=200, seed=seed, jitter=3, match={"link": link})
    return faults


class TestHedging:
    def test_hedged_results_equal_healthy_results(self):
        hedged = load(ShardedDatabase(
            n_shards=3, replicas=1, faults=gray_faults(), leg_timeout=8,
            breaker_threshold=2, breaker_cooldown=16))
        healthy = load(ShardedDatabase(n_shards=3))
        for _ in range(6):
            assert sorted(hedged.query(QUERY)) == \
                sorted(healthy.query(QUERY))
        assert hedged.stats.hedged_legs > 0
        assert hedged.stats.leg_timeouts > 0

    def test_hedging_bounds_the_clock_under_a_gray_shard(self):
        hedged = load(ShardedDatabase(
            n_shards=3, replicas=1, faults=gray_faults(), leg_timeout=8,
            breaker_threshold=2, breaker_cooldown=16))
        naive = load(ShardedDatabase(
            n_shards=3, replicas=1, faults=gray_faults()))
        for _ in range(6):
            hedged.query(QUERY)
            naive.query(QUERY)
        # The naive coordinator waits out every ramped leg; the hedged
        # one pays at most the timeout before re-dispatching.
        assert hedged.clock < naive.clock / 1.5

    def test_hedge_without_replicas_runs_the_shard_directly(self):
        """With no replica group to fail over to, the hedge re-runs the
        leg on the shard's database without paying the gray link."""
        hedged = load(ShardedDatabase(
            n_shards=3, faults=gray_faults(), leg_timeout=8))
        healthy = load(ShardedDatabase(n_shards=3))
        assert sorted(hedged.query(QUERY)) == sorted(healthy.query(QUERY))
        assert hedged.stats.hedged_legs > 0

    def test_no_faults_means_no_hedges(self):
        db = load(ShardedDatabase(n_shards=3, replicas=1, leg_timeout=8))
        for _ in range(4):
            db.query(QUERY)
        assert db.stats.hedged_legs == 0
        assert db.stats.leg_timeouts == 0


class TestBreaker:
    def test_breaker_opens_on_the_gray_link_and_skips_it(self):
        db = load(ShardedDatabase(
            n_shards=3, replicas=1, faults=gray_faults(), leg_timeout=8,
            breaker_threshold=2, breaker_cooldown=16))
        for _ in range(6):
            db.query(QUERY)
        breaker = db.breakers[1]
        assert breaker.opens >= 1
        assert db.stats.breaker_skips > 0  # open breaker -> direct hedge
        assert 0 not in db.breakers or db.breakers[0].opens == 0

    def test_breaker_schedule_replays_per_seed(self):
        def transitions(breaker_seed):
            db = load(ShardedDatabase(
                n_shards=3, replicas=1, faults=gray_faults(),
                leg_timeout=8, breaker_threshold=2, breaker_cooldown=16,
                breaker_seed=breaker_seed))
            for _ in range(6):
                db.query(QUERY)
            return db.breakers[1].transitions

        assert transitions(5) == transitions(5)

    def test_breaker_half_open_probe_cycle(self):
        db = load(ShardedDatabase(
            n_shards=3, replicas=1, faults=gray_faults(), leg_timeout=8,
            breaker_threshold=2, breaker_cooldown=16))
        for _ in range(8):
            db.query(QUERY)
        states = [state for _, state in db.breakers[1].transitions]
        assert "half-open" in states  # the probe schedule fired
        assert db.breakers[1].state == OPEN  # still gray: probe failed


class TestScatterCancel:
    def test_mid_scatter_kill_broadcasts_cancel_to_remaining_legs(self):
        db = load(ShardedDatabase(n_shards=4))
        context = QueryContext().kill_at(2, kind="cancel",
                                         site="scatter.leg")
        with pytest.raises(GovernanceError) as info:
            db.execute(QUERY, context=context)
        assert info.value.status()["site"] == "scatter.leg"
        # Legs 2..4 had not run; each got a best-effort cancel message.
        assert db.stats.cancels_sent == 3
        assert db.stats.governance_kills == 1

    def test_coordinator_pragmas_create_owned_contexts(self):
        db = load(ShardedDatabase(n_shards=3))
        db.execute("SET deadline = 1")
        with pytest.raises(GovernanceError):
            db.query(QUERY)
        assert db.stats.governance_kills == 1
        db.execute("SET deadline = 0")
        assert db.query("SELECT COUNT(*) FROM t") == [(400,)]

    def test_state_untouched_after_scatter_kill(self):
        db = load(ShardedDatabase(n_shards=4))
        context = QueryContext().kill_at(1, kind="deadline",
                                         site="scatter.leg")
        with pytest.raises(GovernanceError):
            db.execute(QUERY, context=context)
        assert db.query("SELECT COUNT(*) FROM t") == [(400,)]
        healthy = load(ShardedDatabase(n_shards=4))
        assert sorted(db.query(QUERY)) == sorted(healthy.query(QUERY))


class TestTransactionLegsNeverHedge:
    def test_snapshot_reads_wait_out_the_gray_link(self):
        """A transaction's legs read per-shard snapshot views; a hedge
        would silently escape the snapshot, so they must never hedge —
        even when a leg timeout is configured."""
        db = load(ShardedDatabase(
            n_shards=3, faults=gray_faults(), leg_timeout=8))
        txn = db.begin()
        rows = txn.execute(QUERY).rows()
        txn.commit()
        healthy = load(ShardedDatabase(n_shards=3))
        assert sorted(rows) == sorted(healthy.query(QUERY))
        assert db.stats.hedged_legs == 0
        assert db.stats.leg_timeouts == 0
