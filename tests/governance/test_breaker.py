"""Unit tests for the per-link circuit breaker state machine."""

import pytest

from repro.governance import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def trip(breaker, now=0):
    for _ in range(breaker.threshold):
        breaker.record_failure(now)


class TestTrip:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(threshold=3, cooldown=10, probe_jitter=0)
        b.record_failure(1)
        b.record_failure(2)
        assert b.state == CLOSED
        b.record_failure(3)
        assert b.state == OPEN
        assert b.opens == 1
        assert b.retry_at == 3 + 10

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(threshold=2, cooldown=10, probe_jitter=0)
        b.record_failure(1)
        b.record_success(2)
        b.record_failure(3)
        assert b.state == CLOSED

    def test_open_blocks_until_cooldown(self):
        b = CircuitBreaker(threshold=1, cooldown=10, probe_jitter=0)
        b.record_failure(5)
        assert not b.allow(6)
        assert not b.allow(14)
        assert b.allow(15)  # cooldown elapsed: the probe is admitted
        assert b.state == HALF_OPEN


class TestProbe:
    def test_probe_success_closes(self):
        b = CircuitBreaker(threshold=1, cooldown=5, probe_jitter=0)
        b.record_failure(0)
        assert b.allow(5)
        b.record_success(6)
        assert b.state == CLOSED
        assert b.allow(7)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker(threshold=1, cooldown=5, probe_jitter=0)
        b.record_failure(0)
        assert b.allow(5)
        b.record_failure(6)
        assert b.state == OPEN
        assert b.retry_at == 6 + 5
        assert not b.allow(7)

    def test_half_open_admits_exactly_one_probe(self):
        b = CircuitBreaker(threshold=1, cooldown=5, probe_jitter=0)
        b.record_failure(0)
        assert b.allow(5)       # the probe
        assert not b.allow(5)   # a second request in the same window
        assert not b.allow(6)
        assert b.probes == 1


class TestSeededJitter:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            b = CircuitBreaker(threshold=1, cooldown=16, probe_jitter=8,
                               seed=seed)
            out = []
            for now in range(0, 200, 10):
                b.record_failure(now)
                out.append(b.retry_at)
            return out

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_jitter_bounded(self):
        b = CircuitBreaker(threshold=1, cooldown=16, probe_jitter=8,
                           seed=3)
        b.record_failure(100)
        assert 116 <= b.retry_at < 124


def test_transition_audit_trail():
    b = CircuitBreaker(threshold=1, cooldown=5, probe_jitter=0)
    b.record_failure(1)
    b.allow(6)
    b.record_success(7)
    assert [state for _, state in b.transitions] == \
        [OPEN, HALF_OPEN, CLOSED]
    snap = b.snapshot()
    assert snap["state"] == CLOSED
    assert snap["opens"] == 1 and snap["probes"] == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=0)
