"""Tests for the SRAM dense-array front-end, cross-checked with numpy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import DenseArray, comprehend


@pytest.fixture
def cube():
    return DenseArray.from_numpy(
        np.arange(2 * 3 * 4, dtype=np.int64).reshape(2, 3, 4))


class TestConstruction:
    def test_roundtrip(self, cube):
        assert np.array_equal(cube.to_numpy(),
                              np.arange(24).reshape(2, 3, 4))
        assert cube.ndim == 3
        assert cube.size == 24

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DenseArray((-1, 3), [])
        with pytest.raises(ValueError):
            DenseArray((2, 2), [1, 2, 3])

    def test_zero_dim_allowed(self):
        a = DenseArray((0, 3), [])
        assert a.size == 0

    def test_float_atom(self):
        a = DenseArray((2,), [1.5, 2.5])
        assert a.values.atom.name == "dbl"


class TestAccess:
    def test_point_access(self, cube):
        ref = cube.to_numpy()
        assert cube[1, 2, 3] == ref[1, 2, 3]
        assert cube[0, 0, 0] == ref[0, 0, 0]

    def test_point_access_bounds(self, cube):
        with pytest.raises(IndexError):
            cube[2, 0, 0]
        with pytest.raises(IndexError):
            cube[0, 0]


class TestSlicing:
    def test_slice_matches_numpy(self, cube):
        ref = cube.to_numpy()
        got = cube.slice(ax0=(0, 1), ax1=(1, 3))
        assert np.array_equal(got.to_numpy(), ref[0:1, 1:3, :])

    def test_slice_candidates_are_pure_arithmetic(self, cube):
        candidates = cube.slice_candidates(ax2=(1, 2))
        ref = np.flatnonzero(
            np.indices((2, 3, 4))[2].reshape(-1) == 1)
        assert np.array_equal(candidates.tail, ref)

    def test_slice_bounds_checked(self, cube):
        with pytest.raises(IndexError):
            cube.slice(ax0=(0, 5))
        with pytest.raises(KeyError):
            cube.slice(ax9=(0, 1))

    def test_empty_slice(self, cube):
        got = cube.slice(ax1=(1, 1))
        assert got.size == 0


class TestBulkOps:
    def test_map_scalar(self, cube):
        got = cube.map("*", 3)
        assert np.array_equal(got.to_numpy(), cube.to_numpy() * 3)

    def test_map_array(self, cube):
        got = cube.map("+", cube)
        assert np.array_equal(got.to_numpy(), cube.to_numpy() * 2)

    def test_map_shape_mismatch(self, cube):
        with pytest.raises(ValueError):
            cube.map("+", DenseArray((2,), [1, 2]))

    def test_total_aggregates(self, cube):
        ref = cube.to_numpy()
        assert cube.aggregate("sum") == ref.sum()
        assert cube.aggregate("min") == ref.min()
        assert cube.aggregate("max") == ref.max()
        assert cube.aggregate("avg") == ref.mean()

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_axis_sum_matches_numpy(self, cube, axis):
        ref = cube.to_numpy().sum(axis=axis)
        got = cube.aggregate("sum", axis=axis)
        assert got.shape == ref.shape
        assert np.array_equal(got.to_numpy(), ref)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_axis_max_matches_numpy(self, cube, axis):
        ref = cube.to_numpy().max(axis=axis)
        got = cube.aggregate("max", axis=axis)
        assert np.array_equal(got.to_numpy(), ref)

    def test_axis_bounds(self, cube):
        with pytest.raises(IndexError):
            cube.aggregate("sum", axis=3)


class TestComprehension:
    def test_filter_and_map(self):
        a = DenseArray((6,), [1, 5, 2, 8, 3, 9])
        got = comprehend(a, where=(">", 2), select=("*", 10))
        assert got.to_numpy().tolist() == [50, 80, 30, 90]

    def test_no_matches(self):
        a = DenseArray((3,), [1, 2, 3])
        assert comprehend(a, where=(">", 10)) is None

    def test_select_only(self):
        a = DenseArray((3,), [1, 2, 3])
        got = comprehend(a, select=("+", 1))
        assert got.to_numpy().tolist() == [2, 3, 4]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 5), min_size=1, max_size=3),
       st.integers(0, 2), st.data())
def test_property_slices_and_sums_match_numpy(dims, axis, data):
    shape = tuple(dims)
    ref = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
    array = DenseArray.from_numpy(ref)
    # Random slice bounds per axis.
    bounds = {}
    slices = []
    for i, d in enumerate(shape):
        lo = data.draw(st.integers(0, d))
        hi = data.draw(st.integers(lo, d))
        bounds["ax{0}".format(i)] = (lo, hi)
        slices.append(slice(lo, hi))
    got = array.slice(**bounds)
    assert np.array_equal(got.to_numpy(), ref[tuple(slices)])
    # Axis aggregate on the full array.
    if axis < len(shape):
        s = array.aggregate("sum", axis=axis)
        assert np.array_equal(np.asarray(s.to_numpy()),
                              ref.sum(axis=axis).reshape(s.shape))
