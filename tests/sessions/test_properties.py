"""Property-based session invariants (Hypothesis).

Two contracts from the ISSUE: (1) **snapshot visibility** — a pinned
transaction sees exactly the database state as of its ``BEGIN``, no
matter what commits afterwards, and the commits become visible the
moment the transaction ends; (2) **admission fairness** — under the
stride scheduler no backlogged tenant starves, even when arrivals are
zipf-skewed toward a hot tenant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sessions import AdmissionController, SessionManager
from repro.sql import Database

KEYS = list(range(6))

# One autocommit write: (key, delta) applied as UPDATE ... v = v + delta.
WRITE = st.tuples(st.sampled_from(KEYS), st.integers(1, 50))

TENANTS = ["t0", "t1", "t2", "t3"]


def _database():
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1})".format(k, 10 * k) for k in KEYS))
    return db


class TestSnapshotVisibility:
    @settings(max_examples=40, deadline=None)
    @given(before=st.lists(WRITE, max_size=8),
           after=st.lists(WRITE, min_size=1, max_size=8))
    def test_pinned_snapshot_is_exactly_the_begin_state(self, before,
                                                        after):
        db = _database()
        manager = SessionManager(db)
        for k, delta in before:
            db.execute(
                "UPDATE t SET v = v + {0} WHERE k = {1}".format(delta, k))
        expected = sorted(db.query("SELECT k, v FROM t"))
        session = manager.session()
        session.execute("BEGIN")
        for k, delta in after:
            db.execute(
                "UPDATE t SET v = v + {0} WHERE k = {1}".format(delta, k))
        # Inside the transaction: the begin-time state, repeatably.
        assert sorted(session.query("SELECT k, v FROM t")) == expected
        assert sorted(session.query("SELECT k, v FROM t")) == expected
        session.execute("ROLLBACK")
        # Outside: every post-begin commit is visible at once.
        final = sorted(session.query("SELECT k, v FROM t"))
        assert final == sorted(db.query("SELECT k, v FROM t"))
        assert final != expected  # `after` is non-empty and additive

    @settings(max_examples=25, deadline=None)
    @given(writes=st.lists(WRITE, min_size=1, max_size=6))
    def test_own_commits_are_immediately_visible(self, writes):
        db = _database()
        session = SessionManager(db).session()
        session.execute("BEGIN")
        for k, delta in writes:
            session.execute(
                "UPDATE t SET v = v + {0} WHERE k = {1}".format(delta, k))
        inside = sorted(session.query("SELECT k, v FROM t"))
        session.execute("COMMIT")
        assert sorted(db.query("SELECT k, v FROM t")) == inside


class TestAdmissionFairness:
    def _drain(self, controller, n):
        order = []
        for _ in range(n):
            admitted = controller.admit_next()
            if admitted is None:
                break
            order.append(admitted[0])
            controller.release(admitted[0])
        return order

    @settings(max_examples=40, deadline=None)
    @given(skew=st.lists(st.sampled_from(TENANTS), min_size=4,
                         max_size=60))
    def test_every_backlogged_tenant_is_admitted_promptly(self, skew):
        """However zipf-skewed the arrival mix, every tenant with work
        queued gets one of the first ``n_tenants`` admissions."""
        controller = AdmissionController(max_inflight=1,
                                         max_queue_depth=100)
        for i, tenant in enumerate(skew):
            controller.enqueue(tenant, i)
        present = sorted(set(skew))
        first = self._drain(controller, len(present))
        assert sorted(first) == present

    @settings(max_examples=30, deadline=None)
    @given(depth=st.integers(5, 30), rounds=st.integers(4, 40))
    def test_equal_weight_backlogged_tenants_stay_within_one(
            self, depth, rounds):
        """Stride scheduling's lag bound: two continuously-backlogged
        equal-weight tenants never drift more than one admission
        apart."""
        controller = AdmissionController(max_inflight=1,
                                         max_queue_depth=100)
        for tenant in TENANTS:
            for i in range(depth + rounds):
                controller.enqueue(tenant, i)
        order = self._drain(controller, rounds)
        counts = [order.count(tenant) for tenant in TENANTS]
        assert max(counts) - min(counts) <= 1

    @settings(max_examples=30, deadline=None)
    @given(arrivals=st.lists(st.sampled_from(TENANTS), min_size=1,
                             max_size=80))
    def test_admissions_conserve_and_keep_fifo(self, arrivals):
        """Draining admits every queued item exactly once, in FIFO
        order within each tenant."""
        controller = AdmissionController(max_inflight=1,
                                         max_queue_depth=100)
        for i, tenant in enumerate(arrivals):
            controller.enqueue(tenant, i)
        admitted = self._drain(controller, len(arrivals) + 5)
        assert len(admitted) == len(arrivals)
        seen = {}
        for tenant in TENANTS:
            seen[tenant] = []
        # Replay the drain to check item order per tenant.
        controller = AdmissionController(max_inflight=1,
                                         max_queue_depth=100)
        for i, tenant in enumerate(arrivals):
            controller.enqueue(tenant, i)
        while True:
            slot = controller.admit_next()
            if slot is None:
                break
            seen[slot[0]].append(slot[1])
            controller.release(slot[0])
        for tenant, items in seen.items():
            assert items == sorted(items)
