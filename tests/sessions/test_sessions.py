"""Session-layer unit tests: SQL transaction control, MVCC snapshot
pinning, conflicts, admission gating and per-tenant observability —
over all three backends."""

import pytest

from repro.observability.tracer import Tracer
from repro.replication import ReplicationGroup
from repro.sessions import (
    AdmissionController, AdmissionRejected, HistoryRecorder,
    SessionError, SessionManager,
)
from repro.sharding import ShardedDatabase
from repro.sql import ConflictError, Database


def _single():
    db = Database()
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return db


class TestSqlSurface:
    def test_begin_commit_keywords(self):
        mgr = SessionManager(_single())
        s = mgr.session()
        for begin, end in [("BEGIN", "COMMIT"),
                           ("BEGIN TRANSACTION", "COMMIT WORK"),
                           ("begin work", "commit transaction")]:
            s.execute(begin)
            assert s.in_transaction
            s.execute(end)
            assert not s.in_transaction

    def test_rollback_and_abort(self):
        mgr = SessionManager(_single())
        s = mgr.session()
        s.execute("BEGIN")
        s.execute("DELETE FROM t")
        s.execute("ROLLBACK")
        assert s.query("SELECT count(*) FROM t") == [(3,)]
        s.execute("BEGIN")
        s.execute("DELETE FROM t")
        s.execute("ABORT")
        assert s.query("SELECT count(*) FROM t") == [(3,)]

    def test_autocommit_outside_transaction(self):
        mgr = SessionManager(_single())
        s = mgr.session()
        assert s.execute("UPDATE t SET v = 0 WHERE k = 1") == 1
        assert s.query("SELECT v FROM t WHERE k = 1") == [(0,)]

    def test_control_statement_misuse(self):
        mgr = SessionManager(_single())
        s = mgr.session()
        with pytest.raises(SessionError):
            s.execute("COMMIT")
        with pytest.raises(SessionError):
            s.execute("ROLLBACK")
        s.execute("BEGIN")
        with pytest.raises(SessionError):
            s.execute("BEGIN")
        s.execute("ROLLBACK")

    def test_database_rejects_transaction_control(self):
        db = _single()
        with pytest.raises(TypeError):
            db.execute("BEGIN")
        with pytest.raises(TypeError):
            db.execute("COMMIT")

    def test_context_manager(self):
        mgr = SessionManager(_single())
        with mgr.session() as s:
            s.execute("BEGIN")
            s.execute("UPDATE t SET v = 5 WHERE k = 2")
        assert mgr.session().query(
            "SELECT v FROM t WHERE k = 2") == [(5,)]


class TestSnapshots:
    def test_pinned_snapshot_is_cross_table_consistent(self):
        """BEGIN pins *every* table: a commit landing between BEGIN and
        the first touch of a table must stay invisible."""
        db = _single()
        db.execute("CREATE TABLE u (k BIGINT)")
        db.execute("INSERT INTO u VALUES (1)")
        mgr = SessionManager(db)
        s = mgr.session()
        s.execute("BEGIN")
        db.execute("INSERT INTO u VALUES (2)")
        db.execute("INSERT INTO t VALUES (4, 40)")
        assert s.query("SELECT count(*) FROM u") == [(1,)]
        assert s.query("SELECT count(*) FROM t") == [(3,)]
        s.execute("COMMIT")
        assert s.query("SELECT count(*) FROM u") == [(2,)]

    def test_snapshot_lsn_advances_with_commits(self):
        db = _single()
        mgr = SessionManager(db)
        s = mgr.session()
        s.execute("BEGIN")
        first = s.last_snapshot_lsn
        s.execute("COMMIT")
        db.execute("UPDATE t SET v = 1 WHERE k = 1")
        s.execute("BEGIN")
        assert s.last_snapshot_lsn == first + 1
        s.execute("ROLLBACK")

    def test_first_writer_wins(self):
        mgr = SessionManager(_single())
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("UPDATE t SET v = 2 WHERE k = 1")
        a.execute("COMMIT")
        with pytest.raises(ConflictError):
            b.execute("COMMIT")
        assert not b.in_transaction
        assert b.conflicts == 1
        assert mgr.session().query(
            "SELECT v FROM t WHERE k = 1") == [(1,)]

    def test_disjoint_writers_both_commit(self):
        mgr = SessionManager(_single())
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("UPDATE t SET v = 2 WHERE k = 2")
        a.execute("COMMIT")
        b.execute("COMMIT")
        rows = mgr.session().query(
            "SELECT k, v FROM t WHERE k < 3 ORDER BY k")
        assert rows == [(1, 1), (2, 2)]


class TestAdmissionGate:
    def test_begin_sheds_at_capacity(self):
        mgr = SessionManager(
            _single(), admission=AdmissionController(max_inflight=1))
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        with pytest.raises(AdmissionRejected):
            b.execute("BEGIN")
        assert b.shed == 1 and not b.in_transaction
        a.execute("COMMIT")
        b.execute("BEGIN")  # slot freed
        b.execute("ROLLBACK")

    def test_conflict_releases_slot(self):
        mgr = SessionManager(
            _single(), admission=AdmissionController(max_inflight=2))
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("UPDATE t SET v = 2 WHERE k = 1")
        a.execute("COMMIT")
        with pytest.raises(ConflictError):
            b.execute("COMMIT")
        assert mgr.admission.inflight == 0


class TestHistory:
    def test_recorder_captures_lifecycle(self):
        rec = HistoryRecorder()
        mgr = SessionManager(_single(), recorder=rec)
        s = mgr.session("tenant-a")
        s.execute("BEGIN")
        s.execute("SELECT v FROM t WHERE k = 1")
        s.execute("UPDATE t SET v = 11 WHERE k = 1")
        s.execute("COMMIT")
        kinds = [e["event"] for e in rec.events]
        assert kinds == ["begin", "read", "write", "finish"]
        finish = rec.events[-1]
        assert finish["outcome"] == "committed"
        assert finish["write_sets"] == {"t": [0]}
        assert finish["appends"] == {"t": 1}
        assert finish["commit_lsn"] > rec.events[0]["snapshot_lsn"]
        assert mgr.check_isolation() == []

    def test_conflicted_history_still_satisfies_isolation(self):
        rec = HistoryRecorder()
        mgr = SessionManager(_single(), recorder=rec)
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("DELETE FROM t WHERE k = 3")
        b.execute("DELETE FROM t WHERE k = 3")
        a.execute("COMMIT")
        with pytest.raises(ConflictError):
            b.execute("COMMIT")
        assert rec.outcomes() == {1: "committed", 2: "conflict"}
        assert mgr.check_isolation() == []


class TestReplicatedBackend:
    def _cluster(self):
        group = ReplicationGroup(n_replicas=2, mode="sync")
        group.execute("CREATE TABLE t (k BIGINT, v BIGINT)")
        group.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        return group

    def test_transaction_and_snapshot_lsn(self):
        group = self._cluster()
        mgr = SessionManager(group, recorder=HistoryRecorder())
        s = mgr.session("a")
        s.execute("BEGIN")
        assert s.last_snapshot_lsn == group.commit_lsn
        s.execute("UPDATE t SET v = 11 WHERE k = 1")
        assert s.query("SELECT v FROM t WHERE k = 1") == [(11,)]
        s.execute("COMMIT")
        group.drain()
        assert s.query("SELECT v FROM t WHERE k = 1") == [(11,)]
        assert mgr.check_isolation() == []

    def test_min_lsn_floor_routes_past_stale_replicas(self):
        """A read whose floor exceeds every replica's LSN must fall
        back to the primary rather than serve stale data."""
        group = self._cluster()
        group.drain()
        before = group.stats.reads_primary
        group.execute("SELECT v FROM t WHERE k = 1",
                      min_lsn=group.commit_lsn + 5)
        assert group.stats.reads_primary == before + 1

    def test_conflict_between_replicated_sessions(self):
        group = self._cluster()
        mgr = SessionManager(group)
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 1")
        b.execute("UPDATE t SET v = 2 WHERE k = 1")
        a.execute("COMMIT")
        with pytest.raises(ConflictError):
            b.execute("COMMIT")


class TestShardedBackend:
    def _sharded(self):
        sdb = ShardedDatabase(n_shards=2)
        sdb.execute(
            "CREATE TABLE t (k BIGINT, v BIGINT) PARTITION BY (k)")
        sdb.execute(
            "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
        return sdb

    def test_cross_shard_transaction_commits(self):
        rec = HistoryRecorder()
        mgr = SessionManager(self._sharded(), recorder=rec)
        s = mgr.session("a")
        s.execute("BEGIN")
        s.execute("UPDATE t SET v = 0 WHERE k = 1")
        s.execute("UPDATE t SET v = 0 WHERE k = 2")
        s.execute("COMMIT")
        assert sorted(mgr.session().query(
            "SELECT v FROM t WHERE k < 3")) == [(0,), (0,)]
        finish = rec.events[-1]
        # The write sets name the shard each row lives on.
        assert all(key.startswith("shard") for key
                   in finish["write_sets"])
        assert mgr.check_isolation() == []

    def test_sharded_conflict(self):
        mgr = SessionManager(self._sharded())
        a, b = mgr.session("a"), mgr.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE k = 3")
        b.execute("UPDATE t SET v = 2 WHERE k = 3")
        a.execute("COMMIT")
        with pytest.raises(ConflictError):
            b.execute("COMMIT")
        assert mgr.lsn() >= 1


class TestObservability:
    def test_statement_spans_carry_tenant(self):
        db = _single()
        tracer = Tracer()
        mgr = SessionManager(db, tracer=tracer)
        s = mgr.session("acme")
        s.execute("SELECT count(*) FROM t")
        span = tracer.roots[-1]
        assert span.name == "session.statement"
        assert span.attrs["tenant"] == "acme"
        assert span.attrs["session"] == s.session_id

    def test_profile_attributes_tenant(self):
        mgr = SessionManager(_single())
        s = mgr.session("acme")
        profile = s.profile("SELECT sum(v) FROM t")
        assert profile.root.attrs["tenant"] == "acme"
        assert profile.result.rows() == [(60,)]
