"""The headline concurrency oracle: hundreds of seeded concurrent
schedules driven through real sessions, every history validated
against the snapshot-isolation axioms.

Each case derives its own ``random.Random(SEED_BASE + case)`` and
interleaves BEGIN / statements / COMMIT / ROLLBACK across several
tenant sessions over one shared engine; the recorded history must
satisfy :func:`repro.sessions.check_snapshot_isolation` exactly.  The
fault band additionally arms a seeded injector on the commit path:
crashes trigger ``Database.recover()`` (and roll back the survivors'
open transactions), transients are retried — the history must *still*
check clean.

Seed bands: ``ISOLATION_SEED=k`` shifts every case by ``k * 1000`` so
CI runs disjoint schedules per matrix entry.  The unmarked tests cover
a fast subset on every run; the ``slow``-marked full band pushes the
total past 500 schedules.
"""

import os
import random

import pytest

from repro.faults import CrashError, FaultInjector, TransientFault
from repro.sessions import (
    AdmissionRejected, HistoryRecorder, SessionManager,
)
from repro.sharding import ShardedDatabase
from repro.sql import ConflictError, Database
from repro.wal import WriteAheadLog

SEED_BASE = int(os.environ.get("ISOLATION_SEED", "0")) * 1000

# Seeded fault rates on the commit path.  Transients fire only at
# ``commit.validate`` (before the WAL append) so a retry never
# double-logs; crashes can strike before or after the record is
# durable, exercising both recovery outcomes.
FAULT_RATES = {
    "commit.validate": ("transient", 0.05),
    "commit.publish": ("crash", 0.04),
    "commit.apply": ("crash", 0.03),
}

N_TENANTS = 4
KEYS = list(range(8))


def _fresh_database(seed, faulty):
    if faulty:
        db = Database(wal=WriteAheadLog(),
                      faults=FaultInjector.seeded(seed, FAULT_RATES))
    else:
        db = Database()
    db.execute("CREATE TABLE acct (k BIGINT, v BIGINT)")
    db.execute("INSERT INTO acct VALUES " + ", ".join(
        "({0}, {1})".format(k, 100 + k) for k in KEYS))
    db.execute("CREATE TABLE audit (k BIGINT, n BIGINT)")
    db.execute("INSERT INTO audit VALUES " + ", ".join(
        "({0}, 0)".format(k) for k in KEYS))
    return db


def _statement(rng, session, reads_issued):
    """One random in-transaction statement; repeats an earlier read of
    this transaction ~30% of the time to arm the repeatable-read
    axiom."""
    if reads_issued and rng.random() < 0.3:
        return rng.choice(reads_issued), True
    roll = rng.random()
    table = "acct" if rng.random() < 0.7 else "audit"
    k = rng.choice(KEYS)
    if roll < 0.40:
        sql = rng.choice([
            "SELECT v FROM acct WHERE k = {0}".format(k),
            "SELECT n FROM audit WHERE k = {0}".format(k),
            "SELECT count(*) FROM {0}".format(table),
            "SELECT sum(v) FROM acct",
        ])
        return sql, True
    if roll < 0.75:
        column = "v" if table == "acct" else "n"
        return ("UPDATE {0} SET {1} = {1} + 1 WHERE k = {2}".format(
            table, column, k), False)
    if roll < 0.90:
        return ("INSERT INTO acct VALUES ({0}, {1})".format(
            k, rng.randrange(1000)), False)
    return ("DELETE FROM audit WHERE k = {0} AND n > {1}".format(
        k, rng.randrange(3)), False)


def _commit(session, manager, sessions):
    """Commit one session, absorbing the outcomes a schedule may
    legitimately produce; returns the outcome label."""
    for _ in range(8):  # transients are retryable
        try:
            session.execute("COMMIT")
            return "committed"
        except ConflictError:
            return "conflict"
        except TransientFault:
            continue
        except CrashError:
            manager._backend.db.recover()
            for other in sessions:
                if other is not session and other.in_transaction:
                    other.execute("ROLLBACK")
            return "crashed"
    session.execute("ROLLBACK")  # persistent transient: give up
    return "aborted"


def run_schedule(case, faulty=False, n_ops=45):
    """Drive one seeded concurrent schedule; returns the manager (the
    caller asserts on its recorded history)."""
    seed = SEED_BASE + case
    rng = random.Random(seed)
    db = _fresh_database(seed, faulty)
    manager = SessionManager(db, recorder=HistoryRecorder())
    sessions = [manager.session("tenant-{0}".format(i))
                for i in range(N_TENANTS)]
    open_reads = {s.session_id: [] for s in sessions}
    for _ in range(n_ops):
        session = rng.choice(sessions)
        if not session.in_transaction:
            if rng.random() < 0.75:
                session.execute("BEGIN")
                open_reads[session.session_id] = []
            else:
                # Autocommit traffic interleaves with open snapshots.
                k = rng.choice(KEYS)
                session.execute(
                    "UPDATE acct SET v = v + 10 WHERE k = {0}".format(k))
            continue
        roll = rng.random()
        if roll < 0.60:
            sql, is_read = _statement(
                rng, session, open_reads[session.session_id])
            session.execute(sql)
            if is_read:
                open_reads[session.session_id].append(sql)
        elif roll < 0.85:
            _commit(session, manager, sessions)
        else:
            session.execute("ROLLBACK")
    for session in sessions:  # drain
        if session.in_transaction:
            if rng.random() < 0.5:
                _commit(session, manager, sessions)
            else:
                session.execute("ROLLBACK")
    return manager


def _assert_clean(case, faulty):
    manager = run_schedule(case, faulty=faulty)
    violations = manager.check_isolation()
    assert violations == [], (
        "seed {0} (faulty={1}): {2}".format(
            SEED_BASE + case, faulty, violations))
    return manager


class TestIsolationOracleFast:
    """Every-run subset: 40 fault-free + 20 faulty schedules."""

    @pytest.mark.parametrize("case", range(40))
    def test_schedule_satisfies_snapshot_isolation(self, case):
        _assert_clean(case, faulty=False)

    @pytest.mark.parametrize("case", range(1000, 1020))
    def test_faulty_schedule_satisfies_snapshot_isolation(self, case):
        _assert_clean(case, faulty=True)


@pytest.mark.slow
class TestIsolationOracleFullBand:
    """The acceptance band: with the fast subset this pushes the
    per-seed total past 500 schedules (40 + 20 + 340 + 120)."""

    @pytest.mark.parametrize("chunk", range(17))
    def test_plain_band(self, chunk):
        for case in range(40 + chunk * 20, 40 + (chunk + 1) * 20):
            _assert_clean(case, faulty=False)

    @pytest.mark.parametrize("chunk", range(6))
    def test_fault_band(self, chunk):
        for case in range(1020 + chunk * 20, 1020 + (chunk + 1) * 20):
            _assert_clean(case, faulty=True)


class TestScheduleProperties:
    """The harness itself must exercise what it claims to check."""

    def test_schedules_produce_conflicts_and_commits(self):
        outcomes = set()
        for case in range(25):
            manager = run_schedule(case)
            outcomes.update(
                manager.recorder.outcomes().values())
            if {"committed", "conflict", "aborted"} <= outcomes:
                break
        assert {"committed", "conflict", "aborted"} <= outcomes

    def test_fault_band_actually_fires_faults(self):
        fired = set()
        for case in range(1000, 1015):
            manager = run_schedule(case, faulty=True)
            fired.update(
                kind for _, _, kind in manager._backend.db.faults.fired)
            if {"crash", "transient"} <= fired:
                break
        assert {"crash", "transient"} <= fired

    def test_schedule_is_reproducible(self):
        a = run_schedule(7).recorder.events
        b = run_schedule(7).recorder.events
        assert a == b

    def test_recovery_preserves_durable_commits(self):
        """After any crash schedule, a fresh recover() replays to the
        same table contents — the WAL holds the whole truth."""
        manager = None
        for case in range(1000, 1030):
            candidate = run_schedule(case, faulty=True)
            if any(kind == "crash" for _, _, kind
                   in candidate._backend.db.faults.fired):
                manager = candidate
                break
        assert manager is not None, "no crash fired in 30 schedules"
        db = manager._backend.db
        before = sorted(db.query("SELECT k, v FROM acct"))
        db.recover()
        assert sorted(db.query("SELECT k, v FROM acct")) == before


class TestShardedIsolationOracle:
    """A smaller band through the sharded backend: same axioms, write
    sets keyed per shard."""

    def _run(self, case):
        rng = random.Random(SEED_BASE + 5000 + case)
        sdb = ShardedDatabase(n_shards=2)
        sdb.execute(
            "CREATE TABLE acct (k BIGINT, v BIGINT) PARTITION BY (k)")
        sdb.execute("INSERT INTO acct VALUES " + ", ".join(
            "({0}, {1})".format(k, 100 + k) for k in KEYS))
        manager = SessionManager(sdb, recorder=HistoryRecorder())
        sessions = [manager.session("tenant-{0}".format(i))
                    for i in range(3)]
        for _ in range(30):
            session = rng.choice(sessions)
            if not session.in_transaction:
                session.execute("BEGIN")
                continue
            roll = rng.random()
            if roll < 0.6:
                k = rng.choice(KEYS)
                session.execute(
                    rng.choice([
                        "SELECT v FROM acct WHERE k = {0}".format(k),
                        "UPDATE acct SET v = v + 1 WHERE k = {0}"
                        .format(k),
                    ]))
            elif roll < 0.85:
                try:
                    session.execute("COMMIT")
                except ConflictError:
                    pass
            else:
                session.execute("ROLLBACK")
        for session in sessions:
            if session.in_transaction:
                try:
                    session.execute("COMMIT")
                except ConflictError:
                    pass
        return manager

    @pytest.mark.parametrize("case", range(10))
    def test_sharded_schedule_satisfies_snapshot_isolation(self, case):
        manager = self._run(case)
        assert manager.check_isolation() == []


def test_admission_under_schedule_never_starves_progress():
    """With a tight admission gate, shed BEGINs surface as
    AdmissionRejected but admitted transactions still commit and the
    history still checks clean."""
    from repro.sessions import AdmissionController
    rng = random.Random(SEED_BASE + 9001)
    db = _fresh_database(SEED_BASE + 9001, faulty=False)
    manager = SessionManager(
        db, recorder=HistoryRecorder(),
        admission=AdmissionController(max_inflight=2))
    sessions = [manager.session("tenant-{0}".format(i))
                for i in range(4)]
    shed = 0
    for _ in range(60):
        session = rng.choice(sessions)
        if not session.in_transaction:
            try:
                session.execute("BEGIN")
            except AdmissionRejected:
                shed += 1
            continue
        if rng.random() < 0.5:
            session.execute("UPDATE acct SET v = v + 1 WHERE k = {0}"
                            .format(rng.choice(KEYS)))
        else:
            try:
                session.execute("COMMIT")
            except ConflictError:
                pass
    for session in sessions:
        if session.in_transaction:
            session.execute("ROLLBACK")
    assert shed > 0
    assert manager.committed > 0
    assert manager.check_isolation() == []
