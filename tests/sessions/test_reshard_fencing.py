"""Session layer x online resharding: epoch fencing is just another
retryable conflict.

A transaction that began before a shard-map cutover is *deposed* — its
routing decisions predate the installed epoch.  The fence raises
:class:`StaleEpochError`, a ``ConflictError`` subclass, so a session
records it as a conflict (not an error), releases its admission slot,
and a plain conflict-retry loop succeeds against the new map.  The
isolation history stays clean: a fenced transaction contributes a
``conflict`` outcome, never a partial write.
"""

import pytest

from repro.sessions import HistoryRecorder, SessionManager
from repro.sharding import ShardedDatabase, StaleEpochError

N_ROWS = 24


def _make():
    db = ShardedDatabase(n_shards=2)
    db.execute("CREATE TABLE kv (k BIGINT, v BIGINT) PARTITION BY (k)")
    db.execute("INSERT INTO kv VALUES " + ", ".join(
        "({0}, 0)".format(k) for k in range(N_ROWS)))
    return db


def _finish_migration(db):
    while db.migration is not None and not db.migration.finished:
        db.migration.step()


class TestFencedSessions:
    def test_fenced_commit_counts_as_conflict_and_retries(self):
        db = _make()
        recorder = HistoryRecorder()
        manager = SessionManager(db, recorder=recorder)
        session = manager.session("t0")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 5")
        db.split_shard(0, chunk_rows=6)
        _finish_migration(db)
        with pytest.raises(StaleEpochError):
            session.execute("COMMIT")
        assert session.conflicts == 1
        assert not session.in_transaction   # slot released, txn gone
        # The plain conflict-retry loop every session client runs:
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 5")
        session.execute("COMMIT")
        assert session.commits == 1
        assert db.query("SELECT v FROM kv WHERE k = 5") == [(1,)]
        assert recorder.check() == []   # no isolation violation

    def test_fenced_transaction_left_no_partial_write(self):
        db = _make()
        manager = SessionManager(db)
        session = manager.session("t0")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 999")   # touches every shard
        db.split_shard(1, chunk_rows=6)
        _finish_migration(db)
        with pytest.raises(StaleEpochError):
            session.execute("COMMIT")
        assert db.query("SELECT sum(v) FROM kv") == [(0,)]

    def test_sessions_beginning_after_cutover_are_unfenced(self):
        db = _make()
        manager = SessionManager(db)
        db.split_shard(0, chunk_rows=6)
        _finish_migration(db)
        session = manager.session("t1")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = v + 3 WHERE k = 2")
        session.execute("COMMIT")
        assert session.conflicts == 0
        assert db.query("SELECT v FROM kv WHERE k = 2") == [(3,)]
