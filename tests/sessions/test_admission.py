"""AdmissionController unit tests: bounded in-flight, shedding,
weighted-fair stride scheduling, determinism."""

import pytest

from repro.sessions import AdmissionController, AdmissionRejected


class TestSynchronousGate:
    def test_admits_until_capacity(self):
        ac = AdmissionController(max_inflight=3)
        for _ in range(3):
            ac.acquire("a")
        with pytest.raises(AdmissionRejected):
            ac.acquire("a")
        assert ac.shed == 1 and ac.admitted == 3

    def test_release_frees_slot(self):
        ac = AdmissionController(max_inflight=1)
        ac.acquire("a")
        ac.release("a")
        ac.acquire("b")
        assert ac.inflight == 1

    def test_acquire_never_jumps_the_queue(self):
        ac = AdmissionController(max_inflight=2)
        ac.acquire("a")
        ac.acquire("a")
        ac.enqueue("b", "queued-job")
        ac.release("a")
        # A slot is free but 'b' queued first: a fresh acquire sheds.
        with pytest.raises(AdmissionRejected):
            ac.acquire("c")
        assert ac.admit_next() == ("b", "queued-job")

    def test_release_without_admit_is_an_error(self):
        ac = AdmissionController()
        with pytest.raises(RuntimeError):
            ac.release("a")


class TestQueueing:
    def test_fifo_within_tenant(self):
        ac = AdmissionController(max_inflight=10)
        for i in range(4):
            ac.enqueue("a", i)
        assert [ac.admit_next()[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_queue_depth_sheds(self):
        ac = AdmissionController(max_inflight=1, max_queue_depth=2)
        ac.acquire("a")
        ac.enqueue("b", 1)
        ac.enqueue("b", 2)
        with pytest.raises(AdmissionRejected):
            ac.enqueue("b", 3)
        assert ac.tenant_stats()["b"]["shed"] == 1

    def test_admit_next_respects_inflight(self):
        ac = AdmissionController(max_inflight=1)
        ac.enqueue("a", 1)
        ac.enqueue("a", 2)
        assert ac.admit_next() == ("a", 1)
        assert ac.admit_next() is None
        ac.release("a")
        assert ac.admit_next() == ("a", 2)


class TestFairness:
    def _drain(self, ac, n):
        order = []
        for _ in range(n):
            admitted = ac.admit_next()
            if admitted is None:
                break
            order.append(admitted[0])
            ac.release(admitted[0])
        return order

    def test_equal_weights_share_equally(self):
        ac = AdmissionController(max_inflight=1)
        for tenant in ("a", "b", "c"):
            for i in range(40):
                ac.enqueue(tenant, i)
        order = self._drain(ac, 30)
        counts = {t: order.count(t) for t in ("a", "b", "c")}
        assert counts == {"a": 10, "b": 10, "c": 10}

    def test_weights_bias_admissions(self):
        ac = AdmissionController(max_inflight=1, max_queue_depth=128,
                                 weights={"heavy": 3, "light": 1})
        for tenant in ("heavy", "light"):
            for i in range(100):
                ac.enqueue(tenant, i)
        order = self._drain(ac, 40)
        heavy = order.count("heavy")
        assert 28 <= heavy <= 32  # 3:1 split of 40, +-2

    def test_no_starvation_under_skew(self):
        """A tenant with a single queued job gets served even while a
        hot tenant keeps a deep backlog."""
        ac = AdmissionController(max_inflight=1, max_queue_depth=256)
        for i in range(200):
            ac.enqueue("hot", i)
        ac.enqueue("cold", "only-job")
        order = self._drain(ac, 10)
        assert "cold" in order

    def test_idle_tenant_does_not_hoard_credit(self):
        """A tenant idle for a long stretch re-enters at the current
        pass: it cannot then monopolise admissions to 'catch up'."""
        ac = AdmissionController(max_inflight=1)
        for i in range(50):
            ac.enqueue("a", i)
        self._drain(ac, 20)
        for i in range(20):
            ac.enqueue("late", i)
        order = self._drain(ac, 10)
        assert 4 <= order.count("late") <= 6

    def test_deterministic_schedule(self):
        def run():
            ac = AdmissionController(max_inflight=2,
                                     weights={"a": 2, "b": 1})
            order = []
            for i in range(30):
                ac.enqueue("a" if i % 3 else "b", i)
            while True:
                admitted = ac.admit_next()
                if admitted is None:
                    break
                order.append(admitted)
                ac.release(admitted[0])
            return order
        assert run() == run()


class TestStats:
    def test_snapshot_shape(self):
        ac = AdmissionController(max_inflight=2)
        ac.acquire("a")
        ac.enqueue("b", 1)
        snap = ac.snapshot()
        assert snap["inflight"] == 1
        assert snap["backlog"] == 1
        assert snap["tenants"]["a"]["admitted"] == 1
        assert snap["tenants"]["b"]["queued"] == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        ac = AdmissionController(weights={"a": 0})
        with pytest.raises(ValueError):
            ac.acquire("a")
