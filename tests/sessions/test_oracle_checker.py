"""The isolation checker must *fail* on corrupted histories — an
oracle that never fires is worthless.  Each test hand-builds a history
violating exactly one axiom and asserts the checker names it."""

from repro.sessions import HistoryRecorder, check_snapshot_isolation


def _clean_history():
    rec = HistoryRecorder()
    rec.begin(1, "a", 10)
    rec.read(1, "SELECT v FROM t", [(1,)])
    rec.write(1, "UPDATE t ...", 1)
    rec.finish(1, "committed", write_sets={"t": {0}},
               appends={"t": 1}, commit_lsn=11)
    rec.begin(2, "b", 11)
    rec.read(2, "SELECT v FROM t", [(2,)])
    rec.finish(2, "committed", commit_lsn=11)  # read-only: same LSN ok
    return rec


def test_clean_history_passes():
    assert _clean_history().check() == []


def test_lost_update_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.begin(2, "b", 5)
    rec.finish(1, "committed", write_sets={"t": {3}}, commit_lsn=6)
    rec.finish(2, "committed", write_sets={"t": {3}}, commit_lsn=7)
    violations = rec.check()
    assert any("lost update" in v for v in violations)


def test_serialized_writers_on_same_row_pass():
    """The same row written by two *non-concurrent* transactions is
    fine: the second began after the first committed."""
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.finish(1, "committed", write_sets={"t": {3}}, commit_lsn=6)
    rec.begin(2, "b", 6)
    rec.finish(2, "committed", write_sets={"t": {3}}, commit_lsn=7)
    assert rec.check() == []


def test_read_your_own_writes_is_allowed():
    """A read changed by the transaction's *own* intervening write is
    not a repeatable-read violation under SI."""
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.read(1, "SELECT v FROM t", [(1,)])
    rec.write(1, "UPDATE t SET v = 2", 1)
    rec.read(1, "SELECT v FROM t", [(2,)])
    rec.finish(1, "committed", write_sets={"t": {0}}, commit_lsn=6)
    assert rec.check() == []


def test_non_repeatable_read_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.read(1, "SELECT v FROM t", [(1,)])
    rec.read(1, "SELECT v FROM t", [(2,)])
    rec.finish(1, "committed", commit_lsn=5)
    violations = rec.check()
    assert any("non-repeatable read" in v for v in violations)


def test_commit_order_regression_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.finish(1, "committed", write_sets={"t": {1}}, commit_lsn=9)
    rec.begin(2, "b", 9)
    rec.finish(2, "committed", write_sets={"t": {2}}, commit_lsn=8)
    violations = rec.check()
    assert any("not after" in v for v in violations)


def test_commit_before_snapshot_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 10)
    rec.finish(1, "committed", write_sets={"t": {1}}, commit_lsn=7)
    violations = rec.check()
    assert any("precedes its snapshot" in v for v in violations)


def test_snapshot_going_backwards_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 10)
    rec.begin(2, "b", 8)
    rec.finish(1, "aborted")
    rec.finish(2, "aborted")
    violations = rec.check()
    assert any("went backwards" in v for v in violations)


def test_committed_without_lsn_detected():
    rec = HistoryRecorder()
    rec.begin(1, "a", 3)
    rec.finish(1, "committed", write_sets={"t": {0}})
    violations = rec.check()
    assert any("without a commit LSN" in v for v in violations)


def test_aborted_transactions_never_flag():
    rec = HistoryRecorder()
    rec.begin(1, "a", 5)
    rec.begin(2, "b", 5)
    rec.finish(1, "conflict", write_sets={"t": {3}})
    rec.finish(2, "committed", write_sets={"t": {3}}, commit_lsn=6)
    assert rec.check() == []


def test_checker_is_pure_function():
    events = _clean_history().events
    assert check_snapshot_isolation(events) == []
    assert events == _clean_history().events  # not mutated
