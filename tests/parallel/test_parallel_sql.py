"""SQL-level parallel execution: pragma, fallback, and determinism."""

import pytest

from repro.hardware.profiles import TINY_SMP
from repro.parallel import ParallelSelectExecutor
from repro.sql.database import Database
from tests.helpers import assert_same_rows


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER, s VARCHAR(8))")
    rows = ", ".join(
        "({0}, {1}, '{2}')".format(i, (i * 37) % 100, "tag{0}".format(i % 5))
        for i in range(500))
    db.execute("INSERT INTO t VALUES " + rows)
    return db


QUERIES = [
    "SELECT a, b FROM t WHERE b < 40",
    "SELECT a + b, a * 2 FROM t WHERE a >= 100 AND b <> 3",
    "SELECT count(*), sum(a), min(b), max(b), avg(a) FROM t",
    "SELECT s, count(*), sum(b) FROM t GROUP BY s",
    "SELECT s, sum(a) FROM t GROUP BY s HAVING sum(a) > 10000",
    "SELECT DISTINCT s FROM t WHERE a < 250",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_parallel_matches_serial(sql):
    db = make_db()
    serial = db.query(sql)
    for workers in (2, 3, 4):
        assert_same_rows(db.query(sql, workers=workers), serial,
                         context="workers={0}".format(workers))
    assert db.parallel_fallbacks == 0


def test_workers_pragma_sets_session_default():
    db = make_db()
    assert db.default_workers == 1
    db.execute("SET workers = 4")
    assert db.default_workers == 4
    before = db.parallel_runs
    assert db.query("SELECT count(*) FROM t") == [(500,)]
    assert db.parallel_runs == before + 1
    # Explicit workers= overrides the session default back to serial.
    db.query("SELECT count(*) FROM t", workers=1)
    assert db.parallel_runs == before + 1


def test_workers_pragma_validation():
    db = make_db()
    with pytest.raises(ValueError):
        db.execute("SET workers = 0")
    with pytest.raises(ValueError):
        db.execute("SET workers = 1.5")
    with pytest.raises(ValueError):
        db.execute("SET bogus = 3")
    with pytest.raises(ValueError):
        db.execute("SELECT a FROM t", workers=0)


def test_unsupported_shape_falls_back_to_serial():
    db = make_db()
    # LIMIT without ORDER BY has no deterministic parallel answer, so
    # the engine silently runs it serially.
    rows = db.query("SELECT a FROM t LIMIT 5", workers=4)
    assert len(rows) == 5
    assert db.parallel_fallbacks == 1
    assert db.parallel_runs == 0


def test_order_by_is_preserved_in_parallel():
    db = make_db()
    sql = "SELECT a, b FROM t WHERE b < 30 ORDER BY b DESC, a ASC LIMIT 10"
    assert db.query(sql, workers=4) == db.query(sql)
    assert db.parallel_runs == 1


def test_parallel_profile_reports_workers():
    db = make_db(smp_profile=TINY_SMP)
    db.query("SELECT a, b FROM t WHERE b < 50", workers=2)
    report = db.last_parallel.profile()
    assert "worker-0" in report and "worker-1" in report
    assert "shared_llc" in report
    assert report["cycles"]["worker-0"] > 0


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_determinism_rows_and_misses(workers):
    """Same query, same data: bit-identical rows *and* identical
    simulated cache traffic, run after run."""

    def run():
        db = make_db(smp_profile=TINY_SMP)
        executor = ParallelSelectExecutor(db.catalog, workers,
                                          smp_profile=TINY_SMP,
                                          vector_size=128)
        from repro.sql.parser import parse_sql
        select = parse_sql("SELECT a, a + b FROM t WHERE b < 60")
        result = executor.execute(select)
        rows = list(zip(*result.columns))
        return rows, result.worker_set.miss_counts()

    rows_a, misses_a = run()
    rows_b, misses_b = run()
    assert rows_a == rows_b
    assert misses_a == misses_b
    assert any(misses_a.values())


def test_worker_counts_agree_on_the_answer():
    """Different worker counts agree on the answer as a multiset even
    though the exchange interleaving (and hence row order) differs."""
    db = make_db(smp_profile=TINY_SMP)
    sql = "SELECT a, b FROM t WHERE a % 3 = 0"
    serial = db.query(sql)
    for workers in (2, 4):
        assert_same_rows(db.query(sql, workers=workers), serial)
