"""Exchange operators: morsel scans, unions, and shared-LLC attribution."""

import numpy as np
import pytest

from repro.hardware.profiles import TINY_SMP
from repro.parallel import (
    Exchange, ExchangeUnion, MorselScan, MorselScheduler, WorkerSet,
)
from repro.vectorized.expressions import BinExpr, Col, Const
from repro.vectorized.operators import ExecutionContext, VectorSelect
from tests.helpers import assert_same_rows


def _table(n):
    return {"a": np.arange(n, dtype=np.int64),
            "b": np.arange(n, dtype=np.int64) * 3}


def _collect(root, names):
    rows = []
    for batch in root.batches():
        rows.extend(zip(*(batch.column(n) for n in names)))
    return rows


def test_morsel_scan_emits_all_rows():
    columns = _table(1000)
    scheduler = MorselScheduler(1000, workers=1, morsel_size=128)
    ctx = ExecutionContext(vector_size=100)
    scan = MorselScan(ctx, columns, scheduler, worker=0)
    rows = _collect(scan, ["a", "b"])
    assert_same_rows(rows, zip(columns["a"], columns["b"]))
    # Vector boundaries never cross morsel boundaries.
    assert scheduler.remaining() == 0


def test_exchange_union_is_complete_and_deterministic():
    columns = _table(5000)

    def run(workers):
        scheduler = MorselScheduler(5000, workers=workers, morsel_size=512)
        ctx = ExecutionContext(vector_size=256)
        scans = [MorselScan(ctx, columns, scheduler, worker=w)
                 for w in range(workers)]
        union = ExchangeUnion(ctx, scans)
        return _collect(union, ["a", "b"])

    serial = run(1)
    for workers in (2, 4):
        rows = run(workers)
        assert_same_rows(rows, serial)
        assert run(workers) == rows  # same interleaving every time


def test_exchange_with_filter_matches_serial():
    columns = _table(4000)
    expected = [(a, b) for a, b in zip(columns["a"], columns["b"])
                if a % 7 == 0]

    worker_set = WorkerSet(3, profile=None, vector_size=128)
    scheduler = MorselScheduler(4000, workers=3, morsel_size=256)

    def plan(ctx, sched, worker):
        scan = MorselScan(ctx, columns, sched, worker=worker)
        predicate = BinExpr("==", BinExpr("%", Col("a"), Const(7)),
                            Const(0))
        return VectorSelect(ctx, scan, predicate)

    union_ctx = ExecutionContext(vector_size=128)
    exchange = Exchange(union_ctx, plan, worker_set, scheduler)
    assert_same_rows(_collect(exchange, ["a", "b"]), expected)


def test_worker_set_requires_smp_profile_with_shared_level():
    with pytest.raises(ValueError):
        WorkerSet(0, profile=None)


def test_shared_llc_is_one_instance():
    worker_set = WorkerSet(4, profile=TINY_SMP)
    llcs = {id(ctx.hierarchy.caches[-1]) for ctx in worker_set.contexts}
    assert llcs == {id(worker_set.shared_llc)}
    privates = {id(ctx.hierarchy.caches[0]) for ctx in worker_set.contexts}
    assert len(privates) == 4


def test_llc_cycles_attributed_to_pulling_worker():
    columns = _table(8192)
    worker_set = WorkerSet(2, profile=TINY_SMP, vector_size=128)
    scheduler = MorselScheduler(8192, workers=2, morsel_size=512)

    def plan(ctx, sched, worker):
        return MorselScan(ctx, columns, sched, worker=worker)

    union_ctx = ExecutionContext(vector_size=128)
    exchange = Exchange(union_ctx, plan, worker_set, scheduler)
    for _ in exchange.batches():
        pass
    total_attributed = sum(worker_set.llc_cycles)
    assert total_attributed == worker_set.shared_llc.miss_cycles()
    assert worker_set.critical_path_cycles() <= worker_set.total_cycles()
    assert worker_set.critical_path_cycles() > 0


def test_profile_report_shape():
    columns = _table(2048)
    worker_set = WorkerSet(2, profile=TINY_SMP, vector_size=256)
    scheduler = MorselScheduler(2048, workers=2, morsel_size=512)
    exchange = Exchange(
        ExecutionContext(vector_size=256),
        lambda ctx, sched, w: MorselScan(ctx, columns, sched, worker=w),
        worker_set, scheduler)
    for _ in exchange.batches():
        pass
    report = worker_set.profile_report()
    assert set(report) == {"worker-0", "worker-1", "cycles", "shared_llc"}
    assert "MorselScan" in report["worker-0"]
    assert report["shared_llc"]["misses"] >= 0
