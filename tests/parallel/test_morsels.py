"""Morsel splitting and the work-stealing scheduler."""

import pytest

from repro.parallel import Morsel, MorselScheduler, split_morsels


def test_split_covers_rows_exactly():
    morsels = split_morsels(10000, morsel_size=4096)
    assert [m.start for m in morsels] == [0, 4096, 8192]
    assert [m.stop for m in morsels] == [4096, 8192, 10000]
    assert sum(m.size for m in morsels) == 10000
    assert [m.index for m in morsels] == [0, 1, 2]


def test_split_empty_and_tiny():
    assert split_morsels(0) == []
    assert split_morsels(1, morsel_size=4) == [Morsel(0, 0, 1)]
    with pytest.raises(ValueError):
        split_morsels(10, morsel_size=0)


def _drain(scheduler, order):
    """Pull morsels in the given worker order until everything is gone."""
    served = []
    exhausted = set()
    i = 0
    while len(exhausted) < scheduler.workers:
        worker = order[i % len(order)]
        i += 1
        if worker in exhausted:
            continue
        morsel = scheduler.next_morsel(worker)
        if morsel is None:
            exhausted.add(worker)
        else:
            served.append((worker, morsel))
    return served


def test_scheduler_serves_every_morsel_once():
    scheduler = MorselScheduler(100, workers=3, morsel_size=7)
    served = _drain(scheduler, order=[0, 1, 2])
    indexes = sorted(m.index for _, m in served)
    assert indexes == list(range(len(scheduler.morsels)))
    assert scheduler.remaining() == 0
    assert sum(scheduler.dispatched) == len(scheduler.morsels)


def test_scheduler_steals_when_own_queue_dry():
    # Worker 1 never gets a turn until worker 0 has drained its own
    # queue; from then on worker 0 must steal from worker 1.
    scheduler = MorselScheduler(8 * 10, workers=2, morsel_size=10)
    own = len(scheduler.queues[0])
    for _ in range(own):
        assert scheduler.next_morsel(0) is not None
    assert scheduler.steals == 0
    stolen = scheduler.next_morsel(0)
    assert stolen is not None
    assert scheduler.steals == 1
    # Steals come from the *tail* of the victim queue.
    assert stolen.index == max(m.index for m in scheduler.morsels)


def test_scheduler_no_stealing_mode():
    scheduler = MorselScheduler(40, workers=2, morsel_size=10,
                                stealing=False)
    while scheduler.next_morsel(0) is not None:
        pass
    assert scheduler.steals == 0
    assert scheduler.remaining() == 2  # worker 1's share is untouched


def test_scheduler_deterministic_schedule():
    def schedule():
        s = MorselScheduler(1000, workers=4, morsel_size=64)
        return [(w, m.index) for w, m in _drain(s, order=[2, 0, 3, 1])]

    assert schedule() == schedule()
