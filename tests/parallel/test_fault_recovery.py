"""Graceful degradation: worker deaths, retries, and serial fallback.

The acceptance bar: a query with an injected worker death returns rows
identical to the fault-free serial run — discard-plus-redo makes the
recovery exact, not approximate, for streaming and blocking plans
alike.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector
from repro.parallel import (
    Exchange,
    MorselScan,
    MorselScheduler,
    ParallelExecutionFailed,
    WorkerSet,
)
from repro.sql.database import Database
from repro.vectorized.expressions import BinExpr, Col, Const
from repro.vectorized.operators import ExecutionContext, VectorSelect
from tests.helpers import assert_same_rows

N_ROWS = 50_000
MORSEL = 4096


def _table(n=N_ROWS):
    return {"a": np.arange(n, dtype=np.int64),
            "b": (np.arange(n, dtype=np.int64) * 37) % 100}


def _exchange(columns, workers, faults, predicate=None):
    worker_set = WorkerSet(workers, profile=None, vector_size=1024)
    scheduler = MorselScheduler(len(columns["a"]), workers=workers,
                                morsel_size=MORSEL)

    def plan(ctx, sched, worker):
        scan = MorselScan(ctx, columns, sched, worker=worker,
                          faults=faults)
        if predicate is None:
            return scan
        return VectorSelect(ctx, scan, predicate)

    exchange = Exchange(ExecutionContext(vector_size=1024), plan,
                        worker_set, scheduler)
    return exchange, scheduler


def _rows(batches, names):
    out = []
    for batch in batches:
        out.extend(zip(*(batch.column(n) for n in names)))
    return out


class TestSchedulerReassign:
    def test_moves_served_and_queued_morsels(self):
        sched = MorselScheduler(4 * MORSEL, workers=2, morsel_size=MORSEL)
        first = sched.next_morsel(0)
        assert first is not None
        share = len(sched.served[0]) + len(sched.queues[0])
        moved = sched.reassign(0, survivors=[1])
        # The served morsel plus everything still queued for worker 0.
        assert moved == share
        assert 0 in sched.dead
        assert sched.served[0] == [] and not sched.queues[0]
        assert sched.next_morsel(0) is None  # dead workers get nothing
        seen = set()
        while True:
            morsel = sched.next_morsel(1)
            if morsel is None:
                break
            seen.add(morsel.index)
        assert first.index in seen  # the dispatched morsel came back
        assert len(seen) == 4

    def test_reassign_validates_survivors(self):
        sched = MorselScheduler(MORSEL, workers=2, morsel_size=MORSEL)
        sched.reassign(0, survivors=[1])
        with pytest.raises(ValueError):
            sched.reassign(1, survivors=[0])  # dead survivor


class TestExchangeRecovery:
    def test_streaming_death_is_exact(self):
        columns = _table()
        expected = list(zip(columns["a"], columns["b"]))
        inj = FaultInjector().crash_at("morsel.run", hit=3)
        exchange, scheduler = _exchange(columns, workers=4, faults=inj)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert_same_rows(rows, expected)
        (failure,) = exchange.failures
        assert failure.site == "morsel.run"
        assert failure.requeued >= 1
        assert scheduler.redispatched == failure.requeued

    def test_blocking_pipeline_death_is_exact(self):
        """Kill a worker late, after some pipelines already drained:
        requeued morsels must revive an exhausted survivor."""
        columns = _table()
        predicate = BinExpr("==", BinExpr("%", Col("a"), Const(7)),
                            Const(0))
        expected = [(a, b) for a, b
                    in zip(columns["a"], columns["b"])
                    if a % 7 == 0]
        total_morsels = -(-N_ROWS // MORSEL)
        inj = FaultInjector().crash_at("morsel.run", hit=total_morsels)
        exchange, _ = _exchange(columns, workers=4, faults=inj,
                                predicate=predicate)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert_same_rows(rows, expected)
        assert len(exchange.failures) == 1

    def test_two_deaths_survive(self):
        columns = _table()
        expected = list(zip(columns["a"], columns["b"]))
        inj = FaultInjector()
        inj.crash_at("morsel.run", hit=2)
        inj.crash_at("morsel.run", hit=5)
        exchange, _ = _exchange(columns, workers=4, faults=inj)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert_same_rows(rows, expected)
        assert len(exchange.failures) == 2
        assert len({f.worker for f in exchange.failures}) == 2

    def test_all_workers_dead_raises(self):
        from repro.faults import FaultPlan
        columns = _table()
        inj = FaultInjector()
        inj.plan(FaultPlan("morsel.run", "crash", hits=None))
        exchange, _ = _exchange(columns, workers=3, faults=inj)
        with pytest.raises(ParallelExecutionFailed) as exc:
            exchange.collect()
        assert len(exc.value.failures) == 3

    def test_transient_fault_is_retried_not_fatal(self):
        columns = _table()
        expected = list(zip(columns["a"], columns["b"]))
        inj = FaultInjector().transient_at("morsel.run", hits=(2, 6))
        exchange, _ = _exchange(columns, workers=2, faults=inj)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert_same_rows(rows, expected)
        assert exchange.failures == []
        assert sum(c.retries for c in exchange.children
                   if isinstance(c, MorselScan)) == 2

    def test_persistent_transient_escalates_to_death(self):
        """A site that never stops failing exhausts the retry budget and
        becomes a worker death — still recovered by the survivors."""
        columns = _table()
        expected = list(zip(columns["a"], columns["b"]))
        inj = FaultInjector()
        inj.transient_at("morsel.run", hits=(1, 2, 3, 4))
        exchange, _ = _exchange(columns, workers=3, faults=inj)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert_same_rows(rows, expected)
        (failure,) = exchange.failures
        assert failure.site == "morsel.run"

    def test_latency_spike_only_stalls(self):
        columns = _table()
        inj = FaultInjector().delay_at("morsel.run", hits=(1, 2), delay=9)
        exchange, _ = _exchange(columns, workers=2, faults=inj)
        rows = _rows(exchange.collect(), ["a", "b"])
        assert len(rows) == N_ROWS
        assert exchange.failures == []
        assert sum(c.stall_units for c in exchange.children
                   if isinstance(c, MorselScan)) == 18


class TestSqlLevelDegradation:
    def _db(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, s VARCHAR(8))")
        rows = ", ".join(
            "({0}, {1}, '{2}')".format(i, (i * 37) % 100,
                                       "tag{0}".format(i % 5))
            for i in range(500))
        db.execute("INSERT INTO t VALUES " + rows)
        return db

    QUERIES = [
        "SELECT a, b FROM t WHERE b < 40",
        "SELECT count(*), sum(a), min(b), max(b) FROM t",
        "SELECT s, count(*), sum(b) FROM t GROUP BY s",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_worker_death_matches_fault_free_serial(self, sql):
        """Acceptance: injected death, identical rows, failure logged."""
        db = self._db()
        serial = db.query(sql)
        db.faults = FaultInjector().crash_at("morsel.run")
        rows = db.query(sql, workers=4)
        assert_same_rows(rows, serial, context=sql)
        assert db.parallel_fallbacks == 0
        (failure,) = db.last_parallel.failures
        assert failure.site == "morsel.run"
        assert not db.last_parallel.fell_back

    def test_all_dead_falls_back_to_serial(self):
        from repro.faults import FaultPlan
        db = self._db()
        serial = db.query("SELECT a, b FROM t WHERE b < 40")
        inj = FaultInjector()
        inj.plan(FaultPlan("morsel.run", "crash", hits=None))
        db.faults = inj
        rows = db.query("SELECT a, b FROM t WHERE b < 40", workers=3)
        assert_same_rows(rows, serial)
        assert db.parallel_fallbacks == 1
        assert db.last_parallel.fell_back
        assert len(db.last_parallel.failures) == 3
        assert db.last_parallel.profile() == {}

    def test_seeded_chaos_run_still_exact(self):
        """Probabilistic-but-reproducible chaos: every query answers
        exactly despite a steady trickle of faults."""
        db = self._db()
        serial = {sql: db.query(sql) for sql in self.QUERIES}
        db.faults = FaultInjector.seeded(
            11, {"morsel.run": ("transient", 0.1)})
        for sql in self.QUERIES:
            assert_same_rows(db.query(sql, workers=4), serial[sql],
                             context=sql)
