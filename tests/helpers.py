"""Shared test helpers.

``assert_same_rows`` compares query results as *multisets*: SQL
semantics fix row order only under ORDER BY, and parallel plans return
exchange-union order rather than scan order, so any test comparing
results across engines (serial / parallel / reference oracle) or
across worker counts must ignore order.  Numeric values are normalized
(int vs numpy int vs float of equal value compare equal, floats are
rounded to 10 significant digits) so engine-internal representation
differences don't register as result differences.
"""

import math
from collections import Counter


def normalize_value(value):
    """A representation-insensitive, hashable stand-in for a value."""
    if isinstance(value, bool):
        return ("bool", value)
    if value is None:
        return ("null",)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return ("nan",)
        return ("num", float("{0:.10g}".format(float(value))))
    return ("val", value)


def normalize_row(row):
    return tuple(normalize_value(v) for v in row)


def assert_same_rows(actual, expected, context="", ordered=False):
    """Assert two row iterables hold the same rows.

    By default the comparison is a multiset (order-insensitive); pass
    ``ordered=True`` for queries whose row order is actually specified
    — a total ORDER BY — where a merged-shard or exchange-union
    interleave leaking through would be a real bug.
    """
    if ordered:
        got_rows = [normalize_row(r) for r in actual]
        want_rows = [normalize_row(r) for r in expected]
        if got_rows == want_rows:
            return
        prefix = (context + "; ") if context else ""
        for i, (g, w) in enumerate(zip(got_rows, want_rows)):
            if g != w:
                raise AssertionError(
                    "{0}ordered rows differ at position {1}: "
                    "{2} != {3}".format(prefix, i, g, w))
        raise AssertionError(
            "{0}ordered row counts differ: {1} != {2}".format(
                prefix, len(got_rows), len(want_rows)))
    got = Counter(normalize_row(r) for r in actual)
    want = Counter(normalize_row(r) for r in expected)
    if got == want:
        return
    missing = want - got
    extra = got - want
    parts = []
    if context:
        parts.append(context)
    if missing:
        parts.append("missing rows: {0}".format(
            sorted(missing.elements())[:10]))
    if extra:
        parts.append("unexpected rows: {0}".format(
            sorted(extra.elements())[:10]))
    raise AssertionError("row multisets differ; " + "; ".join(parts))
