"""Tests for the seeded open-loop multi-tenant workload driver."""

import pytest

from repro.replication import ReplicationGroup
from repro.sharding import ShardedDatabase
from repro.workloads import MultiTenantWorkload, run_workload


def _quick(seed, **kwargs):
    defaults = dict(duration=60, capacity=4.0, n_tenants=4,
                    rows_per_tenant=4)
    defaults.update(kwargs)
    return run_workload(seed, **defaults)


class TestDriver:
    def test_run_is_reproducible(self):
        a = _quick(3)
        b = _quick(3)
        assert a.summary() == b.summary()
        assert a.latencies == b.latencies

    def test_seeds_differ(self):
        assert _quick(1).summary() != _quick(2).summary()

    def test_report_accounting_is_consistent(self):
        report = _quick(5, overload=1.5, admission=True)
        assert report.admitted + report.shed <= report.arrived
        assert report.completed <= report.admitted
        assert report.good <= report.completed
        assert len(report.latencies) == report.completed
        assert sum(report.per_tenant.values()) == report.completed

    def test_zipf_tenants_are_skewed(self):
        workload = MultiTenantWorkload(9, n_tenants=6, zipf_skew=1.4,
                                       duration=120, overload=1.0)
        report = workload.run()
        hot = report.per_tenant.get("t0", 0)
        cold = report.per_tenant.get("t5", 0)
        assert hot > cold

    def test_history_checks_clean_and_transactions_ran(self):
        report = _quick(7, overload=1.2)
        assert report.violations == []
        assert report.history_events > 0
        assert report.completed > 0

    def test_admission_bounds_in_service(self):
        uncontrolled = _quick(11, overload=2.0)
        controlled = _quick(11, overload=2.0, admission=True)
        assert controlled.max_in_service <= 4
        assert uncontrolled.max_in_service > controlled.max_in_service
        assert controlled.shed > 0


class TestBackends:
    def test_replicated_backend(self):
        group = ReplicationGroup(n_replicas=2, mode="sync")
        report = _quick(13, backend=group, duration=40)
        assert report.completed > 0
        assert report.violations == []

    def test_sharded_backend(self):
        sdb = ShardedDatabase(n_shards=2)
        report = _quick(17, backend=sdb, duration=40)
        assert report.completed > 0
        assert report.violations == []
