"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.sql import Database
from repro.workloads import (
    SkyserverWorkload,
    StarSchema,
    clustered_ints,
    dense_keys,
    sorted_ints,
    uniform_ints,
    zipf_ints,
)


class TestGenerators:
    def test_uniform_range_and_determinism(self):
        a = uniform_ints(1000, 10, 20, seed=7)
        b = uniform_ints(1000, 10, 20, seed=7)
        assert np.array_equal(a, b)
        assert a.min() >= 10 and a.max() < 20

    def test_zipf_is_skewed(self):
        values = zipf_ints(10_000, n_distinct=100, skew=1.5)
        counts = np.bincount(values, minlength=100)
        assert counts[0] > 10 * max(counts[50], 1)

    def test_sorted(self):
        values = sorted_ints(500)
        assert (np.diff(values) >= 0).all()

    def test_clustered_is_locally_shuffled(self):
        values = clustered_ints(1000, run_length=50)
        assert not (np.diff(values) >= 0).all()  # not fully sorted
        # But globally ascending at run granularity.
        run_mins = values.reshape(20, 50).min(axis=1)
        assert (np.diff(run_mins) >= 0).all()

    def test_dense_keys_are_a_permutation(self):
        values = dense_keys(256, base=100)
        assert sorted(values.tolist()) == list(range(100, 356))


class TestSkyserver:
    def test_populates_database(self):
        db = Database()
        workload = SkyserverWorkload(n_rows=200, n_queries=20)
        log = workload.populate(db)
        assert db.execute("SELECT count(*) FROM obs").scalar() == 200
        assert len(log) == 20

    def test_queries_run(self):
        db = Database()
        workload = SkyserverWorkload(n_rows=300, n_queries=30, seed=3)
        for q in workload.populate(db):
            db.execute(q)  # all must compile and execute

    def test_log_has_template_reuse(self):
        log = SkyserverWorkload(n_queries=100).query_log()
        assert len(set(log)) < len(log)  # literal repeats exist

    def test_log_is_region_skewed(self):
        workload = SkyserverWorkload(n_queries=400, n_regions=32,
                                     skew=1.5)
        import re
        regions = [int(m.group(1)) for q in workload.query_log()
                   for m in [re.search(r"region = (\d+)", q)] if m]
        counts = np.bincount(regions, minlength=32)
        assert counts.max() > 4 * np.median(counts[counts > 0])


class TestStarSchema:
    def test_populates_database(self):
        schema = StarSchema(n_sales=500, n_items=20, n_stores=5)
        db = schema.populate(Database())
        assert db.execute("SELECT count(*) FROM sales").scalar() == 500
        assert db.execute("SELECT count(*) FROM items").scalar() == 20

    def test_referential_integrity(self):
        schema = StarSchema(n_sales=300)
        db = schema.populate(Database())
        orphan = db.execute(
            "SELECT count(*) FROM sales JOIN items "
            "ON sales.item_id = items.item_id").scalar()
        assert orphan == 300  # every sale joins exactly one item

    def test_forms_are_consistent(self):
        schema = StarSchema(n_sales=100)
        cols = schema.sales_columns()
        rows = schema.sales_rows()
        assert len(rows) == 100
        assert rows[0][0] == cols["item_id"][0]

    def test_bi_query_cross_check(self):
        """The same revenue query through SQL and through numpy."""
        schema = StarSchema(n_sales=1000, n_items=10)
        db = schema.populate(Database())
        sql_rows = db.query(
            "SELECT item_id, sum(qty) FROM sales GROUP BY item_id "
            "ORDER BY item_id")
        totals = np.bincount(schema.sale_items,
                             weights=schema.sale_qtys,
                             minlength=10).astype(int)
        expected = [(i, int(t)) for i, t in enumerate(totals) if t > 0]
        assert sql_rows == expected
