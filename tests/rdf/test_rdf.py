"""Tests for the triple store and the SPARQL subset."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import SPARQLError, TripleStore, Var, sparql

TRIPLES = [
    ("alice", "knows", "bob"),
    ("alice", "knows", "carol"),
    ("bob", "knows", "carol"),
    ("carol", "knows", "dave"),
    ("alice", "age", "30"),
    ("bob", "age", "30"),
    ("carol", "age", "41"),
    ("bob", "likes", "databases"),
]


@pytest.fixture
def store():
    s = TripleStore()
    s.add_many(TRIPLES)
    return s


class TestStore:
    def test_interning(self, store):
        assert store.lookup("alice") is not None
        assert store.lookup("zeus") is None
        assert store.term(store.lookup("bob")) == "bob"
        assert len(store) == len(TRIPLES)

    def test_match_by_constants(self, store):
        got = store.triples(store.match(s="alice", p="knows"))
        assert got == [("alice", "knows", "bob"),
                       ("alice", "knows", "carol")]

    def test_match_unknown_term(self, store):
        assert len(store.match(s="zeus")) == 0

    def test_match_all(self, store):
        assert store.triples() == TRIPLES

    def test_solve_single_pattern(self, store):
        names, table = store.solve([(Var("x"), "knows", Var("y"))])
        assert names == ["x", "y"]
        pairs = {(store.term(a), store.term(b))
                 for a, b in zip(table["x"], table["y"])}
        assert pairs == {("alice", "bob"), ("alice", "carol"),
                         ("bob", "carol"), ("carol", "dave")}

    def test_solve_join_on_shared_var(self, store):
        names, table = store.solve([
            (Var("x"), "knows", Var("y")),
            (Var("y"), "age", "30"),
        ])
        pairs = {(store.term(a), store.term(b))
                 for a, b in zip(table["x"], table["y"])}
        assert pairs == {("alice", "bob")}

    def test_repeated_variable_in_pattern(self):
        s = TripleStore()
        s.add("a", "loves", "a")
        s.add("a", "loves", "b")
        names, table = s.solve([(Var("x"), "loves", Var("x"))])
        assert {s.term(v) for v in table["x"]} == {"a"}

    def test_ground_pattern_filters(self, store):
        # Existing ground triple keeps solutions; missing one empties.
        _, table = store.solve([(Var("x"), "age", "30"),
                                ("bob", "likes", "databases")])
        assert len(table["x"]) == 2
        _, table = store.solve([(Var("x"), "age", "30"),
                                ("bob", "likes", "cobol")])
        assert len(table["x"]) == 0

    def test_cross_product_when_no_shared_vars(self, store):
        _, table = store.solve([(Var("x"), "likes", Var("z")),
                                (Var("y"), "age", "41")])
        assert len(table["x"]) == 1
        assert store.term(table["y"][0]) == "carol"


class TestSPARQL:
    def test_basic_select(self, store):
        names, rows = sparql(store,
                             'SELECT ?x WHERE { ?x <age> "30" . }')
        assert names == ["x"]
        assert rows == [("alice",), ("bob",)]

    def test_join_query(self, store):
        _, rows = sparql(store, """
            SELECT ?x ?z WHERE {
                ?x <knows> ?y .
                ?y <knows> ?z .
            }""")
        assert ("alice", "carol") in rows
        assert ("alice", "dave") in rows
        assert ("bob", "dave") in rows

    def test_star_projection(self, store):
        names, rows = sparql(store,
                             "SELECT * WHERE { ?a <likes> ?b . }")
        assert names == ["a", "b"]
        assert rows == [("bob", "databases")]

    def test_duplicate_solutions_deduplicated(self, store):
        _, rows = sparql(store, "SELECT ?p WHERE { ?x <age> ?p . }")
        assert rows == [("30",), ("41",)]

    def test_unbound_projection_rejected(self, store):
        with pytest.raises(SPARQLError):
            sparql(store, "SELECT ?ghost WHERE { ?x <age> ?y . }")

    def test_malformed_queries(self, store):
        for bad in ("SELECT ?x { }", "SELECT ?x WHERE { ?x <p> . }",
                    "FETCH ?x WHERE { ?x <p> ?y . }",
                    "SELECT ?x WHERE { }"):
            with pytest.raises(SPARQLError):
                sparql(store, bad)

    def test_literals_with_spaces(self):
        s = TripleStore()
        s.add("paper", "title", "mammals and dinosaurs")
        _, rows = sparql(
            s, 'SELECT ?x WHERE { ?x <title> "mammals and dinosaurs" . }')
        assert rows == [("paper",)]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abcd"),
                          st.sampled_from(["p", "q"]),
                          st.sampled_from("abcd")),
                min_size=1, max_size=20))
def test_property_two_pattern_join_matches_nested_loop(triples):
    store = TripleStore()
    store.add_many([(s, p, o) for s, p, o in triples])
    _, table = store.solve([(Var("x"), "p", Var("y")),
                            (Var("y"), "q", Var("z"))])
    got = {(store.term(a), store.term(b), store.term(c))
           for a, b, c in zip(table["x"], table["y"], table["z"])}
    unique = set(triples)
    expected = {(s1, o1, o2)
                for (s1, p1, o1) in unique for (s2, p2, o2) in unique
                if p1 == "p" and p2 == "q" and o1 == s2}
    assert got == expected
