"""Serial-equivalence oracle: committed concurrent schedules, replayed
*serially* in commit order through the reference executor, must land on
the same final table contents as the engine.

Soundness: under snapshot isolation a set of concurrent transactions is
serializable when their write sets touch disjoint *tables* (write skew
needs overlapping writes), so the generator assigns each in-flight
transaction its own table to write — reads roam freely.  Commit order
is the recorded commit LSN, i.e. the order the engine claims; if its
MVCC publish ever disagreed with that order, the replay would diverge.
"""

import random

import pytest

from repro.sessions import HistoryRecorder, SessionManager
from repro.sharding import ShardedDatabase
from repro.sql import ConflictError, Database
from repro.sql.parser import parse_sql

from tests.oracle.reference import ReferenceExecutor

TABLES = ["t0", "t1", "t2"]
KEYS = list(range(6))


def _initial_rows(table_index):
    return [(k, 100 * table_index + 10 * k) for k in KEYS]


def _build(backend):
    for i, name in enumerate(TABLES):
        suffix = " PARTITION BY (k)" if isinstance(
            backend, ShardedDatabase) else ""
        backend.execute(
            "CREATE TABLE {0} (k BIGINT, v BIGINT){1}".format(
                name, suffix))
        backend.execute("INSERT INTO {0} VALUES ".format(name) + ", ".join(
            "({0}, {1})".format(k, v) for k, v in _initial_rows(i)))


def _dml(rng, table):
    k = rng.choice(KEYS)
    roll = rng.random()
    if roll < 0.5:
        return "UPDATE {0} SET v = v + {1} WHERE k = {2}".format(
            table, rng.randrange(1, 9), k)
    if roll < 0.8:
        return "INSERT INTO {0} VALUES ({1}, {2})".format(
            table, k, rng.randrange(500, 600))
    return "DELETE FROM {0} WHERE k = {1} AND v > {2}".format(
        table, k, rng.randrange(50, 400))


def _run_schedule(backend, seed, n_rounds=5):
    """Concurrent rounds of disjoint-write-table transactions; returns
    [(commit_lsn, finish_index, [dml sql])] for the committed ones."""
    rng = random.Random(seed)
    recorder = HistoryRecorder()
    manager = SessionManager(backend, recorder=recorder)
    log = []
    for _ in range(n_rounds):
        width = rng.randrange(2, len(TABLES) + 1)
        own = rng.sample(TABLES, width)
        sessions = [manager.session("tenant-{0}".format(i))
                    for i in range(width)]
        for session in sessions:
            session.execute("BEGIN")
        dml = {s.session_id: [] for s in sessions}
        for _ in range(rng.randrange(4, 10)):
            i = rng.randrange(width)
            session = sessions[i]
            if rng.random() < 0.35:
                session.execute("SELECT sum(v) FROM {0}".format(
                    rng.choice(TABLES)))
            else:
                sql = _dml(rng, own[i])
                session.execute(sql)
                dml[session.session_id].append(sql)
        order = list(range(width))
        rng.shuffle(order)
        for i in order:
            sessions[i].execute("COMMIT")
            finish = recorder.events[-1]
            assert finish["outcome"] == "committed"
            log.append((finish["commit_lsn"], len(recorder.events),
                        dml[sessions[i].session_id]))
    assert manager.check_isolation() == []
    return manager, log


def _assert_serially_equivalent(backend, log):
    reference = ReferenceExecutor({
        name: (["k", "v"], _initial_rows(i))
        for i, name in enumerate(TABLES)})
    for _lsn, _idx, statements in sorted(log, key=lambda r: (r[0], r[1])):
        for sql in statements:
            reference.apply_dml(parse_sql(sql))
    for name in TABLES:
        engine = sorted(backend.query("SELECT k, v FROM {0}".format(name)))
        serial = sorted(tuple(r) for r in reference.tables[name][1])
        assert engine == serial, \
            "{0}: engine {1!r} != serial replay {2!r}".format(
                name, engine, serial)


@pytest.mark.parametrize("seed", range(12))
def test_single_node_schedules_are_serially_equivalent(seed):
    db = Database()
    _build(db)
    _, log = _run_schedule(db, seed)
    _assert_serially_equivalent(db, log)


@pytest.mark.parametrize("seed", range(8))
def test_sharded_schedules_are_serially_equivalent(seed):
    sdb = ShardedDatabase(n_shards=2)
    _build(sdb)
    _, log = _run_schedule(sdb, 100 + seed)
    _assert_serially_equivalent(sdb, log)


def test_conflicting_writers_leave_a_serializable_history():
    """Two same-row writers: first-writer-wins commits exactly one, and
    replaying just the winner matches the engine."""
    db = Database()
    _build(db)
    recorder = HistoryRecorder()
    manager = SessionManager(db, recorder=recorder)
    a, b = manager.session("a"), manager.session("b")
    a.execute("BEGIN")
    b.execute("BEGIN")
    sql_a = "UPDATE t0 SET v = v + 7 WHERE k = 2"
    sql_b = "UPDATE t0 SET v = v + 9 WHERE k = 2"
    a.execute(sql_a)
    b.execute(sql_b)
    a.execute("COMMIT")
    winner = (recorder.events[-1]["commit_lsn"], 0, [sql_a])
    with pytest.raises(ConflictError):
        b.execute("COMMIT")
    assert recorder.outcomes() == {1: "committed", 2: "conflict"}
    _assert_serially_equivalent(db, [winner])
    assert manager.check_isolation() == []
