"""Differential testing of the replicated engine.

The same seeded DML scripts the single-node oracle replays are driven
through a :class:`ReplicationGroup` — including a forced failover in
the middle of every script sequence — and the surviving cluster's
tables must equal the row-at-a-time reference executor's, on every
serving node.  This extends the oracle to the replication layer: if
shipping, failover, fencing or catch-up dropped or duplicated even one
logical operation, the multiset comparison here would catch it.
"""

import pytest

from repro.replication import ReplicationGroup
from repro.sql.parser import parse_sql
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor
from tests.oracle.test_recovery_differential import copy_tables

SEEDS = list(range(1, 9))
SCRIPTS_PER_SEED = 3


def build_cluster(generator, mode="sync"):
    group = ReplicationGroup(n_replicas=2, mode=mode)
    for statement in generator.setup_statements():
        group.execute(statement)
    group.drain()
    return group


def assert_cluster_state(group, tables, context):
    """Every serving node must equal the reference, table for table."""
    group.drain()
    for node in group.nodes:
        if not node.alive:
            continue
        for name, (names, rows) in tables.items():
            got = node.db.query("SELECT {0} FROM {1}".format(
                ", ".join(names), name))
            assert_same_rows(
                got, rows, context="{0} node={1} table={2}".format(
                    context, node.node_id, name))


@pytest.mark.parametrize("seed", SEEDS)
def test_replicated_dml_matches_reference(seed):
    """Fault-free replication: after each script the whole cluster
    equals the reference."""
    generator = QueryGenerator(seed)
    group = build_cluster(generator)
    reference = ReferenceExecutor(copy_tables(
        generator.reference_tables()))
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i)
        for sql in script:
            group.execute(sql)
            reference.apply_dml(parse_sql(sql))
        assert_cluster_state(
            group, reference.tables,
            "seed={0} script#{1}".format(seed, i))
    assert group.divergence_report() == []


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_mid_script_failover_preserves_reference_state(seed, mode):
    """The acceptance scenario: kill the primary between scripts, let
    the cluster fail over, keep executing on the new primary — the
    survivors must equal the reference exactly."""
    generator = QueryGenerator(seed)
    group = build_cluster(generator, mode=mode)
    reference = ReferenceExecutor(copy_tables(
        generator.reference_tables()))
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i)
        for j, sql in enumerate(script):
            group.execute(sql)
            reference.apply_dml(parse_sql(sql))
            if i == 1 and j == len(script) // 2:
                # Mid-sequence: drain (async lag must not lose the
                # reference-applied statements), then kill the leader.
                group.drain()
                victim = group.primary.node_id
                group.kill(victim)
                group.await_failover()
        assert_cluster_state(
            group, reference.tables,
            "seed={0} mode={1} script#{2}".format(seed, mode, i))
    # The killed ex-primary rejoins and converges on the same state.
    for node in group.nodes:
        if not node.alive:
            group.restart(node.node_id)
    assert_cluster_state(group, reference.tables,
                         "seed={0} mode={1} after rejoin".format(seed,
                                                                 mode))
    assert group.divergence_report() == []


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_reads_match_reference_on_any_routed_node(seed):
    """SELECTs answered by load-balanced replicas agree with the
    reference, i.e. read routing never serves a stale snapshot in
    sync mode."""
    generator = QueryGenerator(seed)
    group = build_cluster(generator)
    reference = ReferenceExecutor(copy_tables(
        generator.reference_tables()))
    script = generator.gen_dml_script(case_id=0)
    for sql in script:
        group.execute(sql)
        reference.apply_dml(parse_sql(sql))
    for name, (names, rows) in reference.tables.items():
        select = "SELECT {0} FROM {1}".format(", ".join(names), name)
        for _ in range(3):   # hits different replicas round-robin
            assert_same_rows(group.query(select), rows, context=select)
