"""Differential testing of transactional DML and crash recovery.

The generator emits random transactional INSERT/UPDATE/DELETE scripts;
the reference executor applies them to plain Python rows.  The engine
must agree after every commit, after replaying the WAL from scratch,
and — the robustness claim — after a crash injected at any site of the
commit path, where the recovered state must equal the reference's
*pre*- or *post*-script tables depending on whether the crash struck
before or after the commit record became durable.
"""

import pytest

from repro.faults import CrashError, FaultInjector
from repro.sql.database import Database
from repro.sql.parser import parse_sql
from repro.wal import WriteAheadLog
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor

SEEDS = list(range(1, 13))
SCRIPTS_PER_SEED = 4

# (site, which reference state a crash there must recover to)
CRASH_SITES = [("commit.validate", "pre"), ("wal.append", "pre"),
               ("commit.publish", "post"), ("commit.apply", "post")]


def build_engine(generator):
    db = Database(wal=WriteAheadLog())
    for statement in generator.setup_statements():
        db.execute(statement)
    return db


def copy_tables(tables):
    return {name: (list(names), [tuple(r) for r in rows])
            for name, (names, rows) in tables.items()}


def assert_engine_state(db, tables, context):
    for name, (names, rows) in tables.items():
        got = db.query("SELECT {0} FROM {1}".format(", ".join(names),
                                                    name))
        assert_same_rows(got, rows,
                         context="{0} table={1}".format(context, name))


@pytest.mark.parametrize("seed", SEEDS)
def test_transactional_dml_matches_reference(seed):
    """Commit after commit, the engine's tables equal the reference's;
    a full WAL replay at the end reproduces the same state."""
    generator = QueryGenerator(seed)
    db = build_engine(generator)
    reference = ReferenceExecutor(copy_tables(
        generator.reference_tables()))
    for i in range(SCRIPTS_PER_SEED):
        script = generator.gen_dml_script(case_id=i)
        with db.begin() as txn:
            for sql in script:
                txn.execute(sql)
        for sql in script:
            reference.apply_dml(parse_sql(sql))
        assert_engine_state(
            db, reference.tables,
            "seed={0} script#{1} {2!r}".format(seed, i, script))
    db.recover()
    assert_engine_state(db, reference.tables,
                        "seed={0} after replay".format(seed))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("site,expect", CRASH_SITES)
def test_crashed_commit_recovers_to_reference_state(seed, site, expect):
    generator = QueryGenerator(seed)
    db = build_engine(generator)
    pre = copy_tables(generator.reference_tables())
    post_ref = ReferenceExecutor(copy_tables(
        generator.reference_tables()))
    script = generator.gen_dml_script(case_id=0)
    for sql in script:
        post_ref.apply_dml(parse_sql(sql))

    inj = FaultInjector()
    db.faults = inj
    db.wal.faults = inj
    inj.crash_at(site)
    txn = db.begin()
    for sql in script:
        txn.execute(sql)
    with pytest.raises(CrashError):
        txn.commit()
    assert txn.closed and txn.outcome == "crashed"
    db.recover()
    expected = pre if expect == "pre" else post_ref.tables
    assert_engine_state(
        db, expected,
        "seed={0} crash at {1} -> {2} {3!r}".format(seed, site, expect,
                                                    script))


def test_scripts_cover_all_dml_kinds():
    """Meta: across seeds the generator emits every DML verb, so the
    suite above actually exercises inserts, updates and deletes."""
    verbs = set()
    for seed in SEEDS:
        generator = QueryGenerator(seed)
        for i in range(SCRIPTS_PER_SEED):
            for sql in generator.gen_dml_script(case_id=i):
                verbs.add(sql.split(None, 1)[0])
    assert verbs == {"INSERT", "UPDATE", "DELETE"}


def test_scripts_agree_under_autocommit_and_transaction():
    """The same script applied statement-by-statement (autocommit) and
    as one transaction yields the same final state: the transactional
    buffer is invisible in the absence of concurrency."""
    generator_a = QueryGenerator(42)
    generator_b = QueryGenerator(42)
    auto = build_engine(generator_a)
    txn_db = build_engine(generator_b)
    script = generator_a.gen_dml_script()
    assert script == generator_b.gen_dml_script()
    for sql in script:
        auto.execute(sql)
    with txn_db.begin() as txn:
        for sql in script:
            txn.execute(sql)
    for name, (names, _) in generator_a.reference_tables().items():
        select = "SELECT {0} FROM {1}".format(", ".join(names), name)
        assert_same_rows(txn_db.query(select), auto.query(select),
                         context=select)
