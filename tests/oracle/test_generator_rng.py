"""Regression: per-case RNG derivation in the seeded generators.

The generators used to share one ``random.Random(seed)`` stream across
every generated case, so reproducing query #5 of a failing seed meant
replaying queries #0-#4 first.  Cases now derive their own
``random.Random(seed + case_id)``, which must make any case
reproducible *standalone*, in any order, without touching the shared
stream that fixes the schema.
"""

from tests.oracle.generator import QueryGenerator


def test_case_reproduces_standalone():
    """Case k generated directly equals case k generated after cases
    0..k-1 — no hidden stream coupling."""
    sequential = QueryGenerator(12)
    in_order = [sequential.gen_query(case_id=i) for i in range(8)]
    for k in (0, 3, 7):
        fresh = QueryGenerator(12)
        assert fresh.gen_query(case_id=k) == in_order[k]


def test_case_order_is_irrelevant():
    forward = QueryGenerator(5)
    backward = QueryGenerator(5)
    a = [forward.gen_dml_script(case_id=i) for i in range(6)]
    b = [backward.gen_dml_script(case_id=i) for i in reversed(range(6))]
    assert a == list(reversed(b))


def test_cases_do_not_disturb_the_shared_stream():
    """Drawing cases must not advance the schema-owning stream: two
    same-seed generators agree on shared-stream output regardless of
    how many per-case draws happened in between."""
    plain = QueryGenerator(33)
    busy = QueryGenerator(33)
    for i in range(5):
        busy.gen_query(case_id=i)
        busy.gen_dml_script(case_id=100 + i)
        busy.gen_predicate(busy.tables[0], case_id=200 + i)
    assert plain.gen_query() == busy.gen_query()


def test_distinct_cases_differ():
    """Sanity: the derived streams are actually distinct (no silently
    degenerate derivation)."""
    generator = QueryGenerator(3)
    queries = {generator.gen_query(case_id=i) for i in range(12)}
    assert len(queries) > 6


def test_predicates_reproduce_standalone():
    generator = QueryGenerator(9)
    table = generator.tables[0]
    wanted = [generator.gen_predicate(table, case_id=i)
              for i in range(5)]
    fresh = QueryGenerator(9)
    assert fresh.gen_predicate(fresh.tables[0], case_id=3) == wanted[3]
