"""Regression: per-case RNG derivation in the seeded generators.

The generators used to share one ``random.Random(seed)`` stream across
every generated case, so reproducing query #5 of a failing seed meant
replaying queries #0-#4 first.  Cases now derive their own
``random.Random(seed + case_id)``, which must make any case
reproducible *standalone*, in any order, without touching the shared
stream that fixes the schema.
"""

import pytest

from tests.oracle.generator import DEFAULT_DML_WEIGHTS, QueryGenerator


def test_case_reproduces_standalone():
    """Case k generated directly equals case k generated after cases
    0..k-1 — no hidden stream coupling."""
    sequential = QueryGenerator(12)
    in_order = [sequential.gen_query(case_id=i) for i in range(8)]
    for k in (0, 3, 7):
        fresh = QueryGenerator(12)
        assert fresh.gen_query(case_id=k) == in_order[k]


def test_case_order_is_irrelevant():
    forward = QueryGenerator(5)
    backward = QueryGenerator(5)
    a = [forward.gen_dml_script(case_id=i) for i in range(6)]
    b = [backward.gen_dml_script(case_id=i) for i in reversed(range(6))]
    assert a == list(reversed(b))


def test_cases_do_not_disturb_the_shared_stream():
    """Drawing cases must not advance the schema-owning stream: two
    same-seed generators agree on shared-stream output regardless of
    how many per-case draws happened in between."""
    plain = QueryGenerator(33)
    busy = QueryGenerator(33)
    for i in range(5):
        busy.gen_query(case_id=i)
        busy.gen_dml_script(case_id=100 + i)
        busy.gen_predicate(busy.tables[0], case_id=200 + i)
    assert plain.gen_query() == busy.gen_query()


def test_distinct_cases_differ():
    """Sanity: the derived streams are actually distinct (no silently
    degenerate derivation)."""
    generator = QueryGenerator(3)
    queries = {generator.gen_query(case_id=i) for i in range(12)}
    assert len(queries) > 6


def test_predicates_reproduce_standalone():
    generator = QueryGenerator(9)
    table = generator.tables[0]
    wanted = [generator.gen_predicate(table, case_id=i)
              for i in range(5)]
    fresh = QueryGenerator(9)
    assert fresh.gen_predicate(fresh.tables[0], case_id=3) == wanted[3]


# -- DML weight knobs ----------------------------------------------------------


def test_default_weights_preserve_the_rng_stream():
    """``weights=None`` and an explicit copy of the defaults rebuild
    the exact historical draw population: every pinned case stays
    byte-identical.  This is the contract that lets the view oracle
    skew its mixes without invalidating the engine oracles' corpora."""
    for seed in (1, 7, 42):
        legacy = QueryGenerator(seed)
        explicit = QueryGenerator(seed)
        for case in range(4):
            assert legacy.gen_dml_script(case_id=case) == \
                explicit.gen_dml_script(
                    case_id=case, weights=dict(DEFAULT_DML_WEIGHTS))


def test_skewed_weights_shift_the_statement_mix():
    """A delete-heavy mix emits more deletes than the default across a
    pinned window, and the scripts stay well-formed (leading INSERT,
    deletes carry WHERE)."""
    def verbs(weights):
        generator = QueryGenerator(11)
        out = []
        for case in range(10):
            out.extend(sql.split(None, 1)[0] for sql in
                       generator.gen_dml_script(case_id=case,
                                                weights=weights))
        return out

    default = verbs(None)
    heavy = verbs({"insert": 1, "update": 1, "delete": 8})
    assert heavy.count("DELETE") > default.count("DELETE")
    generator = QueryGenerator(11)
    for case in range(4):
        script = generator.gen_dml_script(
            case_id=case, weights={"insert": 1, "delete": 8})
        assert script[0].startswith("INSERT")
        assert all("WHERE" in sql for sql in script
                   if sql.startswith("DELETE"))


def test_single_kind_weights_pin_the_verb():
    generator = QueryGenerator(2)
    script = generator.gen_dml_script(
        case_id=0, weights={"insert": 1, "update": 0, "delete": 0})
    assert all(sql.startswith("INSERT") for sql in script)


def test_invalid_weights_are_rejected():
    generator = QueryGenerator(2)
    with pytest.raises(ValueError):
        generator.gen_dml_script(case_id=0, weights={"upsert": 1})
    with pytest.raises(ValueError):
        generator.gen_dml_script(
            case_id=0,
            weights={"insert": 0, "update": 0, "delete": 0})
