"""Differential testing: serial == parallel == reference oracle.

Each seed builds a random schema, loads the same data into (a) the
engine under one of the three optimizer pipelines and (b) the
row-at-a-time reference executor, then checks a batch of random
queries three ways: serial engine, parallel engine (2 and 4 workers),
and the oracle.  All four answers must agree as multisets.

30 seeds x 7 queries = 210 generated queries, distributed over the
DEFAULT, CRACKING and RECYCLING pipelines.  A further 10 seeds run
every query under ``Database.profile`` (serial and parallel) and check
that profiling neither changes answers nor exports a span tree that
fails schema validation.
"""

import pytest

from repro.observability.schema import validate_span_tree
from repro.sql.database import Database
from repro.sql.parser import parse_sql
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor

SEEDS = list(range(1, 31))
QUERIES_PER_SEED = 7
PROFILE_SEEDS = list(range(101, 111))


def _make_database(seed):
    """Rotate the optimizer pipeline with the seed."""
    kind = seed % 3
    if kind == 0:
        return Database.with_cracking(), "cracking"
    if kind == 1:
        return Database.with_recycling(), "recycling"
    return Database(), "default"


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_agrees_with_oracle(seed):
    generator = QueryGenerator(seed)
    db, pipeline = _make_database(seed)
    for statement in generator.setup_statements():
        db.execute(statement)
    oracle = ReferenceExecutor(generator.reference_tables())

    for i in range(QUERIES_PER_SEED):
        sql = generator.gen_query(case_id=i)
        label = "seed={0} pipeline={1} query#{2}: {3}".format(
            seed, pipeline, i, sql)
        expected = oracle.execute(parse_sql(sql))
        serial = db.query(sql)
        assert_same_rows(serial, expected, context="serial " + label)
        for workers in (2, 4):
            parallel = db.query(sql, workers=workers)
            assert_same_rows(
                parallel, expected,
                context="workers={0} {1}".format(workers, label))


@pytest.mark.parametrize("seed", PROFILE_SEEDS)
def test_profiled_queries_agree_and_export_valid_traces(seed):
    """Profiling must be a pure observer: a profiled run returns the
    same multiset as the oracle, and its exported span tree validates
    against the schema (serial and parallel alike)."""
    generator = QueryGenerator(seed)
    db, pipeline = _make_database(seed)
    for statement in generator.setup_statements():
        db.execute(statement)
    oracle = ReferenceExecutor(generator.reference_tables())

    for i in range(QUERIES_PER_SEED):
        sql = generator.gen_query(case_id=i)
        label = "seed={0} pipeline={1} query#{2}: {3}".format(
            seed, pipeline, i, sql)
        expected = oracle.execute(parse_sql(sql))
        for workers in (1, 2):
            profile = db.profile(sql, workers=workers)
            assert_same_rows(
                profile.result.rows(), expected,
                context="profiled workers={0} {1}".format(workers, label))
            spans = validate_span_tree(profile.to_dict())
            assert spans >= 3, label
            assert profile.root.kind == "query", label
            assert profile.root.attrs["engine"] in ("serial",
                                                    "parallel"), label


def test_generated_queries_mostly_run_parallel():
    """The generator's dialect should exercise the parallel path, not
    the fallback; a drift here silently weakens the whole suite."""
    generator = QueryGenerator(99)
    db = Database()
    for statement in generator.setup_statements():
        db.execute(statement)
    for i in range(40):
        db.query(generator.gen_query(case_id=i), workers=2)
    total = db.parallel_runs + db.parallel_fallbacks
    assert total == 40
    assert db.parallel_runs >= 0.9 * total, (
        "too many parallel fallbacks: {0}/{1}".format(
            db.parallel_fallbacks, total))
