"""An obviously-correct row-at-a-time reference SQL executor.

This is the differential-testing oracle: it evaluates the same SELECT
ASTs the engine runs, but with the dumbest possible strategy — nested
loops, per-row Python expression evaluation, dict-based grouping —
over plain Python rows.  No BATs, no vectors, no optimizer, nothing
shared with the engine under test, so agreement is meaningful.

Semantics mirror the engine's documented behaviour:

* ``sum``/``min``/``max``/``avg`` of zero rows are None, ``count`` is 0
* ``sum`` of integers stays an int, ``avg`` is always a float
* ``/`` is true division, comparisons/arithmetic are plain Python
* ORDER BY is a stable sort; DISTINCT keeps first occurrences
"""

from repro.sql.ast import (
    BinOp, Column, Delete, FuncCall, Insert, IsNull, Literal, Star,
    UnaryOp, Update, contains_aggregate,
)


class ReferenceError(Exception):
    """The reference executor does not model this query shape."""


class ReferenceExecutor:
    """Row-at-a-time evaluator over plain Python tables.

    ``tables`` maps table name -> (column names, list of row tuples).
    """

    def __init__(self, tables):
        self.tables = dict(tables)

    # -- driver --------------------------------------------------------------

    def execute(self, select):
        """All result rows of ``select``, as a list of tuples."""
        rows = self._from_rows(select)
        if select.where is not None:
            rows = [r for r in rows if _truthy(self._eval(select.where, r))]
        if select.group_by or any(contains_aggregate(i.expr)
                                  for i in select.items):
            out = self._grouped(select, rows)
        else:
            out = [tuple(self._eval(item.expr, r) for item in select.items)
                   for r in rows]
            if select.order_by:
                out = self._ordered(select, rows)
        if select.distinct:
            seen = set()
            unique = []
            for row in out:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            out = unique
        if select.limit is not None:
            out = out[:select.limit]
        return out

    # -- DML (recovery differential testing) ---------------------------------

    def apply_dml(self, statement):
        """Mutate the reference tables with an INSERT/UPDATE/DELETE AST;
        returns the affected row count.

        The engine implements UPDATE as delete-plus-append over delta
        BATs; the reference updates rows in place.  The two agree as
        multisets, which is all :func:`tests.helpers.assert_same_rows`
        compares.
        """
        if isinstance(statement, Insert):
            return self._apply_insert(statement)
        if isinstance(statement, Delete):
            return self._apply_delete(statement)
        if isinstance(statement, Update):
            return self._apply_update(statement)
        raise ReferenceError(
            "not a DML statement: {0!r}".format(statement))

    def _table_for_dml(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise ReferenceError("unknown table {0!r}".format(name))

    def _row_env(self, table_name, names, row):
        env = {}
        for name, value in zip(names, row):
            env["{0}.{1}".format(table_name, name)] = value
            env[name] = value
        return env

    def _matches(self, statement, names, row):
        if statement.where is None:
            return True
        env = self._row_env(statement.table, names, row)
        return _truthy(self._eval(statement.where, env))

    def _apply_insert(self, statement):
        names, rows = self._table_for_dml(statement.table)
        order = statement.columns or names
        if sorted(order) != sorted(names):
            raise ReferenceError(
                "INSERT must provide every column of {0!r}".format(
                    statement.table))
        reorder = [order.index(c) for c in names]
        for row in statement.rows:
            rows.append(tuple(row[i] for i in reorder))
        return len(statement.rows)

    def _apply_delete(self, statement):
        names, rows = self._table_for_dml(statement.table)
        kept = [r for r in rows if not self._matches(statement, names, r)]
        deleted = len(rows) - len(kept)
        rows[:] = kept
        return deleted

    def _apply_update(self, statement):
        names, rows = self._table_for_dml(statement.table)
        assigned = dict(statement.assignments)
        unknown = set(assigned) - set(names)
        if unknown:
            raise ReferenceError("UPDATE of unknown column(s) "
                                 "{0}".format(sorted(unknown)))
        updated = 0
        for i, row in enumerate(rows):
            if not self._matches(statement, names, row):
                continue
            env = self._row_env(statement.table, names, row)
            rows[i] = tuple(self._eval(assigned[c], env)
                            if c in assigned else v
                            for c, v in zip(names, row))
            updated += 1
        return updated

    # -- FROM / JOIN ---------------------------------------------------------

    def _from_rows(self, select):
        """Environment dicts for every surviving FROM/JOIN row combo."""
        if select.table is None:
            return [{}]
        rows = self._bind(select.table)
        for join in select.joins:
            right = self._bind(join.table)
            joined = []
            for left_env in rows:
                for right_env in right:
                    env = dict(left_env)
                    env.update(right_env)
                    if _truthy(self._eval(join.condition, env)):
                        joined.append(env)
            rows = joined
        return rows

    def _bind(self, ref):
        try:
            names, data = self.tables[ref.name]
        except KeyError:
            raise ReferenceError("unknown table {0!r}".format(ref.name))
        alias = ref.binding
        envs = []
        for row in data:
            env = {}
            for name, value in zip(names, row):
                env["{0}.{1}".format(alias, name)] = value
                # Unqualified shorthand; generator keeps names unique.
                env[name] = value
            envs.append(env)
        return envs

    # -- grouping ------------------------------------------------------------

    def _grouped(self, select, rows):
        if select.group_by:
            keys = select.group_by
            groups = {}
            for row in rows:
                key = tuple(self._eval(k, row) for k in keys)
                groups.setdefault(key, []).append(row)
            group_list = list(groups.values())
        else:
            group_list = [rows]  # scalar aggregate: one group, even empty
        out = []
        ordered = []
        for group in group_list:
            sample = group[0] if group else {}
            if select.having is not None:
                if not _truthy(self._agg_eval(select.having, group, sample)):
                    continue
            out.append(tuple(self._agg_eval(i.expr, group, sample)
                             for i in select.items))
            ordered.append((group, sample))
        if select.order_by:
            decorated = list(zip(out, ordered))
            for item in reversed(select.order_by):
                decorated.sort(
                    key=lambda pair: _sort_key(
                        self._agg_eval(item.expr, pair[1][0], pair[1][1])),
                    reverse=not item.ascending)
            out = [row for row, _ in decorated]
        return out

    def _agg_eval(self, expr, group, sample):
        """Evaluate an expression in aggregate context."""
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return self._aggregate(expr, group)
        if isinstance(expr, BinOp):
            left = self._agg_eval(expr.left, group, sample)
            right = self._agg_eval(expr.right, group, sample)
            return _binop(expr.op, left, right)
        if isinstance(expr, UnaryOp):
            value = self._agg_eval(expr.operand, group, sample)
            return _unary(expr.op, value)
        if isinstance(expr, (Column, Literal)):
            return self._eval(expr, sample)
        raise ReferenceError("unsupported aggregate item "
                             "{0!r}".format(expr))

    def _aggregate(self, call, group):
        name = call.name
        if name == "count":
            if call.args and not isinstance(call.args[0], Star):
                values = [self._eval(call.args[0], r) for r in group]
                values = [v for v in values if v is not None]
                if call.distinct:
                    return len(set(values))
                return len(values)
            return len(group)
        if len(call.args) != 1:
            raise ReferenceError("aggregate arity")
        values = [self._eval(call.args[0], r) for r in group]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(set(values))
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "avg":
            return sum(values) / len(values)
        raise ReferenceError("unknown aggregate {0!r}".format(name))

    # -- scalar expressions --------------------------------------------------

    def _eval(self, expr, env):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Column):
            key = "{0}.{1}".format(expr.table, expr.name) if expr.table \
                else expr.name
            try:
                return env[key]
            except KeyError:
                raise ReferenceError("unknown column {0!r}".format(key))
        if isinstance(expr, BinOp):
            if expr.op == "and":
                return _truthy(self._eval(expr.left, env)) and \
                    _truthy(self._eval(expr.right, env))
            if expr.op == "or":
                return _truthy(self._eval(expr.left, env)) or \
                    _truthy(self._eval(expr.right, env))
            return _binop(expr.op, self._eval(expr.left, env),
                          self._eval(expr.right, env))
        if isinstance(expr, UnaryOp):
            return _unary(expr.op, self._eval(expr.operand, env))
        if isinstance(expr, IsNull):
            return self._eval(expr.operand, env) is None
        raise ReferenceError("unsupported expression {0!r}".format(expr))

    def _ordered(self, select, rows):
        decorated = [(tuple(self._eval(i.expr, r) for i in select.items), r)
                     for r in rows]
        for item in reversed(select.order_by):
            decorated.sort(key=lambda pair: _sort_key(
                self._eval(item.expr, pair[1])),
                reverse=not item.ascending)
        return [row for row, _ in decorated]


def _truthy(value):
    return bool(value) if value is not None else False


def _binop(op, left, right):
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ReferenceError("unknown operator {0!r}".format(op))


def _unary(op, value):
    if value is None:
        return None
    if op == "-":
        return -value
    if op == "not":
        return not value
    raise ReferenceError("unknown unary {0!r}".format(op))


def _sort_key(value):
    """Total order with None first, mirroring the engine's sort."""
    return (value is not None, value)
