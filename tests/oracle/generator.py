"""Seeded random schema/data/query generator for differential testing.

The schema and data are drawn from ``random.Random(seed)``; each
generated case (query, DML script, predicate) draws from its own
``random.Random(seed + case_id)`` when the caller passes ``case_id``,
so a failing case reproduces *standalone* — you can regenerate query
#5 of seed 12 without replaying queries #0-#4 first.  Omitting
``case_id`` keeps the legacy single-stream behaviour.

The generated space is deliberately constrained to stay
*discriminating without being flaky*:

* BIGINT columns with small values — no int32 overflow divergence
  between numpy and Python arithmetic.
* DOUBLE values are multiples of 0.25 (dyadic rationals): sums are
  exact in float64 and therefore independent of summation order, so
  parallel partial aggregation cannot drift from serial.
* No NULLs (engines differ legitimately on nil propagation corners),
  no division (avoids 0-divisor and int/float coercion corners), no
  LIMIT without ORDER BY (any row subset would be "correct").
* Aggregates appear as bare calls — the engine's serial path chokes on
  ``sum(x) + 1`` over an empty input, which is a known wart, not a
  parallelism bug.
* Column names are globally unique so unqualified references are never
  ambiguous; join queries qualify everything anyway.
"""

import contextlib
import random

TYPES = ("BIGINT", "DOUBLE", "VARCHAR(8)")
STRING_POOL = ["v{0}".format(i) for i in range(8)]

# The historical DML statement mix (insert, update, update, delete):
# changing these defaults would shift the rng.choice stream and break
# every pinned case, so callers wanting a different mix pass
# ``gen_dml_script(weights=...)`` instead.
DEFAULT_DML_WEIGHTS = {"insert": 1, "update": 2, "delete": 1}


class TableSpec:
    def __init__(self, name, columns, rows):
        self.name = name
        self.columns = columns  # [(name, sql_type)]
        self.rows = rows        # [tuple of python values]

    @property
    def column_names(self):
        return [name for name, _ in self.columns]

    def columns_of_type(self, *prefixes):
        return [name for name, sql_type in self.columns
                if sql_type.startswith(prefixes)]

    def create_sql(self, partition_key=None):
        cols = ", ".join("{0} {1}".format(n, t) for n, t in self.columns)
        suffix = "" if partition_key is None \
            else " PARTITION BY ({0})".format(partition_key)
        return "CREATE TABLE {0} ({1}){2}".format(self.name, cols, suffix)

    def insert_sql(self):
        rows = ", ".join(
            "({0})".format(", ".join(_sql_literal(v) for v in row))
            for row in self.rows)
        return "INSERT INTO {0} VALUES {1}".format(self.name, rows)


def _sql_literal(value):
    if isinstance(value, str):
        return "'{0}'".format(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


class QueryGenerator:
    """Generates one schema and a stream of queries against it."""

    def __init__(self, seed):
        self.seed = seed
        self.rng = random.Random(seed)
        self._name_counter = 0
        self.tables = self._gen_schema()

    @contextlib.contextmanager
    def _case(self, case_id):
        """Draw the enclosed generation from ``Random(seed + case_id)``
        so the case reproduces standalone; ``None`` keeps the shared
        stream."""
        if case_id is None:
            yield
            return
        saved = self.rng
        self.rng = random.Random(self.seed + case_id)
        try:
            yield
        finally:
            self.rng = saved

    # -- schema and data -----------------------------------------------------

    def _fresh(self, prefix):
        self._name_counter += 1
        return "{0}{1}".format(prefix, self._name_counter)

    def _gen_schema(self):
        tables = []
        for _ in range(self.rng.randint(2, 3)):
            name = self._fresh("tab")
            # First column is always a small-domain BIGINT join key.
            columns = [(self._fresh("k"), "BIGINT")]
            for _ in range(self.rng.randint(2, 4)):
                columns.append((self._fresh("c"), self.rng.choice(TYPES)))
            n_rows = self.rng.randint(10, 80)
            rows = [tuple(self._gen_value(t, key=(i == 0))
                          for i, (_, t) in enumerate(columns))
                    for _ in range(n_rows)]
            tables.append(TableSpec(name, columns, rows))
        return tables

    def _gen_value(self, sql_type, key=False):
        if sql_type == "BIGINT":
            if key:
                return self.rng.randint(0, 12)  # dense: joins produce hits
            return self.rng.randint(-50, 50)
        if sql_type == "DOUBLE":
            return self.rng.randint(-100, 100) * 0.25
        return self.rng.choice(STRING_POOL)

    def setup_statements(self):
        out = []
        for table in self.tables:
            out.append(table.create_sql())
            if table.rows:
                out.append(table.insert_sql())
        return out

    def reference_tables(self):
        return {t.name: (t.column_names, t.rows) for t in self.tables}

    # -- transactional DML scripts -------------------------------------------

    def gen_dml_script(self, case_id=None, weights=None):
        """A short transactional script of INSERT/UPDATE/DELETE
        statements.

        The first statement is always an INSERT so the script's commit
        record is never empty (a crash-sweep run relies on the
        ``wal.append`` site being hit).  Deletes always carry a WHERE
        clause so a script cannot wipe a table and starve later ones.

        ``weights`` maps ``insert``/``update``/``delete`` to integer
        draw weights, skewing the statement mix (e.g. retraction-heavy
        histories for view-maintenance oracles).  The default weights
        rebuild exactly the historical draw population, so the RNG
        stream — and every previously pinned case — is unchanged.
        """
        with self._case(case_id):
            return self._gen_dml_script(weights)

    def _gen_dml_script(self, weights=None):
        merged = dict(DEFAULT_DML_WEIGHTS)
        if weights:
            unknown = set(weights) - set(merged)
            if unknown:
                raise ValueError(
                    "unknown DML kinds {0}".format(sorted(unknown)))
            merged.update(weights)
        population = [kind for kind in ("insert", "update", "delete")
                      for _ in range(merged[kind])]
        if not population:
            raise ValueError("DML weights sum to zero")
        script = [self._gen_insert(self._pick_table())]
        for _ in range(self.rng.randint(1, 3)):
            kind = self.rng.choice(population)
            table = self._pick_table()
            if kind == "insert":
                script.append(self._gen_insert(table))
            elif kind == "update":
                script.append(self._gen_update(table))
            else:
                script.append(self._gen_delete(table))
        return script

    def _gen_insert(self, table):
        rows = [tuple(self._gen_value(t, key=(i == 0))
                      for i, (_, t) in enumerate(table.columns))
                for _ in range(self.rng.randint(1, 3))]
        values = ", ".join(
            "({0})".format(", ".join(_sql_literal(v) for v in row))
            for row in rows)
        return "INSERT INTO {0} VALUES {1}".format(table.name, values)

    def _gen_update(self, table):
        numeric = table.columns_of_type("BIGINT", "DOUBLE")
        strings = table.columns_of_type("VARCHAR")
        if numeric and (not strings or self.rng.random() < 0.7):
            column = self.rng.choice(numeric)
            if self.rng.random() < 0.5:
                # Arithmetic on dyadic rationals stays exact.
                assignment = "{0} = {0} + {1}".format(
                    column, self.rng.randint(1, 5))
            else:
                value = self._gen_value(dict(table.columns)[column])
                assignment = "{0} = {1}".format(column,
                                                _sql_literal(value))
        else:
            assignment = "{0} = '{1}'".format(
                self.rng.choice(strings), self.rng.choice(STRING_POOL))
        return "UPDATE {0} SET {1}{2}".format(
            table.name, assignment, self._where_clause(table))

    def _gen_delete(self, table):
        where = self._where_clause(table)
        if not where:
            where = " WHERE " + self._predicate(table)
        return "DELETE FROM {0}{1}".format(table.name, where)

    # -- queries -------------------------------------------------------------

    def gen_query(self, case_id=None):
        with self._case(case_id):
            shape = self.rng.choice(
                ["project", "project", "scalar_agg", "grouped",
                 "grouped", "join_project", "join_agg", "distinct"])
            return getattr(self, "_gen_" + shape)()

    def gen_predicate(self, table, case_id=None, qualify=None):
        """A standalone predicate (the TLP harness's per-case entry)."""
        with self._case(case_id):
            return self._predicate(table, qualify)

    def _pick_table(self):
        return self.rng.choice(self.tables)

    def _where_clause(self, table, qualify=None):
        if self.rng.random() < 0.25:
            return ""
        preds = [self._predicate(table, qualify)]
        if self.rng.random() < 0.4:
            preds.append(self._predicate(table, qualify))
        glue = self.rng.choice([" AND ", " OR "])
        return " WHERE " + glue.join(preds)

    def _predicate(self, table, qualify=None):
        numeric = table.columns_of_type("BIGINT", "DOUBLE")
        strings = table.columns_of_type("VARCHAR")
        if strings and (not numeric or self.rng.random() < 0.3):
            column = self.rng.choice(strings)
            op = self.rng.choice(["=", "<>"])
            value = "'{0}'".format(self.rng.choice(STRING_POOL))
        else:
            column = self.rng.choice(numeric)
            op = self.rng.choice(["<", "<=", ">", ">=", "=", "<>"])
            value = _sql_literal(self._gen_value(
                dict(table.columns)[column]))
        if qualify:
            column = "{0}.{1}".format(qualify[column], column)
        return "{0} {1} {2}".format(column, op, value)

    def _projection_items(self, table, qualify=None):
        def q(name):
            return "{0}.{1}".format(qualify[name], name) if qualify else name

        items = []
        for _ in range(self.rng.randint(1, 3)):
            numeric = table.columns_of_type("BIGINT", "DOUBLE")
            if numeric and self.rng.random() < 0.4:
                a = q(self.rng.choice(numeric))
                kind = self.rng.random()
                if kind < 0.4 and len(numeric) > 1:
                    b = q(self.rng.choice(numeric))
                    items.append("{0} {1} {2}".format(
                        a, self.rng.choice(["+", "-"]), b))
                elif kind < 0.7:
                    items.append("{0} * {1}".format(
                        a, self.rng.randint(1, 4)))
                else:
                    items.append("{0} + {1}".format(
                        a, self.rng.randint(-5, 5)))
            else:
                items.append(q(self.rng.choice(table.column_names)))
        return ", ".join(items)

    def _maybe_order_by(self, table, qualify=None):
        if self.rng.random() < 0.7:
            return ""
        column = self.rng.choice(table.column_names)
        if qualify:
            column = "{0}.{1}".format(qualify[column], column)
        return " ORDER BY {0}{1}".format(
            column, self.rng.choice(["", " ASC", " DESC"]))

    def _gen_project(self):
        table = self._pick_table()
        return "SELECT {0} FROM {1}{2}{3}".format(
            self._projection_items(table), table.name,
            self._where_clause(table), self._maybe_order_by(table))

    def _gen_distinct(self):
        table = self._pick_table()
        columns = self.rng.sample(
            table.column_names,
            self.rng.randint(1, min(2, len(table.column_names))))
        return "SELECT DISTINCT {0} FROM {1}{2}".format(
            ", ".join(columns), table.name, self._where_clause(table))

    def _agg_calls(self, table, qualify=None):
        numeric = table.columns_of_type("BIGINT", "DOUBLE")
        calls = ["count(*)"]
        for _ in range(self.rng.randint(1, 3)):
            if not numeric:
                break
            func = self.rng.choice(["sum", "min", "max", "avg"])
            column = self.rng.choice(numeric)
            if qualify:
                column = "{0}.{1}".format(qualify[column], column)
            calls.append("{0}({1})".format(func, column))
        return ", ".join(calls)

    def _gen_scalar_agg(self):
        table = self._pick_table()
        return "SELECT {0} FROM {1}{2}".format(
            self._agg_calls(table), table.name, self._where_clause(table))

    def _gen_grouped(self):
        table = self._pick_table()
        group = self.rng.choice(table.column_names)
        having = ""
        if self.rng.random() < 0.3:
            having = " HAVING count(*) >= {0}".format(self.rng.randint(1, 3))
        return "SELECT {0}, {1} FROM {2}{3} GROUP BY {0}{4}".format(
            group, self._agg_calls(table), table.name,
            self._where_clause(table), having)

    def _join_pair(self):
        left, right = self.rng.sample(self.tables, 2)
        qualify = {}
        for name in left.column_names:
            qualify[name] = left.name
        for name in right.column_names:
            qualify[name] = right.name
        merged = TableSpec("merged", left.columns + right.columns, [])
        on = "{0}.{1} = {2}.{3}".format(
            left.name, left.column_names[0],
            right.name, right.column_names[0])
        from_sql = "{0} JOIN {1} ON {2}".format(left.name, right.name, on)
        return merged, qualify, from_sql

    def _gen_join_project(self):
        merged, qualify, from_sql = self._join_pair()
        return "SELECT {0} FROM {1}{2}".format(
            self._projection_items(merged, qualify), from_sql,
            self._where_clause(merged, qualify))

    def _gen_join_agg(self):
        merged, qualify, from_sql = self._join_pair()
        if self.rng.random() < 0.5:
            return "SELECT {0} FROM {1}{2}".format(
                self._agg_calls(merged, qualify), from_sql,
                self._where_clause(merged, qualify))
        group = self.rng.choice(merged.column_names)
        qualified = "{0}.{1}".format(qualify[group], group)
        return "SELECT {0}, {1} FROM {2}{3} GROUP BY {0}".format(
            qualified, self._agg_calls(merged, qualify), from_sql,
            self._where_clause(merged, qualify))
