"""Differential testing of the sharded engine against single-node.

The same generated corpus the single-node differential suite replays
(seeded schemas + random queries) is loaded into a ShardedDatabase at
1, 2 and 4 shards — every table partitioned by its first column, the
join key, so generated joins stay co-partitioned — and each query's
answer is compared to the single-node engine as a multiset.  One shard
must also match *positionally* for ordered output, since the degraded
coordinator passes statements through untouched.
"""

import pytest

from repro.sharding import ShardedDatabase
from repro.sql.database import Database
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator

SEEDS = list(range(1, 16))
QUERIES_PER_SEED = 7
SHARD_COUNTS = (1, 2, 4)


def _load_engines(generator):
    single = Database()
    sharded = [ShardedDatabase(n_shards=n) for n in SHARD_COUNTS]
    for table in generator.tables:
        single.execute(table.create_sql())
        for db in sharded:
            db.execute(table.create_sql(
                partition_key=table.column_names[0]))
        if table.rows:
            insert = table.insert_sql()
            single.execute(insert)
            for db in sharded:
                db.execute(insert)
    return single, sharded


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_agrees_with_single_node(seed):
    generator = QueryGenerator(seed)
    single, sharded = _load_engines(generator)
    for i in range(QUERIES_PER_SEED):
        sql = generator.gen_query(case_id=i)
        expected = single.query(sql)
        for db in sharded:
            assert_same_rows(
                db.query(sql), expected,
                context="seed={0} shards={1} query#{2}: {3}".format(
                    seed, db.n_shards, i, sql))


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_scatter_plans_actually_fire(seed):
    """Guard against the corpus silently degrading to pass-through:
    at >1 shard a healthy fraction of queries must scatter or gather,
    not route to a single shard."""
    generator = QueryGenerator(seed)
    _, sharded = _load_engines(generator)
    db = sharded[1]  # 2 shards
    for i in range(20):
        db.query(generator.gen_query(case_id=i))
    fanned = db.stats.scatter + db.stats.gather
    assert fanned >= 10, db.stats
