"""Differential testing of the plan-fragment compiler (repro.compile).

Every generated query runs three ways against the same data —
interpreter, compiled (``compile=True``), and compiled+parallel — and
all answers must agree with the row-at-a-time reference oracle as
multisets.  The band rotates optimizer pipelines with the seed like the
main differential band, so compiled kernels are exercised on cracked
plans (``sql.crackedselect``) and under the recycler too.

An engagement guard asserts the compiler actually compiled a healthy
share of the band: a regression that silently rejects every plan would
otherwise pass by testing the interpreter against itself.

CI shifts the seed window with ``COMPILE_SEED``.
"""

import os

import pytest

from repro.sql.database import Database
from repro.sql.parser import parse_sql
from tests.helpers import assert_same_rows
from tests.oracle.generator import QueryGenerator
from tests.oracle.reference import ReferenceExecutor

SEED_BASE = int(os.environ.get("COMPILE_SEED", "0"))
SEEDS = list(range(SEED_BASE + 1, SEED_BASE + 31))
FAST_SEEDS = SEEDS[:8]
QUERIES_PER_SEED = 7


def _make_database(seed):
    kind = seed % 3
    if kind == 0:
        return Database.with_cracking(), "cracking"
    if kind == 1:
        return Database.with_recycling(), "recycling"
    return Database(), "default"


def _run_band(seed):
    generator = QueryGenerator(seed)
    db, pipeline = _make_database(seed)
    for statement in generator.setup_statements():
        db.execute(statement)
    oracle = ReferenceExecutor(generator.reference_tables())

    for i in range(QUERIES_PER_SEED):
        sql = generator.gen_query(case_id=i)
        label = "seed={0} pipeline={1} query#{2}: {3}".format(
            seed, pipeline, i, sql)
        expected = oracle.execute(parse_sql(sql))
        interpreted = db.query(sql)
        assert_same_rows(interpreted, expected,
                         context="interpreted " + label)
        compiled = db.query(sql, compile=True)
        assert_same_rows(compiled, expected, context="compiled " + label)
        parallel = db.query(sql, workers=4, compile=True)
        assert_same_rows(parallel, expected,
                         context="compiled+parallel " + label)
    return db


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_compiled_legs_agree_with_oracle(seed):
    _run_band(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS[len(FAST_SEEDS):])
def test_compiled_legs_agree_with_oracle_full(seed):
    _run_band(seed)


def test_compiler_engages_on_the_band():
    """The compiled leg must actually run compiled kernels — a plan
    compiler that rejects everything degenerates this whole band into
    interpreter-vs-interpreter."""
    total_runs = 0
    total_rejected = 0
    for seed in FAST_SEEDS:
        db = _run_band(seed)
        stats = db.plan_compiler.counters()
        total_runs += stats["compiled_runs"]
        total_rejected += stats["unsupported_plans"]
        assert stats["interpreted_fallbacks"] == 0, (
            "seed={0}: compiled execution started and then fell back "
            "{1} times — a kernel raised where the interpreter did "
            "not".format(seed, stats["interpreted_fallbacks"]))
    assert total_runs > 0, "no query on the band ever ran compiled"
    # The generator's query shapes are the compiler's target workload;
    # most of them must compile outright.
    assert total_runs >= 4 * max(total_rejected, 1), (
        "compiler rejected too much of the band: {0} compiled runs vs "
        "{1} rejected plans".format(total_runs, total_rejected))
