"""Tests for baskets, windows, and the DataCell engine."""

import numpy as np
import pytest

from repro.datacell import (
    Basket,
    ContinuousQuery,
    DataCellEngine,
    PredicateWindow,
    SlidingCountWindow,
    TumblingCountWindow,
)


class TestBasket:
    def test_append_and_drain(self):
        b = Basket(["ts", "v"], capacity=4)
        b.append((1, 10))
        b.append((2, 20))
        cols = b.drain()
        assert cols["v"].tolist() == [10, 20]
        assert len(b) == 0
        assert b.events_seen == 2

    def test_full_flag(self):
        b = Basket(["x"], capacity=2)
        assert not b.full
        b.append((1,))
        b.append((2,))
        assert b.full

    def test_arity_checked(self):
        b = Basket(["a", "b"], capacity=2)
        with pytest.raises(ValueError):
            b.append((1,))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Basket(["a"], capacity=0)


class TestWindows:
    def feed_all(self, window, columns, chunk=3):
        fired = []
        n = len(columns["v"])
        for start in range(0, n, chunk):
            part = {k: np.asarray(v[start:start + chunk])
                    for k, v in columns.items()}
            fired.extend(window.feed(part))
        return fired

    def test_tumbling(self):
        window = TumblingCountWindow(4)
        fired = self.feed_all(window, {"v": list(range(10))})
        assert [f["v"].tolist() for f in fired] == [[0, 1, 2, 3],
                                                    [4, 5, 6, 7]]

    def test_tumbling_independent_of_chunking(self):
        for chunk in (1, 2, 5, 10):
            window = TumblingCountWindow(4)
            fired = self.feed_all(window, {"v": list(range(10))},
                                  chunk=chunk)
            assert [f["v"].tolist() for f in fired] == [[0, 1, 2, 3],
                                                        [4, 5, 6, 7]]

    def test_sliding(self):
        window = SlidingCountWindow(width=4, slide=2)
        fired = self.feed_all(window, {"v": list(range(8))})
        assert [f["v"].tolist() for f in fired] == [
            [0, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7]]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TumblingCountWindow(0)
        with pytest.raises(ValueError):
            SlidingCountWindow(3, 0)

    def test_predicate_window(self):
        # Windows close at sentinel events (v == -1); members are
        # positive values.
        window = PredicateWindow(member=(">", "v", 0),
                                 close=("==", "v", -1))
        fired = self.feed_all(
            window, {"v": [5, 0, 3, -1, 7, -1, 2]}, chunk=2)
        assert [f["v"].tolist() for f in fired] == [[5, 3], [7]]


class TestContinuousQuery:
    def test_filter_aggregate_per_basket(self):
        q = ContinuousQuery("hot", predicate=(">", "temp", 30),
                            aggregate=("count", "temp"))
        q.process({"temp": np.asarray([10, 35, 40, 20])})
        q.process({"temp": np.asarray([50])})
        assert q.results == [2, 1]

    def test_no_match_emits_nothing(self):
        q = ContinuousQuery("hot", predicate=(">", "temp", 100),
                            aggregate=("count", "temp"))
        q.process({"temp": np.asarray([1, 2])})
        assert q.results == []

    def test_unknown_aggregate(self):
        with pytest.raises(KeyError):
            ContinuousQuery("x", aggregate=("median", "v"))

    def test_raw_event_emission(self):
        q = ContinuousQuery("passthrough", predicate=("<", "v", 3))
        q.process({"v": np.asarray([1, 5, 2])})
        assert q.results[0]["v"].tolist() == [1, 2]

    def test_windowed_aggregate(self):
        q = ContinuousQuery("avg4", window=TumblingCountWindow(4),
                            aggregate=("avg", "v"))
        q.process({"v": np.asarray([1, 2, 3, 4, 5])})
        q.process({"v": np.asarray([6, 7, 8])})
        assert q.results == [2.5, 6.5]


class TestEngine:
    def run_stream(self, basket_size, events):
        engine = DataCellEngine(["ts", "v"], basket_size=basket_size)
        engine.register(ContinuousQuery(
            "sums", predicate=(">", "v", 10),
            window=TumblingCountWindow(8), aggregate=("sum", "v")))
        engine.push_many(events)
        engine.flush()
        return engine.query("sums").results

    def test_results_independent_of_basket_size(self):
        """Basket (bulk) processing is an optimization, not a semantic
        change: any basket size yields identical windows."""
        rng = np.random.default_rng(0)
        events = [(i, int(rng.integers(0, 100))) for i in range(500)]
        reference = self.run_stream(1, events)
        for size in (2, 7, 64, 512):
            assert self.run_stream(size, events) == reference

    def test_activation_amortization(self):
        """Bigger baskets -> far fewer query activations for the same
        events (E11's mechanism)."""
        events = [(i, i % 50) for i in range(1024)]
        engine1 = DataCellEngine(["ts", "v"], basket_size=1)
        engine1.register(ContinuousQuery("c", aggregate=("count", "v")))
        engine1.push_many(events)
        engine_big = DataCellEngine(["ts", "v"], basket_size=256)
        engine_big.register(ContinuousQuery("c", aggregate=("count", "v")))
        engine_big.push_many(events)
        q1 = engine1.query("c")
        qb = engine_big.query("c")
        assert q1.activations == 1024
        assert qb.activations == 4
        assert sum(q1.results) == sum(qb.results) == 1024

    def test_unknown_query(self):
        engine = DataCellEngine(["v"])
        with pytest.raises(KeyError):
            engine.query("ghost")

    def test_flush_empty_is_noop(self):
        engine = DataCellEngine(["v"], basket_size=4)
        engine.register(ContinuousQuery("c", aggregate=("count", "v")))
        engine.flush()
        assert engine.query("c").results == []
