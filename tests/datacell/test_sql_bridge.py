"""Tests for SQL-driven continuous queries over baskets."""

import numpy as np
import pytest

from repro.datacell import SQLStreamEngine


def make_engine(basket_size=8):
    engine = SQLStreamEngine([("ts", "int"), ("sensor", "int"),
                              ("temp", "double")],
                             basket_size=basket_size)
    engine.register("alerts",
                    "SELECT ts, temp FROM stream WHERE temp > 30")
    engine.register("per_sensor",
                    "SELECT sensor, count(*) FROM stream "
                    "GROUP BY sensor ORDER BY sensor")
    return engine


EVENTS = [(i, i % 3, 20.0 + (i % 20)) for i in range(40)]


class TestSQLBridge:
    def test_alert_stream_matches_reference(self):
        engine = make_engine()
        engine.push_many(EVENTS)
        engine.flush()
        expected = [(ts, temp) for ts, _, temp in EVENTS if temp > 30]
        assert engine.stream("alerts") == expected

    def test_grouped_query_fires_per_basket(self):
        engine = make_engine(basket_size=9)  # 3 sensors x 3 events
        engine.push_many(EVENTS[:18])
        assert engine.stream("per_sensor") == [(0, 3), (1, 3), (2, 3)] * 2
        assert engine.baskets_processed == 2

    def test_results_independent_of_basket_size(self):
        outputs = []
        for size in (1, 4, 40):
            engine = make_engine(basket_size=size)
            engine.push_many(EVENTS)
            engine.flush()
            outputs.append(engine.stream("alerts"))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_duplicate_registration(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.register("alerts", "SELECT ts FROM stream")

    def test_unknown_stream(self):
        with pytest.raises(KeyError):
            make_engine().stream("ghost")

    def test_flush_on_empty_basket(self):
        engine = make_engine()
        engine.flush()
        assert engine.baskets_processed == 0

    def test_predicate_window_in_sql(self):
        """'General predicate based window processing': the window is
        whatever the WHERE clause says, per basket."""
        engine = SQLStreamEngine([("ts", "int"), ("v", "int")],
                                 basket_size=10)
        engine.register("band",
                        "SELECT sum(v) FROM stream "
                        "WHERE ts % 10 >= 2 AND ts % 10 < 5")
        engine.push_many([(i, i) for i in range(30)])
        sums = [row[0] for row in engine.stream("band")]
        assert sums == [2 + 3 + 4, 12 + 13 + 14, 22 + 23 + 24]
