"""Basket flushes under injected faults: replay vs. drop policies."""

import pytest

from repro.datacell import ContinuousQuery, DataCellEngine
from repro.faults import FaultInjector

SCHEMA = {"v": "float64"}


def feed(engine, n=100):
    for i in range(n):
        engine.push({"v": float(i)})
    engine.flush()


def counting_engine(**kwargs):
    engine = DataCellEngine(SCHEMA, basket_size=16, **kwargs)
    query = engine.register(ContinuousQuery("c", aggregate=("count", "v")))
    return engine, query


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        DataCellEngine(SCHEMA, failure_policy="panic")


def test_fault_free_counts_every_event():
    engine, query = counting_engine()
    feed(engine)
    assert sum(query.results) == 100
    assert engine.flushes_failed == 0


def test_replay_policy_loses_no_events():
    inj = FaultInjector().transient_at("datacell.flush", hits=(2, 4))
    engine, query = counting_engine(faults=inj, failure_policy="replay")
    feed(engine)
    engine.flush()  # drain whatever the last failure parked
    assert sum(query.results) == 100
    assert engine.flushes_failed == 2
    assert engine.events_replayed == 32
    assert engine.events_dropped == 0


def test_replayed_events_processed_before_new_ones():
    inj = FaultInjector().transient_at("datacell.flush", hits=(1,))
    engine, query = counting_engine(faults=inj)
    for i in range(16):
        engine.push({"v": float(i)})  # fills basket: flush fails, parks
    assert query.results == []
    assert engine.events_replayed == 16
    for i in range(16):
        engine.push({"v": 100.0 + i})  # next flush: replay then fresh
    assert query.results == [16, 16]
    assert engine.flushes_failed == 1


def test_drop_policy_sheds_exactly_the_failed_basket():
    inj = FaultInjector().transient_at("datacell.flush", hits=(2,))
    engine, query = counting_engine(faults=inj, failure_policy="drop")
    feed(engine)
    engine.flush()
    assert sum(query.results) == 100 - 16
    assert engine.events_dropped == 16
    assert engine.events_replayed == 0


def test_latency_spike_stalls_but_processes():
    inj = FaultInjector().delay_at("datacell.flush", hits=(1, 3), delay=5)
    engine, query = counting_engine(faults=inj)
    feed(engine)
    assert sum(query.results) == 100
    assert engine.stall_units == 10
    assert engine.flushes_failed == 0


def test_seeded_replay_is_lossless_and_reproducible():
    def run():
        inj = FaultInjector.seeded(
            3, {"datacell.flush": ("transient", 0.2)})
        engine, query = counting_engine(faults=inj)
        feed(engine, n=500)
        engine.flush()
        engine.flush()  # a second failure can re-park the tail
        return sum(query.results), engine.flushes_failed

    (total_a, failed_a), (total_b, failed_b) = run(), run()
    assert total_a == total_b and failed_a == failed_b
    assert failed_a > 0
    # Replay may still hold the tail if the very last flush failed too,
    # but nothing is ever dropped.
    assert total_a <= 500
    assert total_a >= 500 - 16 * 2
