"""Property: compiled(plan) ≡ interpreted(plan).

Hypothesis generates a table — including NULL-bearing columns and the
empty table — and a query from a closed template family covering every
fusible shape (filters, arithmetic projections, scalar and grouped
aggregates, string equality, IS NULL).  The same SQL runs through the
same database twice, interpreted and compiled, and the answers must be
identical multisets.  Kernels share one database so the cache, DML
version bumps and cracking layout changes are all in play.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.database import Database
from tests.helpers import normalize_row

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.one_of(st.none(),
                  st.integers(min_value=-100, max_value=100)),
        st.integers(min_value=0, max_value=4),
        st.one_of(st.none(), st.sampled_from(["aa", "bb", "cc"])),
    ),
    min_size=0, max_size=60)

TEMPLATES = [
    "SELECT k, v FROM t WHERE k > {c0} AND v < {c1}",
    "SELECT k + v FROM t WHERE k >= {c0}",
    "SELECT sum(v), count(*), min(v), max(v) FROM t WHERE k > {c0}",
    "SELECT avg(v) FROM t WHERE k < {c1} AND g = {g}",
    "SELECT g, sum(v), count(*) FROM t WHERE k > {c0} GROUP BY g",
    "SELECT g, min(v) FROM t GROUP BY g HAVING count(*) > 1",
    "SELECT k FROM t WHERE s = '{s}'",
    "SELECT s, count(*) FROM t WHERE k > {c0} GROUP BY s",
    "SELECT k FROM t WHERE v IS NULL",
    "SELECT sum(v) FROM t WHERE v IS NOT NULL AND k > {c0}",
    "SELECT DISTINCT g FROM t WHERE k < {c1}",
    "SELECT count(*) FROM t",
]

query_strategy = st.tuples(
    st.integers(min_value=0, max_value=len(TEMPLATES) - 1),
    st.integers(min_value=-60, max_value=60),
    st.integers(min_value=-60, max_value=60),
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["aa", "bb", "cc", "zz"]),
)


def _load(db, rows):
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER, "
               "s TEXT)")
    if rows:
        db.execute("INSERT INTO t VALUES " + ", ".join(
            "({0}, {1}, {2}, {3})".format(
                k, "NULL" if v is None else v, g,
                "NULL" if s is None else "'{0}'".format(s))
            for k, v, g, s in rows))


def _multiset(rows):
    return Counter(normalize_row(r) for r in rows)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, queries=st.lists(query_strategy,
                                            min_size=1, max_size=6))
def test_compiled_equals_interpreted(rows, queries):
    db = Database()
    _load(db, rows)
    for template_id, c0, c1, g, s in queries:
        sql = TEMPLATES[template_id].format(c0=c0, c1=c1, g=g, s=s)
        interpreted = db.query(sql)
        compiled = db.query(sql, compile=True)
        assert _multiset(compiled) == _multiset(interpreted), sql
    assert db.plan_compiler.stats["interpreted_fallbacks"] == 0


@settings(max_examples=25, deadline=None)
@given(rows=rows_strategy,
       query=query_strategy,
       pipeline=st.sampled_from(["default", "cracking", "recycling"]))
def test_compiled_equals_interpreted_across_pipelines(rows, query,
                                                      pipeline):
    factory = {"default": Database,
               "cracking": Database.with_cracking,
               "recycling": Database.with_recycling}[pipeline]
    db = factory()
    _load(db, rows)
    template_id, c0, c1, g, s = query
    sql = TEMPLATES[template_id].format(c0=c0, c1=c1, g=g, s=s)
    # Twice each way: the second compiled run hits the kernel cache,
    # and under cracking the layouts differ between runs.
    first = db.query(sql)
    for _ in range(2):
        assert _multiset(db.query(sql, compile=True)) == \
            _multiset(first), sql
    assert _multiset(db.query(sql)) == _multiset(first), sql


def test_empty_vectors_through_every_shape():
    """The empty table hits every aggregate's empty-input branch (None
    results, empty group sets) — pinned explicitly because Hypothesis
    shrinks here anyway and the branch is easy to break."""
    db = Database()
    _load(db, [])
    for template_id in range(len(TEMPLATES)):
        sql = TEMPLATES[template_id].format(c0=0, c1=0, g=0, s="aa")
        assert _multiset(db.query(sql, compile=True)) == \
            _multiset(db.query(sql)), sql
