"""Golden tests for generated kernel source.

Each case compiles one canonical query's optimized MAL plan and pins
the *entire generated module* — fragment signatures, variable ids,
parameter slots, inlined numpy calls — under
``tests/compile/golden/``.  Generated source is deterministic by
construction (dense shape ids name the variables, parameter slots are
walk-ordered), so any drift means codegen semantics changed.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/compile/test_golden.py \
        --update-golden
"""

from pathlib import Path

import pytest

from repro.sql.database import Database

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "scan_filter_project":
        "SELECT k, v FROM t WHERE k > 10 AND v < 50",
    "scalar_aggregates":
        "SELECT sum(v), count(*), min(v), max(v), avg(v) "
        "FROM t WHERE k > 10",
    "group_by_having":
        "SELECT g, sum(v) FROM t WHERE k > 2 GROUP BY g "
        "HAVING count(*) > 1",
    "string_filter":
        "SELECT k FROM t WHERE s = 'aa' AND k < 90",
    "arithmetic_projection":
        "SELECT k + v, k * 2 FROM t WHERE k % 3 = 0",
    "cracked_range":
        "SELECT sum(v) FROM t WHERE k > 20 AND k < 80",
}


def _database(case):
    db = Database.with_cracking() if case == "cracked_range" \
        else Database()
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER, "
               "s TEXT)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2}, '{3}')".format(i, (i * 37) % 100, i % 4,
                                        "ab"[i % 2] * 2)
        for i in range(100)))
    if case == "cracked_range":
        # Crack the column first so the optimizer emits crackedselect
        # and the golden pins the cracked kernel shape.
        db.query("SELECT v FROM t WHERE k > 20 AND k < 80")
    return db


def _generated_source(db, sql):
    from repro.sql.compiler import compile_select
    from repro.sql.parser import parse_sql
    program = db.pipeline.optimize(
        compile_select(db.catalog, parse_sql(sql))[0])
    plan, _ = db.plan_compiler.compile(program)
    assert plan is not None, "query failed to compile: {0}".format(sql)
    return plan.source


@pytest.mark.parametrize("case", sorted(CASES))
def test_kernel_source_matches_golden(case, request):
    sql = CASES[case]
    db = _database(case)
    actual = _generated_source(db, sql)
    path = GOLDEN_DIR / (case + ".py.txt")
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        return
    assert path.exists(), (
        "missing golden file {0}; run with --update-golden".format(path))
    expected = path.read_text()
    assert actual == expected, (
        "generated kernel for {0!r} drifted from {1}; if the change is "
        "intentional, rerun with --update-golden".format(sql, path.name))


def test_generated_source_is_deterministic():
    """Two independent databases compile byte-identical kernels for the
    same query — the property the cache key and goldens rely on."""
    for case, sql in sorted(CASES.items()):
        first = _generated_source(_database(case), sql)
        second = _generated_source(_database(case), sql)
        assert first == second, case


def test_constants_never_appear_in_source():
    """Literals reach kernels through P, never the source text: the
    no-poisoning guarantee, checked at the source level."""
    db = _database("scan_filter_project")
    source = _generated_source(
        db, "SELECT k FROM t WHERE k > 1234567 AND v < 7654321")
    assert "1234567" not in source
    assert "7654321" not in source
    assert "P[0]" in source and "P[1]" in source
