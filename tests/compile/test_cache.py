"""Kernel cache semantics: hits, misses, invalidation, fallback.

The cache contract: one kernel per plan shape; invalidation (never
silent reuse) on schema change and on cracking-layout change; negative
verdicts for unsupported shapes don't pollute the hit/miss counters;
everything the compiler can't run falls back to the interpreter with
identical answers.
"""

import pytest

from repro.compile import KernelCache, normalize
from repro.sql.database import Database
from repro.sql.parser import parse_sql
from repro.sql.compiler import compile_select


def _db(rows=50):
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2})".format(i, (i * 37) % 100, i % 3)
        for i in range(rows)))
    return db


# -- unit level --------------------------------------------------------------

def test_lookup_counts_hits_and_misses():
    cache = KernelCache()
    assert cache.lookup("k1", ()) is None
    cache.store("k1", (), "plan")
    assert cache.lookup("k1", ()) == "plan"
    assert (cache.hits, cache.misses, cache.invalidations) == (1, 1, 0)


def test_schema_bump_invalidates_and_evicts():
    cache = KernelCache()
    cache.store("k1", (), "plan")
    cache.bump_schema()
    assert cache.lookup("k1", ()) is None
    assert cache.invalidations == 1
    assert len(cache) == 0


def test_layout_token_mismatch_invalidates():
    cache = KernelCache()
    cache.store("k1", ("uncracked",), "plan")
    assert cache.lookup("k1", ("cracked",)) is None
    assert cache.invalidations == 1
    cache.store("k1", ("cracked",), "plan2")
    assert cache.lookup("k1", ("cracked",)) == "plan2"


def test_fifo_eviction_respects_capacity():
    cache = KernelCache(max_entries=2)
    cache.store("a", (), 1)
    cache.store("b", (), 2)
    cache.store("c", (), 3)
    assert len(cache) == 2
    assert cache.lookup("a", ()) is None     # evicted, counts a miss
    assert cache.lookup("c", ()) == 3


def test_plan_shapes_ignore_variable_names_but_not_structure():
    db = _db()
    def shape(sql):
        program, _ = compile_select(db.catalog, parse_sql(sql))
        return normalize(db.pipeline.optimize(program))
    a = shape("SELECT k FROM t WHERE k > 5")
    b = shape("SELECT k FROM t WHERE k > 99")
    c = shape("SELECT k FROM t WHERE k < 5")
    d = shape("SELECT v FROM t WHERE k > 5")
    assert a.key == b.key and a.params != b.params
    assert a.key != c.key          # open bound flips structurally
    assert a.key != d.key          # different column is structural


# -- engine level ------------------------------------------------------------

def test_repeated_query_hits_kernel_cache():
    db = _db()
    sql = "SELECT sum(v) FROM t WHERE k > 10"
    for _ in range(3):
        db.query(sql, compile=True)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_misses"] == 1
    assert stats["kernel_cache_hits"] == 2
    assert stats["compiled_runs"] == 3


def test_create_table_invalidates_kernels():
    db = _db()
    db.query("SELECT sum(v) FROM t WHERE k > 10", compile=True)
    db.execute("CREATE TABLE other (x INTEGER)")
    db.query("SELECT sum(v) FROM t WHERE k > 10", compile=True)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_invalidations"] == 1
    assert stats["kernel_cache_misses"] == 2


def test_cracking_layout_change_respecializes():
    db = Database.with_cracking()
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2})".format(i, (i * 37) % 100, i % 3)
        for i in range(50)))
    sql = "SELECT sum(v) FROM t WHERE k > 10 AND k < 40"
    first = db.query(sql, compile=True)   # creates the cracker mid-run
    second = db.query(sql, compile=True)  # layout token changed
    assert first == second == db.query(sql)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_invalidations"] >= 1


def test_unsupported_shapes_fall_back_without_counting_misses():
    db = _db()
    # ORDER BY runs through algebra.sortmulti — interpreter-only; the
    # plan's fusible prefix is shorter than the fragment floor for this
    # tiny shape, or compiles partially.  Either way: same answers.
    sql = "SELECT k FROM t ORDER BY k LIMIT 3"
    assert db.query(sql, compile=True) == db.query(sql)

    # A FROM-less engine path that surely can't fuse: constant select.
    assert db.query("SELECT count(*) FROM t", compile=True) == \
        db.query("SELECT count(*) FROM t")


def test_set_compile_pragma_flows_through_sessions():
    db = _db()
    db.execute("SET compile = true")
    assert db.default_compile is True
    baseline = db.query("SELECT sum(v) FROM t WHERE k > 7",
                        compile=False)
    assert db.query("SELECT sum(v) FROM t WHERE k > 7") == baseline
    assert db.plan_compiler.stats["compiled_runs"] >= 1
    # Transactions inherit the session default.
    with db.begin() as txn:
        txn.execute("INSERT INTO t VALUES (999, 3, 0)")
        rows = txn.execute(
            "SELECT sum(v) FROM t WHERE k > 7").rows()
    assert rows[0][0] == baseline[0][0] + 3
    db.execute("SET compile = false")
    assert db.default_compile is False
    with pytest.raises(ValueError):
        db.execute("SET compile = 1")


def test_compiled_runs_inside_sharded_scatter_legs():
    from repro.sharding import ShardedDatabase
    sharded = ShardedDatabase(n_shards=2)
    sharded.execute("CREATE TABLE t (k INTEGER, v INTEGER) "
                    "PARTITION BY (k)")
    sharded.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1})".format(i, (i * 37) % 100) for i in range(60)))
    baseline = sorted(sharded.query("SELECT k, v FROM t WHERE k > 10"))
    sharded.execute("SET compile = true")
    assert sorted(sharded.query(
        "SELECT k, v FROM t WHERE k > 10")) == baseline
    assert sharded.query("SELECT sum(v) FROM t WHERE k > 10") == \
        [(sum(v for k, v in baseline),)]
    compiled_runs = sum(
        shard.db.plan_compiler.stats["compiled_runs"]
        for shard in sharded.shards
        if shard.db._plan_compiler is not None)
    assert compiled_runs >= 1, "no shard leg ran compiled"
