"""Fault injection at the ``compile.codegen`` site.

A codegen failure mid-query must be invisible to the caller: the query
falls back to the interpreter and returns correct results.  The sweep
follows the repo's crash_points pattern — a fault-free dry run observes
every ``compile.*`` site hit, then the scenario re-runs once per
(site, hit) with a crash armed there.  Because compilation failures
are absorbed (never negative-cached), a later repeat of the same query
must compile and hit the cache normally.
"""

import pytest

from repro.faults import FaultInjector, crash_points
from repro.sql.database import Database

QUERIES = [
    "SELECT k, v FROM t WHERE k > 10 AND v < 80",
    "SELECT sum(v), count(*) FROM t WHERE k > 5",
    "SELECT g, sum(v) FROM t WHERE k > 2 GROUP BY g",
]


def _scenario(faults):
    db = Database(faults=faults)
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2})".format(i, (i * 37) % 100, i % 3)
        for i in range(80)))
    return db, [db.query(sql, compile=True) for sql in QUERIES]


def _expected():
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER, g INTEGER)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1}, {2})".format(i, (i * 37) % 100, i % 3)
        for i in range(80)))
    return [sorted(db.query(sql)) for sql in QUERIES]


def _observed_points():
    injector = FaultInjector()
    _scenario(injector)
    points = crash_points(injector.observed(),
                          sites={"compile.codegen"})
    assert points, "dry run never reached compile.codegen"
    return points


def test_codegen_site_is_hit_once_per_fresh_shape():
    injector = FaultInjector()
    db, _ = _scenario(injector)
    assert injector.observed().get("compile.codegen") == len(QUERIES)
    # Warm shapes skip codegen entirely — no second hit per query.
    for sql in QUERIES:
        db.query(sql, compile=True)
    assert injector.observed().get("compile.codegen") == len(QUERIES)


@pytest.mark.parametrize("point", _observed_points(),
                         ids=lambda p: "{0}@{1}".format(*p))
def test_codegen_crash_falls_back_to_interpreter(point):
    site, hit = point
    injector = FaultInjector().crash_at(site, hit)
    db, results = _scenario(injector)
    assert [(s, h) for s, h, _ in injector.fired] == [point]
    for sql, rows, want in zip(QUERIES, results, _expected()):
        assert sorted(rows) == want, \
            "crash at {0}#{1} corrupted {2!r}".format(site, hit, sql)
    stats = db.plan_compiler.counters()
    assert stats["codegen_faults"] == 1
    # The failed shape was not negative-cached: re-running the query
    # compiles it now that the fault is spent.
    crashed_sql = QUERIES[hit - 1]
    runs_before = stats["compiled_runs"]
    assert sorted(db.query(crashed_sql, compile=True)) == \
        _expected()[hit - 1]
    assert db.plan_compiler.stats["compiled_runs"] == runs_before + 1


def test_transient_codegen_fault_also_falls_back():
    injector = FaultInjector().transient_at("compile.codegen", hits=(1,))
    db, results = _scenario(injector)
    for rows, want in zip(results, _expected()):
        assert sorted(rows) == want
    assert db.plan_compiler.stats["codegen_faults"] == 1
    assert db.plan_compiler.stats["compiled_runs"] == len(QUERIES) - 1
