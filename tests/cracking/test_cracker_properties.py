"""Property-based invariant tests for database cracking.

Hypothesis drives the cracker through random query (and update)
sequences and checks, after every step, that:

* the cracker-index invariant holds (pieces partition the array, all
  values left of a cut are < its pivot, all values right are >= it),
* every range query returns exactly the oids a brute-force filter over
  the *original* values would — cracking reorganizes, never corrupts,
* the column remains a permutation of its initial multiset.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.cracker_column import CrackerColumn
from repro.cracking.updates import CrackedStore

values_strategy = st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=0, max_size=120)

range_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-110, max_value=110)),
    st.one_of(st.none(), st.integers(min_value=-110, max_value=110)),
    st.booleans(),
    st.booleans(),
)


def brute_force_oids(values, lo, hi, lo_incl, hi_incl):
    out = []
    for oid, value in enumerate(values):
        if lo is not None and (value < lo or (value == lo and not lo_incl)):
            continue
        if hi is not None and (value > hi or (value == hi and not hi_incl)):
            continue
        out.append(oid)
    return out


@settings(max_examples=60, deadline=None)
@given(values=values_strategy,
       queries=st.lists(range_strategy, min_size=1, max_size=15))
def test_cracker_column_query_sequences(values, queries):
    column = CrackerColumn(np.asarray(values, dtype=np.int64))
    original = list(values)
    for lo, hi, lo_incl, hi_incl in queries:
        got = column.select_range(lo, hi, lo_incl, hi_incl).tolist()
        want = brute_force_oids(original, lo, hi, lo_incl, hi_incl)
        assert got == want, (lo, hi, lo_incl, hi_incl)
        assert column.check_invariants()
        # Cracking permutes; it must never lose or change a value.
        assert sorted(column.values.tolist()) == sorted(original)
        assert sorted(column.oids.tolist()) == list(range(len(original)))


@settings(max_examples=40, deadline=None)
@given(values=values_strategy,
       queries=st.lists(range_strategy, min_size=1, max_size=10))
def test_cracker_pieces_partition_the_column(values, queries):
    column = CrackerColumn(np.asarray(values, dtype=np.int64))
    for lo, hi, lo_incl, hi_incl in queries:
        column.select_range(lo, hi, lo_incl, hi_incl)
        pieces = column.pieces()
        if values:
            assert pieces[0].lo == 0
            assert pieces[-1].hi == len(values)
        for left, right in zip(pieces, pieces[1:]):
            assert left.hi == right.lo  # contiguous, no gaps or overlap
        assert sum(p.size for p in pieces) == len(values)


_steps = st.lists(
    st.one_of(
        st.tuples(st.just("query"), range_strategy),
        st.tuples(st.just("insert"),
                  st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=1, max_size=20)),
        st.tuples(st.just("delete"),
                  st.lists(st.integers(min_value=0, max_value=200),
                           min_size=1, max_size=10)),
        st.tuples(st.just("merge"), st.none()),
    ),
    min_size=1, max_size=20)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, steps=_steps)
def test_cracked_store_under_updates(values, steps):
    """CrackedStore == a shadow dict, through inserts/deletes/merges."""
    store = CrackedStore(np.asarray(values, dtype=np.int64),
                         merge_threshold=16)
    shadow = dict(enumerate(values))  # oid -> value
    next_oid = len(values)
    for kind, payload in steps:
        if kind == "query":
            lo, hi, lo_incl, hi_incl = payload
            got = store.select_range(lo, hi, lo_incl, hi_incl).tolist()
            want = sorted(
                oid for oid, value in shadow.items()
                if not (lo is not None and
                        (value < lo or (value == lo and not lo_incl)))
                and not (hi is not None and
                         (value > hi or (value == hi and not hi_incl))))
            assert got == want, (lo, hi, lo_incl, hi_incl)
        elif kind == "insert":
            oids = store.insert(payload)
            assert oids == list(range(next_oid, next_oid + len(payload)))
            for oid, value in zip(oids, payload):
                shadow[oid] = value
            next_oid += len(payload)
        elif kind == "delete":
            store.delete(payload)
            for oid in payload:
                shadow.pop(oid, None)
        else:
            store.merge()
        assert store.check_invariants()
        assert len(store) == len(shadow)
