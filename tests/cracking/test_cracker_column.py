"""Tests for the cracker column."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cracking import CrackerColumn, FullSortIndex, ScanSelect


def reference_select(values, lo, hi, lo_incl=True, hi_incl=False):
    out = []
    for i, v in enumerate(values):
        if lo is not None and (v < lo or (v == lo and not lo_incl)):
            continue
        if hi is not None and (v > hi or (v == hi and not hi_incl)):
            continue
        out.append(i)
    return out


@pytest.fixture
def column():
    rng = np.random.default_rng(0)
    return rng.integers(0, 1000, 500), None


class TestSelect:
    def test_basic_range(self):
        values = np.asarray([13, 16, 4, 9, 2, 12, 7, 1, 19, 3])
        col = CrackerColumn(values)
        got = col.select_range(5, 14).tolist()
        assert got == reference_select(values, 5, 14)
        col.check_invariants()

    def test_bounds_inclusive_variants(self):
        values = np.asarray([1, 5, 5, 9])
        for lo_incl in (True, False):
            for hi_incl in (True, False):
                col = CrackerColumn(values)
                got = col.select_range(5, 9, lo_incl, hi_incl).tolist()
                assert got == reference_select(values, 5, 9, lo_incl,
                                               hi_incl)

    def test_open_bounds(self):
        values = np.asarray([4, 8, 1])
        col = CrackerColumn(values)
        assert col.select_range(lo=5).tolist() == [1]
        assert col.select_range(hi=5).tolist() == [0, 2]
        assert col.select_range().tolist() == [0, 1, 2]

    def test_empty_range(self):
        col = CrackerColumn(np.asarray([1, 2, 3]))
        assert len(col.select_range(10, 20)) == 0

    def test_empty_column(self):
        col = CrackerColumn(np.asarray([], dtype=np.int64))
        assert len(col.select_range(1, 2)) == 0

    def test_duplicates(self):
        values = np.asarray([5] * 10 + [3] * 5)
        col = CrackerColumn(values)
        assert col.select_range(5, 6).tolist() == list(range(10))


class TestSelfOrganization:
    def test_pieces_grow_with_queries(self):
        rng = np.random.default_rng(1)
        col = CrackerColumn(rng.integers(0, 10_000, 2000))
        assert col.n_pieces() == 1
        for lo in range(0, 9000, 1000):
            col.select_range(lo, lo + 500)
        assert col.n_pieces() > 10
        col.check_invariants()

    def test_work_converges(self):
        """First query ~ a scan; later queries touch ever less — the
        cracking convergence of E9."""
        rng = np.random.default_rng(2)
        n = 20_000
        col = CrackerColumn(rng.integers(0, 1 << 30, n))
        costs = []
        for _ in range(60):
            lo = int(rng.integers(0, (1 << 30) - (1 << 20)))
            before = col.tuples_touched
            col.select_range(lo, lo + (1 << 20))
            costs.append(col.tuples_touched - before)
        assert costs[0] >= n  # first query cracks the whole column
        late = sum(costs[-10:]) / 10
        assert late < costs[0] / 20  # converged

    def test_repeated_query_is_free(self):
        rng = np.random.default_rng(3)
        col = CrackerColumn(rng.integers(0, 1000, 1000))
        col.select_range(100, 200)
        before = col.tuples_touched
        col.select_range(100, 200)
        assert col.tuples_touched == before

    def test_cracks_counted(self):
        col = CrackerColumn(np.arange(100)[::-1].copy())
        col.select_range(10, 20)
        assert col.cracks_performed == 2


class TestTracedCracking:
    def test_crack_pattern_is_scan_like(self):
        """Cracking's memory pattern is two merged sequential streams:
        its sequential-miss share stays high even while reorganizing."""
        from repro.hardware import SCALED_DEFAULT
        from repro.workloads import uniform_ints
        h = SCALED_DEFAULT.make_hierarchy()
        col = CrackerColumn(uniform_ints(1 << 14, seed=9), hierarchy=h)
        col.select_range(1 << 28, 1 << 29)
        stats = h.level("L2").stats
        assert stats.misses > 0
        assert stats.sequential_misses > stats.random_misses

    def test_traced_results_match_untraced(self):
        from repro.hardware import TINY
        values = np.asarray([9, 2, 7, 4, 5])
        plain = CrackerColumn(values)
        traced = CrackerColumn(values, hierarchy=TINY.make_hierarchy())
        assert plain.select_range(3, 8).tolist() == \
            traced.select_range(3, 8).tolist()

    def test_converged_queries_stop_touching_memory(self):
        from repro.hardware import TINY
        h = TINY.make_hierarchy()
        col = CrackerColumn(np.arange(1000)[::-1].copy(), hierarchy=h)
        col.select_range(100, 200)
        cycles_after_crack = h.total_cycles
        col.select_range(100, 200)  # already cracked: no reorganization
        assert h.total_cycles == cycles_after_crack


class TestBaselines:
    def test_scan_matches_reference(self):
        values = np.asarray([13, 16, 4, 9, 2])
        scan = ScanSelect(values)
        assert scan.select_range(4, 14).tolist() == \
            reference_select(values, 4, 14)
        assert scan.tuples_touched == 5

    def test_sort_index_matches_reference(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 100, 200)
        index = FullSortIndex(values)
        assert index.select_range(20, 60).tolist() == \
            reference_select(values, 20, 60)

    def test_sort_index_pays_upfront(self):
        values = np.arange(1024)
        index = FullSortIndex(values)
        assert index.build_touched >= 1024 * 10

    def test_all_three_agree(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 500, 300)
        cracker = CrackerColumn(values)
        scan = ScanSelect(values)
        index = FullSortIndex(values)
        for lo, hi in [(0, 100), (250, 400), (450, 600), (90, 91)]:
            expected = scan.select_range(lo, hi).tolist()
            assert cracker.select_range(lo, hi).tolist() == expected
            assert index.select_range(lo, hi).tolist() == expected
        cracker.check_invariants()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), max_size=80),
       st.lists(st.tuples(st.integers(min_value=-5, max_value=105),
                          st.integers(min_value=0, max_value=40)),
                max_size=15))
def test_property_cracking_select_equals_scan(values, queries):
    """Any query sequence: cracked results == scan results, and the
    cracker-index invariant holds throughout."""
    arr = np.asarray(values, dtype=np.int64)
    col = CrackerColumn(arr)
    for lo, width in queries:
        hi = lo + width
        expected = reference_select(arr, lo, hi)
        assert col.select_range(lo, hi).tolist() == expected
        col.check_invariants()
    # The data is a permutation of the original multiset.
    assert sorted(col.values.tolist()) == sorted(values)
    assert sorted(col.oids.tolist()) == list(range(len(values)))
