"""Tests for cracking under updates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cracking import CrackedStore


class TestInsertDelete:
    def test_insert_visible_immediately(self):
        store = CrackedStore(np.asarray([10, 20, 30]),
                             merge_threshold=100)
        oids = store.insert([15, 25])
        got = store.select_range(12, 27)
        assert set(got.tolist()) == {1, oids[0], oids[1]}

    def test_delete_hides_base_tuples(self):
        store = CrackedStore(np.asarray([10, 20, 30]))
        store.delete([1])
        assert store.select_range(0, 100).tolist() == [0, 2]
        assert len(store) == 2

    def test_delete_pending_insert(self):
        store = CrackedStore(np.asarray([10]), merge_threshold=100)
        oids = store.insert([50])
        store.delete(oids)
        assert store.select_range(0, 100).tolist() == [0]

    def test_unknown_delete_ignored(self):
        store = CrackedStore(np.asarray([10]))
        store.delete([999])
        assert len(store) == 1

    def test_merge_triggered_by_threshold(self):
        store = CrackedStore(np.asarray([1, 2, 3]), merge_threshold=4)
        store.insert([4, 5])
        assert store.merges_performed == 0
        store.insert([6, 7])
        assert store.merges_performed == 1
        assert store._pending_values == []


class TestMergePreservesIndex:
    def test_merge_keeps_cracker_invariant(self):
        rng = np.random.default_rng(0)
        store = CrackedStore(rng.integers(0, 1000, 500),
                             merge_threshold=50)
        # Crack a bit first.
        store.select_range(100, 300)
        store.select_range(600, 800)
        pieces_before = store.n_pieces
        store.insert(rng.integers(0, 1000, 60).tolist())  # forces merge
        assert store.merges_performed == 1
        store.check_invariants()
        assert store.n_pieces == pieces_before  # index survived

    def test_benefit_survives_update_load(self):
        """E9's update claim: query work stays converged under a
        stream of interleaved inserts."""
        rng = np.random.default_rng(1)
        n = 10_000
        store = CrackedStore(rng.integers(0, 1 << 20, n),
                             merge_threshold=256)
        # Converge first.
        for _ in range(40):
            lo = int(rng.integers(0, (1 << 20) - 1000))
            store.select_range(lo, lo + 1000)
        converged = store.tuples_touched
        # Now a high update load with interleaved queries.
        for _ in range(40):
            store.insert(rng.integers(0, 1 << 20, 64).tolist())
            lo = int(rng.integers(0, (1 << 20) - 1000))
            store.select_range(lo, lo + 1000)
        per_query = (store.tuples_touched - converged) / 40
        # Far below scan cost; merging kept the pieces.
        assert per_query < n / 4
        store.check_invariants()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                max_size=40),
       st.lists(st.one_of(
           st.tuples(st.just("q"), st.integers(0, 60),
                     st.integers(0, 30)),
           st.tuples(st.just("i"), st.integers(0, 60),
                     st.integers(0, 60)),
           st.tuples(st.just("d"), st.integers(0, 80),
                     st.integers(0, 80))), max_size=25))
def test_property_store_matches_naive_model(initial, operations):
    """Random interleavings of queries, inserts, and deletes match a
    naive dict model."""
    store = CrackedStore(np.asarray(initial, dtype=np.int64),
                         merge_threshold=7)
    model = {i: v for i, v in enumerate(initial)}
    next_oid = len(initial)
    for op in operations:
        if op[0] == "q":
            _, lo, width = op
            hi = lo + width
            expected = sorted(o for o, v in model.items()
                              if lo <= v < hi)
            assert store.select_range(lo, hi).tolist() == expected
        elif op[0] == "i":
            _, a, b = op
            oids = store.insert([a, b])
            model[oids[0]] = a
            model[oids[1]] = b
            next_oid += 2
        else:
            _, x, y = op
            store.delete([x, y])
            model.pop(x, None)
            model.pop(y, None)
    store.merge()
    store.check_invariants()
    expected_all = sorted(model)
    assert store.select_range().tolist() == expected_all
