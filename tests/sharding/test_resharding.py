"""Online resharding: live split/merge/move with a fenced cutover.

The centrepiece mirrors the 2PC suite's discipline: a fault-free dry
run of a full online split records every hit of the migration's phase
fault sites, then the scenario re-runs once per (site, hit) with a
crash armed there — after ``recover()`` (which resumes or completes
the migration from the durable decision log) the data must be exactly
what a never-crashed run produces, and a converged migration must
never double-apply a delta or lose a copied row.
"""

import pytest

from repro.faults import CrashError, FaultInjector
from repro.faults.injector import crash_points
from repro.sharding import (
    MigrationInProgressError, ShardMap, ShardedDatabase, StaleEpochError,
)
from repro.sharding.resharding import PHASE_SITES, ReshardingError

N_ROWS = 30


def _make(faults=None, n_shards=2, wal_dir=None):
    db = ShardedDatabase(n_shards=n_shards, faults=faults,
                         wal_dir=str(wal_dir) if wal_dir else None)
    db.execute("CREATE TABLE kv (k BIGINT, v BIGINT, lbl VARCHAR) "
               "PARTITION BY (k)")
    db.execute("CREATE TABLE tags (t BIGINT, n BIGINT)")
    db.execute("INSERT INTO kv VALUES " + ", ".join(
        "({0}, {1}, '{2}')".format(k, k * 7, "abc"[k % 3])
        for k in range(N_ROWS)))
    db.execute("INSERT INTO tags VALUES (901, 1), (902, 2)")
    return db


def _snapshot(db):
    return (sorted(db.query("SELECT k, v, lbl FROM kv")),
            sorted(db.query("SELECT t, n FROM tags")))


def _finish(db, guard=2000):
    while db.migration is not None and not db.migration.finished:
        db.migration.step()
        guard -= 1
        assert guard > 0, "migration did not converge"


def _recover(db, tries=20):
    for _ in range(tries):
        try:
            db.recover()
            return
        except CrashError:
            pass
    raise AssertionError("recovery did not complete")


class TestShardMapEvolution:
    def test_refined_preserves_placement(self):
        coarse = ShardMap(3)
        fine = coarse.refined(2)
        assert fine.n_buckets == 2 * coarse.n_buckets
        for key in list(range(-50, 50)) + ["a", "bc", None, 2.5]:
            assert fine.shard_of(key) == coarse.shard_of(key)

    def test_reassigned_bumps_epoch_and_moves_buckets(self):
        base = ShardMap(2).refined(2)
        moved = base.reassigned(base.buckets_of(0)[:1], 1)
        assert moved.epoch == base.epoch + 1
        assert set(moved.buckets_of(1)) >= set(base.buckets_of(1))

    def test_record_round_trip(self):
        original = ShardMap(2).refined(2).reassigned([0], 1)
        copy = ShardMap.from_record(original.to_record())
        assert copy.to_record() == original.to_record()
        assert copy.epoch == original.epoch


class TestOnlineSplit:
    def test_split_preserves_answers_under_live_writes(self):
        db = _make()
        db.split_shard(0, chunk_rows=4)
        extra = 0
        while db.migration is not None and not db.migration.finished:
            db.migration.step()
            db.execute("INSERT INTO kv VALUES ({0}, {1}, 'x')".format(
                100 + extra, extra))
            extra += 1
            assert extra < 500
        assert db.shard_map.epoch == 1
        assert len(db.shards) == 3
        rows = db.query("SELECT count(*), sum(v) FROM kv")
        assert rows[0][0] == N_ROWS + extra

    def test_moved_rows_live_exactly_once(self):
        db = _make()
        db.split_shard(0, chunk_rows=4)
        _finish(db)
        # Each key is visible on exactly the shard the new map names.
        for k in range(N_ROWS):
            owner = db.shard_map.shard_of(k)
            for shard_id in db.shard_map.active:
                count = db.shards[shard_id].db.query(
                    "SELECT count(*) FROM kv WHERE k = {0}".format(k))
                assert count == [(1 if shard_id == owner else 0,)], \
                    "key {0} on shard {1}".format(k, shard_id)

    def test_fresh_target_receives_reference_tables(self):
        db = _make()
        db.split_shard(0, chunk_rows=4)
        _finish(db)
        target = db.shards[2].db
        assert sorted(target.query("SELECT t, n FROM tags")) == \
            [(901, 1), (902, 2)]
        # And later broadcasts reach it like any established node.
        db.execute("INSERT INTO tags VALUES (903, 3)")
        assert target.query(
            "SELECT count(*) FROM tags") == [(3,)]

    def test_migration_is_invisible_mid_flight(self):
        """Staging discipline: while the copy/catchup runs, scatter
        reads must see each moving row exactly once (on the source) —
        the staged rows on the target stay out of its catalog."""
        db = _make()
        before = _snapshot(db)
        db.split_shard(0, chunk_rows=3)
        steps = 0
        while db.migration is not None and not db.migration.finished:
            assert _snapshot(db) == before, \
                "answers drifted mid-migration at step {0}".format(steps)
            if db.migration.phase != "done":
                target = db.shards[db.migration.target].db
                if "kv" in target.catalog and \
                        db.migration.phase in ("copy", "catchup"):
                    assert target.query(
                        "SELECT count(*) FROM kv") == [(0,)]
            db.migration.step()
            steps += 1
            assert steps < 500
        assert _snapshot(db) == before

    def test_dual_routing_pumps_synchronously(self):
        db = _make()
        migration = db.split_shard(0, chunk_rows=4)
        while migration.phase != "dual":
            migration.step()
        before = migration.stats.deltas_applied
        db.execute("INSERT INTO kv VALUES (500, 1, 'd'), "
                    "(501, 2, 'd'), (502, 3, 'd')")
        assert migration.stats.deltas_applied > before
        assert migration.lag_bytes() == 0
        _finish(db)
        assert db.query("SELECT count(*) FROM kv") == [(N_ROWS + 3,)]


class TestOnlineMergeAndMove:
    def test_merge_retires_source(self):
        db = _make()
        db.split_shard(0, chunk_rows=4)
        _finish(db)
        before = _snapshot(db)
        db.merge_shards(2, 1, chunk_rows=4)
        _finish(db)
        assert db.shard_map.epoch == 2
        assert db.shards[2].retired
        assert 2 not in set(db.shard_map.active)
        assert 2 not in db.broadcast_shards()
        assert _snapshot(db) == before

    def test_move_rebalances_between_established_shards(self):
        db = _make()
        before = _snapshot(db)
        buckets = db.shard_map.buckets_of(0)[:1]
        db.move_buckets(0, 1, buckets, chunk_rows=4)
        _finish(db)
        assert db.shard_map.epoch == 1
        assert set(db.shard_map.buckets_of(1)) >= set(buckets)
        assert _snapshot(db) == before

    def test_updates_and_deletes_flow_through_deltas(self):
        db = _make()
        migration = db.merge_shards(1, 0, chunk_rows=3)
        seen_mutation = False
        step = 0
        while db.migration is not None and not db.migration.finished:
            db.migration.step()
            if step == 1:
                db.execute("UPDATE kv SET v = v + 1000 WHERE k < 10")
                db.execute("DELETE FROM kv WHERE k >= 25")
                seen_mutation = True
            step += 1
            assert step < 500
        assert seen_mutation
        assert migration.stats.deltas_applied > 0
        rows = sorted(db.query("SELECT k, v FROM kv"))
        assert rows == sorted(
            (k, k * 7 + (1000 if k < 10 else 0))
            for k in range(N_ROWS) if k < 25)


class TestGuards:
    def test_ddl_rejected_mid_migration(self):
        db = _make()
        db.split_shard(0)
        with pytest.raises(MigrationInProgressError):
            db.execute("CREATE TABLE late (x BIGINT)")
        _finish(db)
        db.execute("CREATE TABLE late (x BIGINT)")  # fine afterwards

    def test_single_migration_at_a_time(self):
        db = _make()
        db.split_shard(0)
        with pytest.raises(MigrationInProgressError):
            db.split_shard(1)
        _finish(db)

    def test_retired_shard_cannot_migrate_again(self):
        db = _make(n_shards=3)
        db.merge_shards(2, 0, chunk_rows=8)
        _finish(db)
        with pytest.raises(ReshardingError):
            db.merge_shards(2, 1)
        with pytest.raises(ReshardingError):
            db.move_buckets(0, 2, db.shard_map.buckets_of(0)[:1])

    def test_progress_reports_the_live_state(self):
        db = _make()
        migration = db.split_shard(0, chunk_rows=4)
        migration.step()
        progress = migration.progress()
        assert progress["op"] == "split"
        assert progress["phase"] in ("copy", "catchup")
        assert progress["units_total"] >= progress["units_done"] >= 1
        assert progress["new_epoch"] == 1
        _finish(db)


class TestEpochFencing:
    def test_stale_transaction_fenced_at_commit(self):
        db = _make()
        txn = db.begin()
        txn.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
        db.split_shard(0, chunk_rows=8)
        _finish(db)
        before = db.stats.stale_epoch_rejections
        with pytest.raises(StaleEpochError):
            txn.commit()
        assert txn.outcome == "aborted (stale epoch)"
        assert db.stats.stale_epoch_rejections == before + 1
        # The buffered update never landed anywhere.
        assert db.query("SELECT v FROM kv WHERE k = 0") == [(0,)]

    def test_stale_transaction_fenced_at_execute(self):
        db = _make()
        txn = db.begin()
        txn.execute("SELECT count(*) FROM kv")
        db.split_shard(0, chunk_rows=8)
        _finish(db)
        with pytest.raises(StaleEpochError):
            txn.execute("SELECT count(*) FROM kv")
        assert not txn.closed   # execute fences, only commit deposes
        txn.abort()

    def test_fresh_transaction_carries_the_new_epoch(self):
        db = _make()
        db.split_shard(0, chunk_rows=8)
        _finish(db)
        with db.begin() as txn:
            assert txn.epoch == 1
            txn.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
        assert db.query("SELECT v FROM kv WHERE k = 0") == [(1,)]


def _split_scenario(faults, wal_dir):
    """The deterministic dry-run scenario for the crash sweep: a full
    online split with two fixed mid-flight writes."""
    db = _make(faults, wal_dir=wal_dir)
    db.split_shard(0, chunk_rows=4)
    step = 0
    while db.migration is not None and not db.migration.finished:
        db.migration.step()
        if step == 2:
            db.execute("INSERT INTO kv VALUES (400, 11, 'm')")
        if step == 4:
            db.execute("DELETE FROM kv WHERE k = 3")
        step += 1
        assert step < 500
    return db


EXPECTED_KV = sorted(
    [(k, k * 7, "abc"[k % 3]) for k in range(N_ROWS) if k != 3]
    + [(400, 11, "m")])


class TestCrashSweep:
    def test_converges_from_a_crash_at_every_phase_site(self, tmp_path):
        faults = FaultInjector()
        dry = _split_scenario(faults, tmp_path / "dry")
        assert sorted(dry.query("SELECT k, v, lbl FROM kv")) \
            == EXPECTED_KV
        points = crash_points(faults.observed(), sites=PHASE_SITES)
        # begin, one copy hit per unit, catchup rounds, cutover, purge.
        assert len(points) >= 8, points
        sites_crossed = set()
        for i, (site, hit) in enumerate(points):
            faults = FaultInjector()
            faults.crash_at(site, hit=hit)
            try:
                db = _split_scenario(faults, tmp_path / str(i))
                crashed = False
            except CrashError:
                crashed = True
            if crashed:
                db = None
            assert crashed, "no crash at {0} hit {1}".format(site, hit)
            sites_crossed.add(site)
        assert sites_crossed == set(PHASE_SITES)

    def test_recovery_resumes_and_converges(self, tmp_path):
        """The full loop: crash at each phase site, recover the same
        coordinator, drive whatever migration resumed to completion;
        the final rows must match the never-crashed run exactly."""
        faults = FaultInjector()
        dry = _split_scenario(faults, tmp_path / "dry")
        points = crash_points(faults.observed(), sites=PHASE_SITES)
        finished_with_migration = 0
        for site, hit in points:
            faults = FaultInjector()
            db = _make(faults)
            faults.crash_at(site, hit=hit)
            try:
                db.split_shard(0, chunk_rows=4)
                _finish(db)
            except CrashError:
                _recover(db)
                _finish(db)
            if db.shard_map.epoch == 1:
                finished_with_migration += 1
            else:
                assert site == "reshard.begin", \
                    "migration vanished after {0}".format(site)
            assert sorted(db.query("SELECT k, v, lbl FROM kv")) == \
                sorted((k, k * 7, "abc"[k % 3]) for k in range(N_ROWS))
            assert sorted(db.query("SELECT t, n FROM tags")) == \
                [(901, 1), (902, 2)]
        assert finished_with_migration >= len(points) - 2

    def test_crash_between_decision_and_done_completes_at_recovery(
            self, tmp_path):
        """The decided-but-unfinished window: the decision record is
        durable, the purge/install/epoch never ran.  recover() must
        complete the cutover, not restart the copy."""
        faults = FaultInjector()
        db = _make(faults, wal_dir=tmp_path)
        db.split_shard(0, chunk_rows=4)
        while db.migration.phase != "dual":
            db.migration.step()
        hit = faults.hits.get("reshard.purge", 0)
        faults.crash_at("reshard.purge", hit=hit + 1)
        with pytest.raises(CrashError):
            _finish(db)
        _recover(db)
        assert db.migration is None
        assert db.shard_map.epoch == 1
        assert sorted(db.query("SELECT k, v, lbl FROM kv")) == sorted(
            (k, k * 7, "abc"[k % 3]) for k in range(N_ROWS))
