"""Bounded exponential backoff with seeded jitter on shard links.

Every coordinator send retries through ``ShardedDatabase._send``:
transient drops pause ``backoff + jitter`` simulated clock ticks, the
backoff doubling per retry up to ``retry_backoff_cap``; the jitter is
drawn from a seeded rng so a retry storm replays exactly per seed.
``link_retry_limit`` exhausted escalates to
:class:`ShardUnavailableError` — the caller's cue to shed or reroute,
never an infinite hot loop against a dead link.
"""

import pytest

from repro.faults import FaultInjector
from repro.sharding import ShardUnavailableError, ShardedDatabase


def _make(faults=None, **kwargs):
    db = ShardedDatabase(n_shards=2, faults=faults, **kwargs)
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT) PARTITION BY (k)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1})".format(k, k) for k in range(20)))
    return db


def _arm_drops(faults, n):
    hit = faults.hits["shard.ship"]
    faults.transient_at("shard.ship",
                        hits=tuple(range(hit + 1, hit + 1 + n)))


class TestBackoff:
    def test_retries_pause_with_growing_backoff(self):
        faults = FaultInjector()
        db = _make(faults)
        assert db.stats.backoff_ticks == 0
        _arm_drops(faults, 3)
        db.query("SELECT count(*) FROM t")
        assert db.stats.retries == 3
        # Three pauses with backoffs 1, 2, 4: jitter adds [0, backoff),
        # so total sleep lies in [7, 14) ticks — strictly more than
        # one tick per retry (it actually backs off).
        assert 7 <= db.stats.backoff_ticks < 14

    def test_backoff_is_bounded_by_cap(self):
        faults = FaultInjector()
        db = _make(faults, link_retry_limit=12, retry_backoff_cap=4)
        _arm_drops(faults, 10)
        db.query("SELECT count(*) FROM t")
        assert db.stats.retries == 10
        # Backoffs 1,2,4,4,... capped at 4; with jitter < backoff the
        # total is < 2 * (1+2+4*8) = 70 — not the 2^10 runaway an
        # uncapped doubling would reach.
        assert db.stats.backoff_ticks < 70

    def test_jitter_is_deterministic_per_seed(self):
        ticks = []
        for _ in range(2):
            faults = FaultInjector()
            db = _make(faults, retry_seed=7)
            _arm_drops(faults, 4)
            db.query("SELECT count(*) FROM t")
            ticks.append(db.stats.backoff_ticks)
        assert ticks[0] == ticks[1]  # same seed, same storm

    def test_different_seeds_desynchronize_jitter(self):
        outcomes = set()
        for seed in range(8):
            faults = FaultInjector()
            db = _make(faults, retry_seed=seed)
            _arm_drops(faults, 4)
            db.query("SELECT count(*) FROM t")
            outcomes.add(db.stats.backoff_ticks)
        assert len(outcomes) > 1  # jitter actually varies by seed


class TestExhaustion:
    def test_exhausted_retries_escalate(self):
        faults = FaultInjector()
        db = _make(faults, link_retry_limit=4)
        _arm_drops(faults, 4)  # every allowed send drops
        with pytest.raises(ShardUnavailableError):
            db.query("SELECT count(*) FROM t")
        assert db.stats.retries == 4

    def test_recovers_on_the_attempt_after_the_storm(self):
        faults = FaultInjector()
        db = _make(faults, link_retry_limit=4)
        _arm_drops(faults, 3)  # one attempt left
        assert db.query("SELECT count(*) FROM t") == [(20,)]
