"""Unit tests for the stable partition-hash function and ShardMap."""

import random

import pytest

from repro.sharding.partition import ShardMap, partition_hash


class TestPartitionHash:
    def test_deterministic(self):
        values = [0, 1, -1, 2**40, "abc", "", 2.5, -7.25, None, True]
        assert [partition_hash(v) for v in values] == \
            [partition_hash(v) for v in values]

    def test_equality_compatible_numerics(self):
        """Values the SQL engine compares equal must co-hash, or a
        co-partitioned join would miss cross-representation matches."""
        assert partition_hash(2) == partition_hash(2.0)
        assert partition_hash(1) == partition_hash(True)
        assert partition_hash(0) == partition_hash(False)
        assert partition_hash(-3) == partition_hash(-3.0)

    def test_distinct_values_spread(self):
        hashes = {partition_hash(i) for i in range(1000)}
        assert len(hashes) == 1000  # splitmix64 never collides here

    def test_strings_stable_and_spread(self):
        names = ["v{0}".format(i) for i in range(100)]
        assert len({partition_hash(n) for n in names}) == 100
        assert partition_hash("v1") != partition_hash("v2")

    def test_null_is_one_bucket(self):
        assert partition_hash(None) == partition_hash(None)

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            partition_hash([1, 2])


class TestShardMap:
    def test_consecutive_keys_balance(self):
        """Dense surrogate keys must spread, not stripe: every shard
        gets a reasonable fraction of 0..N."""
        shard_map = ShardMap(4)
        counts = [0] * 4
        for key in range(2000):
            counts[shard_map.shard_of(key)] += 1
        for count in counts:
            assert 350 <= count <= 650, counts

    def test_random_keys_balance(self):
        rng = random.Random(11)
        shard_map = ShardMap(8)
        counts = [0] * 8
        for _ in range(4000):
            counts[shard_map.shard_of(rng.randint(-10**9, 10**9))] += 1
        for count in counts:
            assert 300 <= count <= 700, counts

    def test_split_rows_routes_by_key_column(self):
        shard_map = ShardMap(3)
        rows = [(k, "r{0}".format(k)) for k in range(30)]
        split = shard_map.split_rows(rows, 0)
        assert sum(len(v) for v in split.values()) == 30
        for shard_id, shard_rows in split.items():
            assert all(shard_map.shard_of(k) == shard_id
                       for k, _ in shard_rows)

    def test_single_shard_takes_everything(self):
        shard_map = ShardMap(1)
        assert all(shard_map.shard_of(v) == 0
                   for v in [0, 7, -1, "x", 2.5, None])

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardMap(0)
