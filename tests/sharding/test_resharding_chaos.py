"""Resharding chaos acceptance: zero-loss elastic migration.

Each seeded schedule runs live writes against a sharded database while
a split (and then a merge) migrates buckets, with crashes armed at
random fault-site hits, links cut mid-flight, and transient drops on
the data path.  The invariants — checked against a lock-step
single-node reference before, during and after each migration:

* no sync-acked write is ever lost, and no delta applies twice
  (differential row equality, including grouped aggregates);
* writes with an unknown fate (a crash mid-commit) are *probed*: they
  must have either fully applied or fully not;
* every started migration converges (no stuck phase) and each cutover
  bumps the map epoch exactly once.

The fast band keeps tier-1 honest; CI fans the ``slow`` band out over
a ``RESHARD_SEED`` matrix (disjoint 1000-seed bands, >= 200 schedules
across the matrix).
"""

import os

import pytest

from repro.sharding.resharding.chaos import (
    chaos_sweep, run_reshard_schedule,
)

SEED_BASE = int(os.environ.get("RESHARD_SEED", "0")) * 1000


def _assert_clean(reports):
    failed = [r.summary() for r in reports if not r.ok]
    assert not failed, "\n".join(failed)


class TestSchedule:
    def test_single_schedule_is_safe_and_counts_add_up(self):
        report = run_reshard_schedule(SEED_BASE)
        assert report.ok, report.summary()
        assert report.ops_acked + report.ops_unknown \
            + report.ops_rejected <= report.ops_attempted
        assert report.checkpoints > 0

    def test_schedules_are_reproducible(self):
        a = run_reshard_schedule(SEED_BASE + 7)
        b = run_reshard_schedule(SEED_BASE + 7)
        assert a.summary() == b.summary()
        assert a.phases_seen == b.phases_seen

    def test_heavier_chaos_still_safe(self):
        report = run_reshard_schedule(SEED_BASE + 11, crash_rate=0.45,
                                      cut_rate=0.25, drop_rate=0.08)
        assert report.ok, report.summary()


class TestFastSweep:
    def test_sweep_8_schedules(self):
        reports = chaos_sweep(SEED_BASE + 100, n_schedules=8)
        _assert_clean(reports)
        # The band must exercise real chaos and real migrations, not
        # ride easy seeds to a vacuous pass.
        assert sum(r.crashes for r in reports) > 0
        assert sum(r.recoveries for r in reports) > 0
        assert sum(r.link_cuts for r in reports) > 0
        assert sum(r.migrations_done for r in reports) >= 8
        phases = set()
        for r in reports:
            phases |= r.phases_seen
        assert {"copy", "catchup"} <= phases


@pytest.mark.slow
class TestFullSweep:
    def test_sweep_70_schedules(self):
        reports = chaos_sweep(SEED_BASE + 200, n_schedules=70)
        _assert_clean(reports)
        assert sum(r.crashes for r in reports) > 0
        assert sum(r.migrations_done for r in reports) >= 100
        # Both legs must run across the band: splits (epoch 1) and
        # merges on top of them (epoch 2).
        assert sum(1 for r in reports if r.final_epoch >= 2) >= 20
