"""Property: query answers are invariant under repartitioning.

Hash-partitioning is pure physical layout — for any data set and any
two shard counts n != m, every query must return the same multiset of
rows.  Hypothesis drives the data; a seeded link-fault variant checks
the invariance also holds while the links drop and delay messages.
"""

import random
from collections import Counter

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector
from repro.sharding import ShardedDatabase
from tests.helpers import normalize_row

KEYS = st.integers(min_value=-40, max_value=40)
# Dyadic rationals: float sums are exact, so partial aggregation over
# any partitioning cannot drift.
VALS = st.integers(min_value=-200, max_value=200).map(lambda i: i * 0.25)
TAGS = st.sampled_from(["a", "b", "c", "d"])
ROWS = st.lists(st.tuples(KEYS, VALS, TAGS), min_size=1, max_size=60)
SPLITS = st.tuples(st.integers(1, 5), st.integers(1, 5)).filter(
    lambda nm: nm[0] != nm[1])

QUERIES = [
    "SELECT k, v, s FROM t",
    "SELECT k, v FROM t WHERE v >= 0 OR s = 'a'",
    "SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t",
    "SELECT s, count(*), sum(k) FROM t GROUP BY s",
    "SELECT s, avg(v) FROM t GROUP BY s HAVING count(*) >= 2",
    "SELECT DISTINCT s FROM t",
    "SELECT k FROM t ORDER BY k",
]


def _load(db, rows):
    db.execute("CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) "
               "PARTITION BY (k)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1!r}, '{2}')".format(k, v, s) for k, v, s in rows))
    return db


def _answers(db):
    return [Counter(normalize_row(r) for r in db.query(sql))
            for sql in QUERIES]


@given(rows=ROWS, splits=SPLITS)
@settings(max_examples=25, deadline=None)
def test_same_rows_any_shard_count(rows, splits):
    n, m = splits
    left = _load(ShardedDatabase(n_shards=n), rows)
    right = _load(ShardedDatabase(n_shards=m), rows)
    for sql, got, want in zip(QUERIES, _answers(left), _answers(right)):
        assert got == want, \
            "{0} differs between {1} and {2} shards".format(sql, n, m)


@given(rows=ROWS, seed=st.integers(0, 2**16))
@settings(max_examples=12, deadline=None)
def test_invariant_holds_mid_migration(rows, seed):
    """The invariance extended to *elastic* layouts: answers must not
    change at any point of an online split — before it starts, frozen
    at every intermediate step (copy chunks staged, deltas tailing,
    dual routing, cutover), or after the new epoch installs."""
    rng = random.Random(seed)
    db = _load(ShardedDatabase(n_shards=2), rows)
    reference = _answers(db)
    db.split_shard(rng.randrange(2), chunk_rows=rng.randint(2, 9))
    steps = 0
    while db.migration is not None and not db.migration.finished:
        phase = db.migration.phase
        for sql, got, want in zip(QUERIES, _answers(db), reference):
            assert got == want, \
                "{0} drifted in phase {1}".format(sql, phase)
        db.migration.step()
        steps += 1
        assert steps < 2000
    assert db.shard_map.epoch == 1
    for sql, got, want in zip(QUERIES, _answers(db), reference):
        assert got == want, "{0} drifted after cutover".format(sql)


@given(rows=ROWS, seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_repartition_invariant_under_link_faults(rows, seed):
    """The invariance must survive flaky links: transparent retries on
    dropped ships and delayed acks cannot change any answer."""
    faults = FaultInjector.seeded(seed, {
        "shard.ship": ("transient", 0.1),
        "shard.ack": ("latency", 0.2, 2),
    })
    flaky = _load(ShardedDatabase(n_shards=4, faults=faults), rows)
    stable = _load(ShardedDatabase(n_shards=2), rows)
    for sql, got, want in zip(QUERIES, _answers(flaky),
                              _answers(stable)):
        assert got == want, "{0} differs under link faults".format(sql)
