"""Golden vectors pinning the partition-hash function.

``partition_hash`` is the one function that must never drift: every
durable artifact that routes by key — shard WALs, the resharding
decision log's bucket sets, the repartitioning-invariance property —
assumes the same value hashes identically forever.  These vectors are
the splitmix64 outputs checked in at the time the function was frozen;
a failure here means rows silently land on the wrong shard after an
upgrade, which no other test would localize this precisely.
"""

import pytest

from repro.sharding.partition import ShardMap, partition_hash

#: (value, expected 64-bit hash) — regenerating these is NEVER the
#: right fix; the function is part of the on-disk format.
GOLDEN = [
    (0, 16294208416658607535),
    (1, 10451216379200822465),
    (-1, 16490336266968443936),
    (7, 7191089600892374487),
    (40, 3935774486848180498),
    (255, 3714432240112385972),
    (2**31, 2686745474645717868),
    (2**40, 2296115805719413641),
    (-2**33, 14035246321042428752),
    ("", 16294208416658607535),
    ("a", 3187963305867457774),
    ("abc", 9616578467556576683),
    ("tenant-0", 5465616028118460794),
    ("v99", 18445224801563049972),
    (2.5, 7033843765569497573),
    (-7.25, 17716105980630120647),
    (None, 0),
]


@pytest.mark.parametrize("value, expected", GOLDEN,
                         ids=[repr(v) for v, _ in GOLDEN])
def test_partition_hash_golden(value, expected):
    assert partition_hash(value) == expected


def test_normalization_golden():
    """The equality-compatibility normalizations are format too:
    booleans and integral floats hash as their integer value (the
    engine compares ``2 = 2.0 = true+1`` numerically)."""
    assert partition_hash(True) == partition_hash(1) \
        == 10451216379200822465
    assert partition_hash(False) == partition_hash(0) \
        == 16294208416658607535
    assert partition_hash(40.0) == partition_hash(40)
    # An integral float beyond 2**64 wraps through the low 64 bits.
    assert partition_hash(1e300) == partition_hash(int(1e300))


def test_bucket_routing_golden():
    """End-to-end: hash -> bucket -> shard for the default 4-shard map
    (what ``PARTITION BY`` ships with), pinned for a dense key range."""
    shard_map = ShardMap(4)
    assert [shard_map.shard_of(k) for k in range(16)] == \
        [partition_hash(k) % 4 for k in range(16)]
    assert [shard_map.shard_of(k) for k in range(8)] == \
        [3, 1, 2, 1, 2, 2, 0, 3]
