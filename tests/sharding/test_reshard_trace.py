"""Observability of online resharding: ``reshard.*`` spans and
counters in PROFILE output.

A migration must be *watchable*: every ``step()`` opens a
``reshard.step`` span carrying the migration id / op / phase, the
cutover opens ``reshard.cutover`` nested inside it, and the
deterministic progress counters (rows copied, deltas applied / their
row counts) attach to the step that did the work.  The golden test
pins the normalized span tree of one fixed split — an instrumentation
regression (lost span, renamed counter, phase mislabelled) fails here
while an engine retune does not.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/sharding/test_reshard_trace.py \
        --update-golden
"""

import json
from pathlib import Path

from repro.observability.tracer import Tracer
from repro.sharding import ShardedDatabase

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Deterministic migration counters — pure functions of the data and
#: the chunking, safe to pin (no clocks, no link byte totals).
KEEP_COUNTERS = ("reshard_rows_copied", "reshard_deltas_applied",
                 "reshard_delta_rows")
KEEP_ATTRS = ("mid", "op", "phase")


def _run_traced_split():
    tracer = Tracer()
    db = ShardedDatabase(n_shards=2, tracer=tracer)
    db.execute("CREATE TABLE kv (k BIGINT, v BIGINT) PARTITION BY (k)")
    db.execute("INSERT INTO kv VALUES " + ", ".join(
        "({0}, {1})".format(k, k * 3) for k in range(24)))
    db.split_shard(0, chunk_rows=4)
    step = 0
    while db.migration is not None and not db.migration.finished:
        db.migration.step()
        if step == 1:
            db.execute("INSERT INTO kv VALUES (100, 7), (101, 8)")
        step += 1
        assert step < 200
    return tracer, db


def _normalize(span):
    return {
        "name": span["name"],
        "kind": span["kind"],
        "attrs": {k: span["attrs"][k] for k in KEEP_ATTRS
                  if k in span["attrs"]},
        "counters": {k: span["counters"][k] for k in KEEP_COUNTERS
                     if k in span["counters"]},
        "children": [_normalize(child) for child in span["children"]
                     if child["name"].startswith("reshard.")],
    }


def _reshard_tree(tracer):
    return [_normalize(span.to_dict()) for span in tracer.roots
            if span.to_dict()["name"].startswith("reshard.")]


def test_step_spans_carry_identity_and_progress():
    tracer, db = _run_traced_split()
    steps = [s for s in _reshard_tree(tracer) if s["name"] == "reshard.step"]
    assert steps, "no reshard.step spans traced"
    assert {s["kind"] for s in steps} == {"resharding"}
    assert {s["attrs"]["mid"] for s in steps} == {"m0001"}
    assert {s["attrs"]["op"] for s in steps} == {"split"}
    phases = [s["attrs"]["phase"] for s in steps]
    assert phases[0] == "copy" and "catchup" in phases \
        and "dual" in phases
    copied = sum(s["counters"].get("reshard_rows_copied", 0)
                 for s in steps)
    # The snapshot ships every row of the moving buckets exactly once.
    moving = db.shards[2].db.query("SELECT count(*) FROM kv")[0][0]
    deltas = sum(s["counters"].get("reshard_delta_rows", 0)
                 for s in steps)
    assert copied + deltas >= moving > 0
    # The cutover span nests inside the dual-phase step.
    last = [s for s in steps if s["attrs"]["phase"] == "dual"][-1]
    assert [c["name"] for c in last["children"]] == ["reshard.cutover"]


def test_counters_attach_to_the_step_that_did_the_work():
    tracer, _ = _run_traced_split()
    steps = [s for s in _reshard_tree(tracer) if s["name"] == "reshard.step"]
    copy_steps = [s for s in steps if s["attrs"]["phase"] == "copy"]
    assert all(s["counters"].get("reshard_rows_copied") for s in copy_steps)
    delta_rows = sum(s["counters"].get("reshard_delta_rows", 0)
                     for s in steps)
    assert delta_rows >= 0  # deltas only when mid-flight writes moved


def test_reshard_trace_matches_golden(request):
    tracer, _ = _run_traced_split()
    actual = _reshard_tree(tracer)
    path = GOLDEN_DIR / "reshard_split.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                        + "\n")
        return
    assert path.exists(), (
        "missing golden file {0}; run with --update-golden".format(path))
    expected = json.loads(path.read_text())
    assert actual == expected, (
        "reshard span tree drifted from {0}; if the change is "
        "intentional, rerun with --update-golden".format(path.name))
