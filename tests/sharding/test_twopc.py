"""Two-phase commit over sharded WALs: atomicity under every crash.

The centrepiece is an exhaustive crash sweep: a fault-free dry run of
one multi-shard transaction records every commit-path fault-site hit,
then the scenario is re-run once per (site, hit) with a crash armed
there.  After ``ShardedDatabase.recover()`` the table must hold either
the complete pre-transaction state or the complete post-transaction
state — never a mixture.
"""

import pytest

from repro.faults import CrashError, FaultInjector
from repro.faults.injector import crash_points
from repro.sharding import ShardedDatabase
from repro.sql.transactions import ConflictError, TransactionClosedError

N_ROWS = 20
COMMIT_SITES = frozenset(
    ["commit.validate", "wal.append", "commit.publish", "commit.apply",
     "twopc.decided"])


def _make(wal_dir=None, faults=None, n_shards=2):
    db = ShardedDatabase(n_shards=n_shards, faults=faults,
                         wal_dir=str(wal_dir) if wal_dir else None)
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT) PARTITION BY (k)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1})".format(k, k * 10) for k in range(N_ROWS)))
    return db


def _keys_on(db, shard_id):
    return [k for k in range(N_ROWS)
            if db.shard_map.shard_of(k) == shard_id]


def _snapshot(db):
    return sorted(db.query("SELECT k, v FROM t"))

ORIGINAL = sorted((k, k * 10) for k in range(N_ROWS))
UPDATED = sorted((k, k * 10 + 1) for k in range(N_ROWS))


def _run_txn(db):
    """One multi-shard transaction: bump every row on every shard."""
    txn = db.begin()
    txn.execute("UPDATE t SET v = v + 1")
    txn.commit()


class TestCommitPaths:
    def test_multi_shard_commit_is_visible_after_commit(self):
        db = _make()
        before = db.stats.twopc_commits
        txn = db.begin()
        assert txn.execute("UPDATE t SET v = v + 1") == N_ROWS
        # Buffered writes are invisible outside the transaction...
        assert _snapshot(db) == ORIGINAL
        # ...but visible to the transaction's own snapshot reads.
        assert sorted(txn.query("SELECT k, v FROM t")) == UPDATED
        txn.commit()
        assert _snapshot(db) == UPDATED
        assert db.stats.twopc_commits == before + 1
        assert txn.outcome == "committed"

    def test_single_shard_txn_takes_fast_path(self):
        db = _make()
        key = _keys_on(db, 1)[0]
        before = (db.stats.twopc_fast_path, db.stats.twopc_commits)
        with db.begin() as txn:
            txn.execute("UPDATE t SET v = 0 WHERE k = {0}".format(key))
        assert db.stats.twopc_fast_path == before[0] + 1
        assert db.stats.twopc_commits == before[1]  # no 2PC round
        assert db.query(
            "SELECT v FROM t WHERE k = {0}".format(key)) == [(0,)]

    def test_cross_shard_insert_routes_and_commits(self):
        db = _make()
        txn = db.begin()
        txn.execute("INSERT INTO t VALUES (100, 1), (101, 2), "
                    "(102, 3), (103, 4)")
        txn.commit()
        assert db.query("SELECT count(*) FROM t") == [(N_ROWS + 4,)]
        for k in (100, 101, 102, 103):
            shard = db.shard_map.shard_of(k)
            assert db.shards[shard].db.query(
                "SELECT count(*) FROM t WHERE k = {0}".format(k)) \
                == [(1,)]

    def test_abort_discards_every_shard_buffer(self):
        db = _make()
        txn = db.begin()
        txn.execute("UPDATE t SET v = v + 1")
        txn.abort()
        assert _snapshot(db) == ORIGINAL
        assert txn.outcome == "aborted"
        with pytest.raises(TransactionClosedError):
            txn.execute("SELECT k FROM t")

    def test_context_manager_aborts_on_exception(self):
        db = _make()
        with pytest.raises(RuntimeError, match="boom"):
            with db.begin() as txn:
                txn.execute("UPDATE t SET v = v + 1")
                raise RuntimeError("boom")
        assert txn.outcome == "aborted"
        assert _snapshot(db) == ORIGINAL

    def test_read_only_txn_closes_clean(self):
        db = _make()
        before = db.stats.twopc_commits
        with db.begin() as txn:
            assert len(txn.query("SELECT k FROM t")) == N_ROWS
        assert txn.outcome == "committed"
        assert db.stats.twopc_commits == before  # nothing to commit

    def test_moving_update_inside_transaction(self):
        """A partition-key rewrite buffered in a transaction lands the
        row on the destination shard only at commit."""
        db = _make()
        src_key = _keys_on(db, 0)[0]
        dest_key = next(k for k in range(200, 300)
                        if db.shard_map.shard_of(k) == 1)
        txn = db.begin()
        assert txn.execute("UPDATE t SET k = {0} WHERE k = {1}".format(
            dest_key, src_key)) == 1
        txn.commit()
        assert db.query("SELECT count(*) FROM t") == [(N_ROWS,)]
        assert db.shards[1].db.query(
            "SELECT v FROM t WHERE k = {0}".format(dest_key)) \
            == [(src_key * 10,)]
        assert db.shards[0].db.query(
            "SELECT count(*) FROM t WHERE k = {0}".format(src_key)) \
            == [(0,)]


class TestConflicts:
    def test_conflicting_writer_aborts_whole_transaction(self):
        """A concurrent autocommit write to one participant must abort
        the transaction on *every* shard — no partial commit."""
        db = _make()
        key0 = _keys_on(db, 0)[0]
        key1 = _keys_on(db, 1)[0]
        before = db.stats.twopc_aborts
        txn = db.begin()
        txn.execute("UPDATE t SET v = 777 WHERE k = {0}".format(key0))
        txn.execute("UPDATE t SET v = 777 WHERE k = {0}".format(key1))
        # Conflict on shard 1: shard 0 prepares first, then must roll
        # its prepare back when shard 1's validation fails.
        db.execute("UPDATE t SET v = v + 5 WHERE k = {0}".format(key1))
        with pytest.raises(ConflictError):
            txn.commit()
        assert txn.outcome == "aborted (conflict)"
        assert db.stats.twopc_aborts == before + 1
        assert db.query(
            "SELECT v FROM t WHERE k = {0}".format(key0)) \
            == [(key0 * 10,)]
        assert db.query(
            "SELECT v FROM t WHERE k = {0}".format(key1)) \
            == [(key1 * 10 + 5,)]

    def test_closed_transaction_rejects_commit(self):
        db = _make()
        txn = db.begin()
        txn.abort()
        with pytest.raises(TransactionClosedError):
            txn.commit()


class TestCrashSweep:
    def test_atomic_under_crash_at_every_commit_site(self, tmp_path):
        """Crash at every commit-path fault site, one run per point;
        recovery must always land on all-old or all-new rows."""
        faults = FaultInjector()
        dry = _make(tmp_path / "dry", faults)
        base = faults.observed()
        _run_txn(dry)
        assert _snapshot(dry) == UPDATED
        points = [(site, hit) for site, hit
                  in crash_points(faults.observed(), sites=COMMIT_SITES)
                  if hit > base.get(site, 0)]
        # 2 participants: validate x2, publish x2, apply x2, five
        # wal.appends (prepare x2, decision, decide x2), and the
        # decided-but-unshipped gap after the decision append.
        assert len(points) >= 12, points
        outcomes = set()
        for i, (site, hit) in enumerate(points):
            faults = FaultInjector()
            db = _make(tmp_path / str(i), faults)
            faults.crash_at(site, hit)
            with pytest.raises(CrashError):
                _run_txn(db)
            db.recover()
            state = _snapshot(db)
            assert state in (ORIGINAL, UPDATED), \
                "torn state after crash at {0} hit {1}".format(site, hit)
            outcomes.add("new" if state == UPDATED else "old")
        # The sweep must cross the commit point: some crashes land
        # before it (aborted) and some after (committed).
        assert outcomes == {"old", "new"}

    def test_crash_before_decision_presumed_abort(self, tmp_path):
        """Crashing the coordinator's decision append leaves prepares
        with no decision: recovery resolves them to abort."""
        faults = FaultInjector()
        db = _make(tmp_path, faults)
        base = faults.hits["wal.append"]
        faults.crash_at("wal.append", base + 3)  # the decision record
        with pytest.raises(CrashError):
            _run_txn(db)
        db.recover()
        assert _snapshot(db) == ORIGINAL

    def test_crash_between_decision_and_phase_two(self, tmp_path):
        """The narrowest in-doubt window: the coordinator crashes
        *after* force-logging ``decision: commit`` but *before*
        shipping it to any shard (site ``twopc.decided``).  Both
        participants restart holding an in-doubt prepare whose outcome
        exists only in the coordinator's log — the resolve_in_doubt
        sweep must converge BOTH shards to the committed state."""
        faults = FaultInjector()
        db = _make(tmp_path, faults)
        faults.crash_at("twopc.decided", 1)
        with pytest.raises(CrashError):
            _run_txn(db)
        # Every participant is in doubt; the decision says commit.
        for shard_id in (0, 1):
            shard = db.shards[shard_id].db
            shard.recover()
            assert shard.in_doubt == ["x000001"], shard_id
        committed = db.committed_xids()
        assert "x000001" in committed
        for shard_id in (0, 1):
            shard = db.shards[shard_id].db
            shard.resolve_in_doubt(committed)
            assert shard.in_doubt == []
        db.recover()
        assert _snapshot(db) == UPDATED

    def test_in_doubt_participant_resolved_from_decision_log(
            self, tmp_path):
        """Crash after the decision but before shard 0's decide record:
        that shard restarts in doubt and settles to commit from the
        coordinator's decision log."""
        faults = FaultInjector()
        db = _make(tmp_path, faults)
        base = faults.hits["wal.append"]
        faults.crash_at("wal.append", base + 4)  # shard 0's decide
        with pytest.raises(CrashError):
            _run_txn(db)
        shard0 = db.shards[0].db
        shard0.recover()
        assert shard0.in_doubt == ["x000001"]
        committed = db.committed_xids()
        assert "x000001" in committed
        shard0.resolve_in_doubt(committed)
        assert shard0.in_doubt == []
        db.recover()
        assert _snapshot(db) == UPDATED
