"""ShardedDatabase behaviour: routing, scatter-gather, links, merge.

The reference for every assertion is a single-node Database loaded
with the same data — sharding must be invisible to query answers.
"""

import pytest

from repro.faults import FaultInjector
from repro.sharding import (
    ShardedDatabase, ShardUnavailableError,
)
from repro.sql.database import Database
from tests.helpers import assert_same_rows

ROWS = [(k, (k * 7) % 5 + 0.25 * k, "v{0}".format(k % 4))
        for k in range(40)]


def _load(db):
    db.execute("CREATE TABLE t (k BIGINT, v DOUBLE, s VARCHAR) "
               "PARTITION BY (k)")
    db.execute("CREATE TABLE ref (k BIGINT, tag VARCHAR)")
    db.execute("INSERT INTO t VALUES " + ", ".join(
        "({0}, {1!r}, '{2}')".format(k, v, s) for k, v, s in ROWS))
    db.execute("INSERT INTO ref VALUES " + ", ".join(
        "({0}, 'tag{0}')".format(k) for k in range(0, 40, 3)))
    return db


@pytest.fixture()
def pair():
    return _load(ShardedDatabase(n_shards=4)), _load(Database())


QUERIES = [
    "SELECT k, v, s FROM t",
    "SELECT k FROM t WHERE v > 2.0",
    "SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t",
    "SELECT s, count(*), sum(k) FROM t GROUP BY s",
    "SELECT s, avg(v) FROM t WHERE k < 30 GROUP BY s "
    "HAVING count(*) >= 2",
    "SELECT DISTINCT s FROM t",
    "SELECT t.k, ref.tag FROM t JOIN ref ON t.k = ref.k",
    "SELECT ref.tag, count(*) FROM t JOIN ref ON t.k = ref.k "
    "GROUP BY ref.tag",
    "SELECT k + 1, v * 2 FROM t WHERE s = 'v1'",
    "SELECT count(*) FROM t WHERE v IS NULL",
    "SELECT k FROM t WHERE s IS NOT NULL AND k >= 35",
]


class TestScatterGatherAnswers:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_single_node(self, pair, sql):
        sharded, single = pair
        assert_same_rows(sharded.query(sql), single.query(sql),
                         context=sql)

    def test_order_by_is_totally_ordered_after_merge(self, pair):
        """Regression: a total ORDER BY must survive the shard-stream
        interleave exactly — compared position by position, not as a
        multiset."""
        sharded, single = pair
        for sql in ("SELECT k, v FROM t ORDER BY k",
                    "SELECT k, v FROM t ORDER BY v DESC, k ASC",
                    "SELECT s, k FROM t WHERE k > 5 ORDER BY k DESC",
                    "SELECT s, sum(v) FROM t GROUP BY s ORDER BY s"):
            assert_same_rows(sharded.query(sql), single.query(sql),
                             context=sql, ordered=True)

    def test_order_by_hidden_column_is_stripped(self, pair):
        sharded, single = pair
        sql = "SELECT s FROM t ORDER BY k"
        result = sharded.execute(sql)
        assert result.names == ["s"]
        assert_same_rows(result.rows(), single.query(sql), context=sql,
                         ordered=True)

    def test_order_by_limit_pushes_topk(self, pair):
        sharded, single = pair
        sql = "SELECT k FROM t ORDER BY v DESC, k ASC LIMIT 5"
        assert_same_rows(sharded.query(sql), single.query(sql),
                         context=sql, ordered=True)

    def test_distinct_aggregate_goes_through_gather(self, pair):
        sharded, single = pair
        sql = "SELECT count(DISTINCT s) FROM t"
        before = sharded.stats.gather
        assert sharded.query(sql) == single.query(sql)
        assert sharded.stats.gather == before + 1


class TestRoutingAndPruning:
    def test_key_equality_prunes_to_one_shard(self):
        db = _load(ShardedDatabase(n_shards=4))
        before = (db.stats.pruned, db.stats.scatter)
        assert db.query("SELECT v FROM t WHERE k = 17") == \
            [(ROWS[17][1],)]
        assert db.stats.pruned == before[0] + 1
        assert db.stats.scatter == before[1]  # no fan-out happened

    def test_pruned_select_only_contacts_one_shard(self):
        db = _load(ShardedDatabase(n_shards=4))
        before = db.stats.requests
        db.query("SELECT v FROM t WHERE k = 3")
        assert db.stats.requests == before + 1

    def test_reference_table_query_uses_one_shard(self):
        db = _load(ShardedDatabase(n_shards=4))
        before = (db.stats.single_shard, db.stats.requests)
        assert len(db.query("SELECT k, tag FROM ref")) == 14
        assert db.stats.single_shard == before[0] + 1
        assert db.stats.requests == before[1] + 1

    def test_insert_routes_rows_to_hash_shards(self):
        db = _load(ShardedDatabase(n_shards=4))
        for shard_id, node in enumerate(db.shards):
            local = node.db.query("SELECT k FROM t")
            assert local, "shard {0} got no rows".format(shard_id)
            assert all(db.shard_map.shard_of(k) == shard_id
                       for (k,) in local)

    def test_reference_table_is_broadcast_whole(self):
        db = _load(ShardedDatabase(n_shards=4))
        expected = sorted(db.shards[0].db.query("SELECT k FROM ref"))
        for node in db.shards[1:]:
            assert sorted(node.db.query("SELECT k FROM ref")) == expected

    def test_delete_by_key_prunes(self):
        db = _load(ShardedDatabase(n_shards=4))
        before = db.stats.pruned
        assert db.execute("DELETE FROM t WHERE k = 5") == 1
        assert db.stats.pruned == before + 1
        assert db.query("SELECT count(*) FROM t") == [(39,)]

    def test_explain_shows_plan_kind(self):
        db = _load(ShardedDatabase(n_shards=4))
        assert "SCATTER" in db.explain("SELECT count(*) FROM t")
        assert "pruned" in db.explain("SELECT v FROM t WHERE k = 2")
        assert "GATHER" in db.explain(
            "SELECT count(DISTINCT s) FROM t")

    def test_set_workers_broadcasts(self):
        db = _load(ShardedDatabase(n_shards=2))
        db.execute("SET workers = 2")
        assert all(node.db.default_workers == 2 for node in db.shards)


class TestSingleShardDegrade:
    def test_one_shard_matches_single_node_exactly(self):
        """n_shards=1 must pass every statement through unchanged —
        same rows, same order, no scatter or gather plans."""
        sharded = _load(ShardedDatabase(n_shards=1))
        single = _load(Database())
        for sql in QUERIES + ["SELECT k, v FROM t ORDER BY v, k"]:
            assert_same_rows(sharded.query(sql), single.query(sql),
                             context=sql, ordered=True)
        assert sharded.stats.scatter == 0
        assert sharded.stats.gather == 0


class TestLinkFaults:
    def test_transient_drops_retry_transparently(self):
        faults = FaultInjector()
        db = _load(ShardedDatabase(n_shards=2, faults=faults))
        hit = faults.hits["shard.ship"]
        faults.transient_at("shard.ship", hits=(hit + 1, hit + 2))
        assert_same_rows(db.query("SELECT k FROM t"),
                         [(k,) for k, _, _ in ROWS])
        assert db.stats.retries == 2

    def test_cut_link_raises_then_heals(self):
        db = _load(ShardedDatabase(n_shards=2))
        db.cut(1)
        with pytest.raises(ShardUnavailableError):
            db.query("SELECT k FROM t")
        db.heal(1)
        assert len(db.query("SELECT k FROM t")) == 40

    def test_seeded_link_faults_do_not_change_answers(self):
        faults = FaultInjector.seeded(23, {
            "shard.ship": ("transient", 0.15),
            "shard.ack": ("latency", 0.2, 3),
        })
        db = _load(ShardedDatabase(n_shards=3, faults=faults))
        single = _load(Database())
        for sql in QUERIES:
            assert_same_rows(db.query(sql), single.query(sql),
                             context=sql)
        assert db.stats.retries > 0  # the plan actually fired


class TestObservability:
    def test_tracer_sees_per_shard_spans_and_counters(self):
        from repro.observability.tracer import Tracer
        tracer = Tracer()
        db = _load(ShardedDatabase(n_shards=3, tracer=tracer))
        db.query("SELECT count(*) FROM t")
        root = tracer.roots[-1]
        shard_spans = root.find_all(name="shard.exec")
        assert len(shard_spans) == 3
        assert root.inclusive("shard_shipped_rows") >= 3

    def test_stats_count_shipped_rows_and_bytes(self):
        db = _load(ShardedDatabase(n_shards=2))
        before = (db.stats.shipped_rows, db.stats.shipped_bytes)
        db.query("SELECT k, v FROM t")
        assert db.stats.shipped_rows == before[0] + 40
        assert db.stats.shipped_bytes > before[1]


class TestReplicatedShards:
    def test_answers_survive_a_shard_primary_failover(self):
        db = _load(ShardedDatabase(n_shards=2, replicas=2))
        single = _load(Database())
        group = db.shards[0].group
        group.kill(0)
        group.await_failover()
        for sql in ("SELECT k, v, s FROM t",
                    "SELECT s, count(*) FROM t GROUP BY s"):
            assert_same_rows(db.query(sql), single.query(sql),
                             context=sql)

    def test_transactions_require_plain_shards(self):
        db = ShardedDatabase(n_shards=2, replicas=1)
        with pytest.raises(NotImplementedError):
            db.begin()
