"""Tests for data regions, basic patterns, and cost composition."""

import numpy as np
import pytest

from repro.costmodel import (
    Cost,
    DataRegion,
    interleaved_multi_cursor,
    random_traversal,
    repeated_random_access,
    sequential_traversal,
)
from repro.hardware import TINY, SCALED_DEFAULT, trace


class TestDataRegion:
    def test_geometry(self):
        r = DataRegion(100, 8)
        assert r.nbytes == 800
        assert r.lines(64) == 13  # ceil(800/64)

    def test_empty(self):
        assert DataRegion(0, 8).lines(64) == 0


class TestCost:
    def test_add_and_sum(self):
        a = Cost().add("L1", sequential=10, random=2)
        b = Cost().add("L1", random=3).add("L2", sequential=1)
        c = a + b
        assert c.misses["L1"] == (10, 5)
        assert c.misses["L2"] == (1, 0)
        assert c.level_misses("L1") == 15

    def test_scaled(self):
        c = Cost().add("L1", sequential=4, random=2).scaled(3)
        assert c.misses["L1"] == (12, 6)

    def test_cycles_uses_profile_latencies(self):
        c = Cost().add("L1", sequential=1, random=1)
        c.add("L2", random=1).add("TLB", random=2)
        cycles = c.cycles(TINY)
        assert cycles == 4 + 10 + 100 + 2 * 30


class TestSequentialTraversal:
    def test_exactness_against_simulator(self):
        """For a pure sequential pass, the model is exact per level."""
        n = 512
        region = DataRegion(n, 8)
        predicted = sequential_traversal(region, TINY)
        h = TINY.make_hierarchy()
        h.access(trace.sequential(0, n, 8))
        rep = h.report()
        for name in ("L1", "L2"):
            assert predicted.level_misses(name) == \
                rep.cache_stats[name].misses
        assert predicted.level_misses("TLB") == rep.tlb_stats.misses


class TestRandomTraversal:
    def test_fits_in_cache_only_compulsory(self):
        region = DataRegion(32, 8)  # 256 bytes fits TINY L2 (4 KB)
        cost = random_traversal(region, TINY)
        assert cost.level_misses("L2") == region.lines(64)

    def test_exceeds_cache_roughly_one_miss_per_touch(self):
        region = DataRegion(8192, 8)  # 64 KB >> 4 KB
        cost = random_traversal(region, TINY)
        l2 = cost.level_misses("L2")
        assert 0.8 * 8192 < l2 <= 8192 + region.lines(64)

    def test_simulator_agreement_within_factor_two(self):
        region = DataRegion(4096, 8)
        predicted = random_traversal(region, TINY)
        h = TINY.make_hierarchy()
        rng = np.random.default_rng(0)
        h.access(trace.random_permutation(rng, 0, 4096, 8))
        simulated = h.report().cache_stats["L2"].misses
        assert simulated / 2 < predicted.level_misses("L2") < simulated * 2


class TestRepeatedRandomAccess:
    def test_fits_capped_by_lines(self):
        region = DataRegion(64, 8)  # 512 B fits
        cost = repeated_random_access(region, 10_000, TINY)
        assert cost.level_misses("L2") == region.lines(64)

    def test_few_accesses_capped_by_accesses(self):
        region = DataRegion(64, 8)
        cost = repeated_random_access(region, 3, TINY)
        assert cost.level_misses("L2") == 3

    def test_zero_accesses(self):
        assert repeated_random_access(DataRegion(64, 8), 0,
                                      TINY).misses == {}

    def test_large_region_most_accesses_miss(self):
        region = DataRegion(1 << 16, 8)  # 512 KB >> 4 KB
        cost = repeated_random_access(region, 1000, TINY)
        assert cost.level_misses("L2") > 900


class TestInterleavedMultiCursor:
    def test_few_cursors_behave_sequential(self):
        region = DataRegion(4096, 8)
        seq = sequential_traversal(region, TINY)
        multi = interleaved_multi_cursor(region, 4, TINY)
        assert multi.level_misses("L2") == seq.level_misses("L2")

    def test_thrashing_zone_explodes(self):
        region = DataRegion(4096, 8)
        few = interleaved_multi_cursor(region, 4, TINY)
        many = interleaved_multi_cursor(region, 1024, TINY)
        assert many.level_misses("L2") > 5 * few.level_misses("L2")

    def test_cost_monotone_in_cursors(self):
        region = DataRegion(8192, 8)
        costs = [interleaved_multi_cursor(region, h, SCALED_DEFAULT)
                 .cycles(SCALED_DEFAULT)
                 for h in (2, 8, 32, 256, 4096)]
        assert costs == sorted(costs)

    def test_simulator_agreement_sequential_zone(self):
        """Within the stream budget, model ~ simulator on the scatter."""
        n = 4096
        region = DataRegion(n, 8)
        predicted = interleaved_multi_cursor(region, 8, TINY)
        # Simulate an 8-cursor scatter: values round-robin over 8
        # regions of n/8 items each.
        h = TINY.make_hierarchy()
        part = np.arange(n) % 8
        order = np.argsort(part, kind="stable")
        dest = np.empty(n, dtype=np.int64)
        dest[order] = np.arange(n)
        h.access(dest * 8)
        simulated = h.report().cache_stats["L2"].misses
        predicted_l2 = predicted.level_misses("L2")
        assert simulated / 2 < predicted_l2 < simulated * 2
