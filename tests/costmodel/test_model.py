"""Validation of the algorithm predictors against the trace simulator."""

import numpy as np
import pytest

from repro.costmodel import (
    best_partitioning,
    predict_partitioned_hash_join,
    predict_radix_cluster,
    predict_simple_hash_join,
)
from repro.costmodel.model import total_cycles
from repro.hardware import SCALED_DEFAULT, TINY
from repro.joins import partitioned_hash_join, radix_cluster, \
    simple_hash_join
from repro.joins.radix_cluster import split_bits


def simulate_radix_cluster(n, bits, passes, profile):
    rng = np.random.default_rng(42)
    values = rng.integers(0, 1 << 31, n)
    h = profile.make_hierarchy()
    radix_cluster(values, bits, passes, hierarchy=h)
    return h


def simulate_simple_join(n, profile):
    rng = np.random.default_rng(42)
    left = rng.permutation(n)
    right = rng.permutation(n)
    h = profile.make_hierarchy()
    simple_hash_join(left, right, hierarchy=h)
    return h


class TestRadixClusterPrediction:
    @pytest.mark.parametrize("bits,passes", [(2, 1), (6, 1), (6, 2),
                                             (10, 2)])
    def test_total_cycles_within_factor_two(self, bits, passes):
        n = 1 << 14
        pass_bits = split_bits(bits, passes)
        cost, cpu = predict_radix_cluster(n, bits, pass_bits,
                                          SCALED_DEFAULT)
        predicted = cost.cycles(SCALED_DEFAULT) + cpu
        h = simulate_radix_cluster(n, bits, passes, SCALED_DEFAULT)
        simulated = h.total_cycles
        assert simulated / 2 < predicted < simulated * 2

    def test_predicts_thrashing_crossover(self):
        """The model reproduces E1's shape: beyond the TLB/line budget,
        one-pass clustering costs explode while two-pass stays flat."""
        n = 1 << 15
        cheap_bits = 4
        thrash_bits = 10  # 1024 cursors of >= line-sized regions
        one_cheap = total_cycles(predict_radix_cluster(
            n, cheap_bits, [cheap_bits], SCALED_DEFAULT), SCALED_DEFAULT)
        one_thrash = total_cycles(predict_radix_cluster(
            n, thrash_bits, [thrash_bits], SCALED_DEFAULT), SCALED_DEFAULT)
        two_pass = total_cycles(predict_radix_cluster(
            n, thrash_bits, split_bits(thrash_bits, 2), SCALED_DEFAULT),
            SCALED_DEFAULT)
        assert one_thrash > 3 * one_cheap
        assert two_pass < one_thrash / 2

    def test_zero_bits_costs_nothing(self):
        cost, cpu = predict_radix_cluster(1000, 0, [0], TINY)
        assert cost.misses == {}
        assert cpu == 0


class TestHashJoinPrediction:
    def test_simple_join_within_factor_two(self):
        n = 1 << 14
        cost, cpu = predict_simple_hash_join(n, n, SCALED_DEFAULT)
        predicted = cost.cycles(SCALED_DEFAULT) + cpu
        simulated = simulate_simple_join(n, SCALED_DEFAULT).total_cycles
        assert simulated / 2 < predicted < simulated * 2

    def test_partitioned_cheaper_than_simple_in_model(self):
        """The model itself predicts the Section 4.2 win."""
        n = 1 << 16
        simple = total_cycles(
            predict_simple_hash_join(n, n, SCALED_DEFAULT), SCALED_DEFAULT)
        bits, pass_bits, part = best_partitioning(n, n, SCALED_DEFAULT)
        assert part < simple / 2
        assert bits > 0

    def test_cpu_optimization_term(self):
        n = 1 << 12
        _, cpu_fast = predict_simple_hash_join(n, n, SCALED_DEFAULT,
                                               cpu_optimized=True)
        _, cpu_slow = predict_simple_hash_join(n, n, SCALED_DEFAULT,
                                               cpu_optimized=False)
        assert cpu_slow == 4 * cpu_fast


class TestTuningAgreement:
    """E4's punchline: the model picks (close to) the simulator's best
    tuning — the automation Section 4.4 promises."""

    def test_model_argmin_close_to_simulated_argmin(self):
        n = 1 << 13
        rng = np.random.default_rng(7)
        left = rng.permutation(n)
        right = rng.permutation(n)
        candidates = [(0, (0,)), (4, (4,)), (8, (8,)), (8, (4, 4)),
                      (12, (6, 6))]
        simulated = {}
        predicted = {}
        for bits, pass_bits in candidates:
            h = SCALED_DEFAULT.make_hierarchy()
            partitioned_hash_join(left, right, bits=bits,
                                  passes=list(pass_bits), hierarchy=h)
            simulated[(bits, pass_bits)] = h.total_cycles
            predicted[(bits, pass_bits)] = total_cycles(
                predict_partitioned_hash_join(n, n, bits, pass_bits,
                                              SCALED_DEFAULT),
                SCALED_DEFAULT)
        sim_best = min(simulated, key=simulated.get)
        model_best = min(predicted, key=predicted.get)
        # The model's choice must be within 50% of the true optimum.
        assert simulated[model_best] <= 1.5 * simulated[sim_best]
