"""TLP metamorphic oracle over the plan-fragment compiler.

The partition identity Q(p) ⊎ Q(NOT p) ⊎ Q(p IS NULL) == Q(true) is
checked with every leg running ``compile=True`` — the three WHERE
variants of one predicate normalize to *different* plan shapes (the
NOT / IS NULL structure is structural), while the same variant across
predicates of one template normalizes to the *same* shape with
different parameters.  One band therefore exercises both sides of the
kernel cache: shape sharing and parameter isolation.

The cache-poisoning regression pins the isolation side down exactly:
two same-shape, different-constant queries must hit one kernel and
still produce their own results.

CI shifts the seed window with ``COMPILE_SEED`` (the compiled bands
move together).
"""

import os
from collections import Counter

import pytest

from repro.sql.database import Database
from tests.helpers import normalize_row
from tests.oracle.generator import QueryGenerator

SEED_BASE = int(os.environ.get("COMPILE_SEED", "0"))
SEEDS = list(range(SEED_BASE + 1, SEED_BASE + 26))
FAST_SEEDS = SEEDS[:6]
PREDICATES_PER_TABLE = 3


def _make_database(seed):
    kind = seed % 3
    if kind == 0:
        return Database.with_cracking()
    if kind == 1:
        return Database.with_recycling()
    return Database()


def _multiset(rows):
    return Counter(normalize_row(r) for r in rows)


def _check_partition(db, table, predicate, label):
    cols = ", ".join(table.column_names)
    whole = _multiset(db.query(
        "SELECT {0} FROM {1}".format(cols, table.name), compile=True))
    part = Counter()
    for variant in ("({0})", "NOT ({0})", "({0}) IS NULL"):
        where = variant.format(predicate)
        part += _multiset(db.query(
            "SELECT {0} FROM {1} WHERE {2}".format(
                cols, table.name, where), compile=True))
    assert part == whole, (
        "{0}: compiled TLP partitions of p={1!r} do not rebuild the "
        "table (missing {2}, extra {3})".format(
            label, predicate, list((whole - part).elements())[:5],
            list((part - whole).elements())[:5]))
    total = db.query("SELECT count(*) FROM {0}".format(table.name),
                     compile=True)[0][0]
    split = sum(db.query(
        "SELECT count(*) FROM {0} WHERE {1}".format(
            table.name, variant.format(predicate)), compile=True)[0][0]
        for variant in ("({0})", "NOT ({0})", "({0}) IS NULL"))
    assert split == total, \
        "{0}: compiled count(*) partitions of p={1!r} sum to {2}, " \
        "not {3}".format(label, predicate, split, total)


def _run_band(seed):
    generator = QueryGenerator(seed)
    db = _make_database(seed)
    for statement in generator.setup_statements():
        db.execute(statement)
    for t_index, table in enumerate(generator.tables):
        for i in range(PREDICATES_PER_TABLE):
            predicate = generator.gen_predicate(
                table, case_id=t_index * PREDICATES_PER_TABLE + i)
            _check_partition(db, table, predicate,
                             "seed={0} #{1}".format(seed, i))


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_compiled_tlp_partitions_rebuild_the_table(seed):
    _run_band(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS[len(FAST_SEEDS):])
def test_compiled_tlp_partitions_rebuild_the_table_full(seed):
    _run_band(seed)


def test_same_shape_different_constants_do_not_share_results():
    """Cache-poisoning regression.  Two queries that differ only in a
    literal normalize to one plan shape and must share one compiled
    kernel (second query hits the cache) — but each run receives its
    own parameter vector, so the answers differ and match the
    interpreter exactly.  A compiler that bakes constants into the
    kernel returns the first query's answer for the second."""
    db = Database()
    db.execute("CREATE TABLE p (k INTEGER, v INTEGER)")
    db.execute("INSERT INTO p VALUES {0}".format(
        ", ".join("({0}, {1})".format(i, i * 3 % 17)
                  for i in range(200))))
    first = "SELECT count(*) FROM p WHERE k > 50"
    second = "SELECT count(*) FROM p WHERE k > 150"

    a = db.query(first, compile=True)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_misses"] == 1
    assert stats["kernel_cache_hits"] == 0

    b = db.query(second, compile=True)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_misses"] == 1, \
        "same-shape query recompiled instead of hitting the cache"
    assert stats["kernel_cache_hits"] == 1

    assert a == db.query(first)
    assert b == db.query(second)
    assert a == [(149,)] and b == [(49,)]

    # Same shape again with a fresh constant, interleaved both ways:
    # results stay independent whichever entry is warm.
    third = "SELECT count(*) FROM p WHERE k > 0"
    c = db.query(third, compile=True)
    assert c == [(199,)]
    assert db.query(first, compile=True) == a
    assert db.query(second, compile=True) == b


def test_string_constants_are_parameterized_too():
    """String literals go through the parameter vector like numbers —
    a kernel must never pin the interned offset of its first query's
    literal."""
    db = Database()
    db.execute("CREATE TABLE s (k INTEGER, name TEXT)")
    db.execute("INSERT INTO s VALUES (1, 'ann'), (2, 'bob'), "
               "(3, 'ann'), (4, 'cal'), (5, 'bob'), (6, 'ann')")
    a = db.query("SELECT k FROM s WHERE name = 'ann'", compile=True)
    b = db.query("SELECT k FROM s WHERE name = 'bob'", compile=True)
    stats = db.plan_compiler.counters()
    assert stats["kernel_cache_hits"] >= 1
    assert sorted(a) == [(1,), (3,), (6,)]
    assert sorted(b) == [(2,), (5,)]
