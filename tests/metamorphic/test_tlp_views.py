"""TLP metamorphic oracle over materialized views.

The Ternary Logic Partitioning identity, materialized: the three WHERE
variants of a predicate ``p`` — true, false and unknown — become three
materialized views, and after every committed DML batch their union
must rebuild the base table exactly:

    V(p)  UNION ALL  V(NOT p)  UNION ALL  V(p IS NULL)  ==  T

Unlike the query-time TLP suite this checks *incremental maintenance*:
each delta is routed through three independently maintained operators,
so a weight mis-applied in any one partition (a row claimed by two
views, or by none) breaks the identity immediately, with no reference
implementation in the loop.

CI shifts the seed window with ``TLP_SEED``, sharing the query-time
suite's knob.
"""

import os
from collections import Counter

import pytest

from repro.sql.database import Database
from tests.helpers import normalize_row
from tests.oracle.generator import QueryGenerator

SEED_BASE = int(os.environ.get("TLP_SEED", "0"))
SEEDS = list(range(SEED_BASE + 1, SEED_BASE + 13))
VARIANTS = ("({0})", "NOT ({0})", "({0}) IS NULL")


def _make_single(seed):
    kind = seed % 3
    if kind == 0:
        return Database.with_cracking()
    if kind == 1:
        return Database.with_recycling()
    return Database()


def _multiset(rows):
    return Counter(normalize_row(r) for r in rows)


def _materialize_partitions(db, table, predicate):
    cols = ", ".join(table.column_names)
    names = []
    for v_index, variant in enumerate(VARIANTS):
        name = "tlp_{0}_{1}".format(table.name, v_index)
        db.execute(
            "CREATE MATERIALIZED VIEW {0} AS "
            "SELECT {1} FROM {2} WHERE {3}".format(
                name, cols, table.name, variant.format(predicate)))
        names.append(name)
    return names


def _assert_union_rebuilds(db, table, views, label):
    whole = _multiset(db.query("SELECT {0} FROM {1}".format(
        ", ".join(table.column_names), table.name)))
    part = Counter()
    for name in views:
        part += _multiset(db.views.contents(name))
    assert part == whole, (
        "{0}: materialized TLP partitions do not rebuild {1} "
        "(missing {2}, extra {3})".format(
            label, table.name, list((whole - part).elements())[:5],
            list((part - whole).elements())[:5]))


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_materialized_tlp_partitions_track_dml(seed):
    generator = QueryGenerator(seed)
    db = _make_single(seed)
    for statement in generator.setup_statements():
        db.execute(statement)
    partitioned = []
    for t_index, table in enumerate(generator.tables):
        predicate = generator.gen_predicate(table, case_id=t_index)
        views = _materialize_partitions(db, table, predicate)
        partitioned.append((table, predicate, views))
        _assert_union_rebuilds(
            db, table, views,
            "seed={0} initial p={1!r}".format(seed, predicate))
    for i in range(3):
        script = generator.gen_dml_script(case_id=100 + i)
        for sql in script:
            db.execute(sql)
            for table, predicate, views in partitioned:
                _assert_union_rebuilds(
                    db, table, views,
                    "seed={0} script#{1} p={2!r} after {3!r}".format(
                        seed, i, predicate, sql))


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_materialized_tlp_survives_replay(seed):
    """The identity must also hold on a WAL-recovered engine: replay
    rebuilds all three partitions through the same maintenance path."""
    from repro.wal import WriteAheadLog

    generator = QueryGenerator(seed)
    db = Database(wal=WriteAheadLog())
    for statement in generator.setup_statements():
        db.execute(statement)
    table = generator.tables[0]
    predicate = generator.gen_predicate(table, case_id=0)
    views = _materialize_partitions(db, table, predicate)
    for sql in generator.gen_dml_script(case_id=0):
        db.execute(sql)
    db.recover()
    _assert_union_rebuilds(db, table, views,
                           "seed={0} after replay".format(seed))
