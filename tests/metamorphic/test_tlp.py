"""Ternary Logic Partitioning (TLP) metamorphic oracle.

For any predicate ``p``, SQL's three-valued logic partitions a table
into exactly three disjoint row sets — ``p`` true, false, and unknown:

    Q(p)  UNION ALL  Q(NOT p)  UNION ALL  Q(p IS NULL)  ==  Q(true)

The identity needs no reference implementation: the engine is checked
against *itself*, so it catches predicate-evaluation bugs (selection
vectors, candidate propagation, NOT pushdown, shard pruning) that a
differential oracle sharing the same predicate code would miss.

Every case runs against the single-node engine (rotating optimizer
pipelines) and a ShardedDatabase, where each WHERE variant scatters
independently — a pruning or merge bug breaks the partition identity.

25 seeds x 4 tables-or-predicates x 2 engines >= 200 checked cases;
CI shifts the seed window with ``TLP_SEED``.
"""

import os
from collections import Counter

import pytest

from repro.sharding import ShardedDatabase
from repro.sql.database import Database
from tests.helpers import normalize_row
from tests.oracle.generator import QueryGenerator

SEED_BASE = int(os.environ.get("TLP_SEED", "0"))
SEEDS = list(range(SEED_BASE + 1, SEED_BASE + 26))
PREDICATES_PER_TABLE = 4


def _make_single(seed):
    kind = seed % 3
    if kind == 0:
        return Database.with_cracking()
    if kind == 1:
        return Database.with_recycling()
    return Database()


def _multiset(rows):
    return Counter(normalize_row(r) for r in rows)


def _check_partition(db, table, predicate, label):
    cols = ", ".join(table.column_names)
    whole = _multiset(db.query(
        "SELECT {0} FROM {1}".format(cols, table.name)))
    part = Counter()
    for variant in ("({0})", "NOT ({0})", "({0}) IS NULL"):
        where = variant.format(predicate)
        part += _multiset(db.query("SELECT {0} FROM {1} WHERE {2}".format(
            cols, table.name, where)))
    assert part == whole, (
        "{0}: TLP partitions of p={1!r} do not rebuild the table "
        "(missing {2}, extra {3})".format(
            label, predicate, list((whole - part).elements())[:5],
            list((part - whole).elements())[:5]))
    # The same identity on an aggregate: counts must add up exactly.
    total = db.query(
        "SELECT count(*) FROM {0}".format(table.name))[0][0]
    split = sum(db.query(
        "SELECT count(*) FROM {0} WHERE {1}".format(
            table.name, variant.format(predicate)))[0][0]
        for variant in ("({0})", "NOT ({0})", "({0}) IS NULL"))
    assert split == total, \
        "{0}: count(*) partitions of p={1!r} sum to {2}, not {3}".format(
            label, predicate, split, total)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_tlp_partitions_rebuild_the_table(seed):
    generator = QueryGenerator(seed)
    single = _make_single(seed)
    sharded = ShardedDatabase(n_shards=2 + seed % 3)
    for table in generator.tables:
        single.execute(table.create_sql())
        sharded.execute(table.create_sql(
            partition_key=table.column_names[0]))
        if table.rows:
            single.execute(table.insert_sql())
            sharded.execute(table.insert_sql())
    for t_index, table in enumerate(generator.tables):
        for i in range(PREDICATES_PER_TABLE):
            predicate = generator.gen_predicate(
                table, case_id=t_index * PREDICATES_PER_TABLE + i)
            _check_partition(
                single, table, predicate,
                "seed={0} single #{1}".format(seed, i))
            _check_partition(
                sharded, table, predicate,
                "seed={0} sharded({1}) #{2}".format(
                    seed, sharded.n_shards, i))


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_tlp_null_partition_is_empty_without_nulls(seed):
    """The generated data is NULL-free and comparisons never return
    unknown, so the third partition must contribute zero rows — if it
    ever does, IS NULL itself is broken."""
    generator = QueryGenerator(seed)
    db = Database()
    for statement in generator.setup_statements():
        db.execute(statement)
    for t_index, table in enumerate(generator.tables):
        predicate = generator.gen_predicate(table, case_id=t_index)
        rows = db.query("SELECT count(*) FROM {0} WHERE ({1}) IS NULL"
                        .format(table.name, predicate))
        assert rows == [(0,)]
