"""The chaos-sweep acceptance: across >= 20 seeded crash/partition
schedules, sync-acked transactions are never lost, failover always
elects the most-caught-up candidate, and no divergent LSN survives the
post-failover catch-up.

CI fans this file out over a seed matrix via ``FAULT_SWEEP_SEED``
(each matrix entry sweeps a disjoint band of 20+ seeds).
"""

import os

import pytest

from repro.replication import chaos_sweep, run_chaos_schedule

SEED_BASE = int(os.environ.get("FAULT_SWEEP_SEED", "0")) * 1000


@pytest.mark.slow
class TestChaosSweep:
    def test_sync_sweep_20_schedules(self):
        reports = chaos_sweep(SEED_BASE, n_schedules=20, mode="sync")
        failed = [r.summary() for r in reports if not r.ok]
        assert not failed, "\n".join(failed)
        # The sweep must actually exercise chaos, not ride easy seeds.
        assert sum(r.crashes for r in reports) > 0
        assert sum(r.partitions for r in reports) > 0
        assert sum(r.failovers for r in reports) > 0

    def test_async_sweep_20_schedules(self):
        reports = chaos_sweep(SEED_BASE + 500, n_schedules=20,
                              mode="async")
        failed = [r.summary() for r in reports if not r.ok]
        assert not failed, "\n".join(failed)
        assert sum(r.failovers for r in reports) > 0

    def test_schedules_are_reproducible(self):
        a = run_chaos_schedule(SEED_BASE + 7)
        b = run_chaos_schedule(SEED_BASE + 7)
        assert a.summary() == b.summary()
        assert a.ticks == b.ticks


class TestChaosSchedule:
    def test_report_counts_are_consistent(self):
        r = run_chaos_schedule(SEED_BASE + 3)
        assert r.txns_acked + r.txns_unknown <= r.txns_attempted
        assert r.txns_attempted == 30
        assert r.ok

    def test_heavier_chaos_still_safe(self):
        r = run_chaos_schedule(SEED_BASE + 11, crash_rate=0.3,
                               partition_rate=0.2, drop_rate=0.15)
        assert r.ok, r.summary()

    def test_five_node_cluster(self):
        r = run_chaos_schedule(SEED_BASE + 5, n_replicas=4, n_txns=20)
        assert r.ok, r.summary()
