"""ReplicationGroup behaviour under friendly skies: shipping, durability
modes, read routing, catch-up and the zero-replica degradation."""

import pytest

from repro.faults import FaultInjector
from repro.observability.tracer import Tracer
from repro.replication import (
    NotPrimaryError, QuorumTimeout, ReplicationGroup,
)
from tests.helpers import assert_same_rows


def seeded_group(n_replicas=2, mode="sync", **kwargs):
    g = ReplicationGroup(n_replicas=n_replicas, mode=mode, **kwargs)
    g.execute("CREATE TABLE t (k INT, v INT)")
    return g


class TestShipping:
    def test_sync_commit_replicates_before_returning(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        # Quorum (primary + 1 of 2 replicas) must hold the entry.
        holders = [n for n in g.nodes if n.last_lsn == g.primary.last_lsn]
        assert len(holders) >= g.quorum
        assert g.commit_lsn == g.primary.last_lsn

    def test_async_commit_returns_before_replication(self):
        g = seeded_group(mode="async")
        g.execute("INSERT INTO t VALUES (1, 10)")
        assert g.max_lag() > 0        # replicas have not heard yet
        g.drain()
        assert g.max_lag() == 0
        for n in g.nodes:
            assert n.db.query("SELECT k, v FROM t") == [(1, 10)]

    def test_all_statement_kinds_replicate(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        g.execute("UPDATE t SET v = v + 1 WHERE k < 3")
        g.execute("DELETE FROM t WHERE k = 2")
        g.drain()
        want = [(1, 11), (3, 30)]
        for n in g.nodes:
            assert_same_rows(n.db.query("SELECT k, v FROM t"), want)
        assert g.divergence_report() == []

    def test_replica_logs_match_checksum_for_checksum(self):
        g = seeded_group()
        for i in range(5):
            g.execute("INSERT INTO t VALUES ({0}, {0})".format(i))
        g.drain()
        primary = g.primary
        for n in g.nodes:
            for lsn in range(primary.last_lsn + 1):
                assert n.log.checksum_at(lsn) == \
                    primary.log.checksum_at(lsn)

    def test_shipping_counts_bytes_and_entries(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.drain()
        assert g.stats.shipped_entries >= 2   # 2 records x 2 replicas
        assert g.stats.shipped_bytes > 0
        assert g.stats.acks > 0

    def test_replicated_transaction_commits_under_quorum(self):
        g = seeded_group()
        with g.begin() as txn:
            txn.execute("INSERT INTO t VALUES (7, 70)")
            txn.execute("INSERT INTO t VALUES (8, 80)")
        assert txn.outcome == "committed"
        assert g.commit_lsn == g.primary.last_lsn
        g.drain()
        for n in g.nodes:
            assert_same_rows(n.db.query("SELECT k, v FROM t"),
                             [(7, 70), (8, 80)])

    def test_transaction_abort_ships_nothing(self):
        g = seeded_group()
        shipped = g.stats.shipped_entries
        with pytest.raises(ZeroDivisionError):
            with g.begin() as txn:
                txn.execute("INSERT INTO t VALUES (9, 90)")
                raise ZeroDivisionError()
        assert txn.outcome == "aborted"
        g.drain()
        assert g.query("SELECT k, v FROM t") == []


class TestQuorum:
    def test_sync_commit_times_out_without_quorum(self):
        g = seeded_group(sync_timeout=10)
        g.kill(1)
        g.kill(2)   # no replica can ack: quorum of 2 is unreachable
        with pytest.raises(QuorumTimeout):
            g.execute("INSERT INTO t VALUES (1, 10)")
        assert g.stats.quorum_timeouts == 1
        # The entry is in the primary's log — fate unknown, not lost.
        assert g.primary.last_lsn > g.commit_lsn

    def test_unacked_commit_lands_once_replicas_return(self):
        g = seeded_group(sync_timeout=10)
        g.kill(1)
        g.kill(2)
        with pytest.raises(QuorumTimeout):
            g.execute("INSERT INTO t VALUES (1, 10)")
        g.restart(1)
        g.restart(2)
        g.drain()
        assert g.commit_lsn == g.primary.last_lsn
        for n in g.nodes:
            assert n.db.query("SELECT k, v FROM t") == [(1, 10)]


class TestReadRouting:
    def test_selects_load_balance_across_replicas(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.drain()
        for _ in range(4):
            assert g.query("SELECT k, v FROM t") == [(1, 10)]
        assert g.stats.reads_replica == 4
        assert g.stats.reads_primary == 0

    def test_lagging_replicas_not_read(self):
        g = seeded_group(mode="async")
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.commit_lsn = g.primary.last_lsn  # require the freshest read
        # No ticks: replicas lag, so the read must hit the primary.
        assert g.query("SELECT k, v FROM t") == [(1, 10)]
        assert g.stats.reads_primary == 1

    def test_read_your_writes_session(self):
        g = seeded_group(mode="async")
        session = g.session()
        session.execute("INSERT INTO t VALUES (1, 10)")
        # Replicas have not applied the write yet; the session read
        # must still observe it (routes to a caught-up node).
        assert session.query("SELECT k, v FROM t") == [(1, 10)]
        g.drain()
        assert session.query("SELECT k, v FROM t") == [(1, 10)]

    def test_plain_reads_may_lag_but_sessions_do_not(self):
        g = seeded_group(mode="async")
        g.execute("INSERT INTO t VALUES (1, 10)")
        # A plain read (no session) may legally see the older state.
        plain = g.query("SELECT count(*) FROM t")
        assert plain in ([(0,)], [(1,)])


class TestCatchUp:
    def test_restarted_replica_catches_up_from_its_lsn(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.drain()
        g.kill(2)
        for i in range(2, 6):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        g.restart(2)
        mid = g.nodes[2].last_lsn
        assert 0 <= mid < g.primary.last_lsn  # genuinely behind
        g.drain()
        assert g.nodes[2].last_lsn == g.primary.last_lsn
        assert_same_rows(g.nodes[2].db.query("SELECT k, v FROM t"),
                         g.primary.db.query("SELECT k, v FROM t"))

    def test_empty_replica_full_catchup(self):
        g = seeded_group()
        for i in range(20):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        fresh = g.restart(2)   # recover + resync is a no-op for a
        g.drain()              # healthy node; catch-up from LSN 0 is
        assert fresh.last_lsn == g.primary.last_lsn


class TestZeroReplicaDegradation:
    """A group with no replicas is exactly the single-node Database."""

    def test_writes_commit_instantly(self):
        g = ReplicationGroup(n_replicas=0)
        g.execute("CREATE TABLE t (k INT)")
        g.execute("INSERT INTO t VALUES (1)")
        assert g.clock.now == 0          # no ticks were needed
        assert g.commit_lsn == g.primary.last_lsn

    def test_matches_plain_database(self):
        from repro.sql.database import Database
        from repro.wal import WriteAheadLog
        g = ReplicationGroup(n_replicas=0)
        db = Database(wal=WriteAheadLog())
        for target in (g, db):
            target.execute("CREATE TABLE t (k INT, v INT)")
            target.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
            target.execute("UPDATE t SET v = 0 WHERE k = 1")
        assert g.query("SELECT k, v FROM t") == \
            db.query("SELECT k, v FROM t")

    def test_reads_hit_the_primary(self):
        g = ReplicationGroup(n_replicas=0)
        g.execute("CREATE TABLE t (k INT)")
        g.query("SELECT k FROM t")
        assert g.stats.reads_primary == 1

    def test_never_fails_over(self):
        g = ReplicationGroup(n_replicas=0)
        g.execute("CREATE TABLE t (k INT)")
        g.tick(50)
        assert g.stats.failovers == 0
        assert g.primary is g.nodes[0]


class TestFencedLogWrites:
    def test_unstamped_append_on_fenced_log_rejected(self):
        g = seeded_group()
        g.nodes[1].log.stamp = None   # replicas are fenced by default
        with pytest.raises(NotPrimaryError):
            g.nodes[1].log.append({"kind": "commit", "ops": []})


class TestObservability:
    def test_write_span_carries_replication_counters(self):
        tracer = Tracer()
        g = ReplicationGroup(n_replicas=2, tracer=tracer)
        g.execute("CREATE TABLE t (k INT)")
        g.execute("INSERT INTO t VALUES (1)")
        tracer.end_all()
        spans = [s for root in tracer.roots
                 for s in root.walk() if s.name == "repl.write"]
        assert spans
        last = spans[-1]
        assert last.counters["repl_acked_lsn"] == g.commit_lsn
        assert "repl_lag" in last.counters
        totals = {}
        for root in tracer.roots:
            for s in root.walk():
                for k, v in s.counters.items():
                    totals[k] = totals.get(k, 0) + v
        assert totals.get("repl_shipped_bytes", 0) > 0

    def test_read_span_names_the_serving_node(self):
        tracer = Tracer()
        g = ReplicationGroup(n_replicas=1, tracer=tracer)
        g.execute("CREATE TABLE t (k INT)")
        g.drain()
        g.query("SELECT k FROM t")
        tracer.end_all()
        reads = [s for root in tracer.roots
                 for s in root.walk() if s.name == "repl.read"]
        assert reads and "node" in reads[-1].attrs
