"""Property-based replication invariants (Hypothesis).

The generator builds arbitrary interleavings of writes, primary
crashes/kills, link partitions and heals; the properties assert the
ISSUE's safety contract: sync-acked transactions are present after any
failover, no replica diverges from the fenced prefix, and elections
only ever promote a most-caught-up candidate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CrashError
from repro.replication import (
    NoPrimaryError, QuorumTimeout, ReplicationGroup,
)
from repro.replication.chaos import CRASH_SITES

# One schedule step: (op, payload)
STEP = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 999)),
    st.tuples(st.just("crash"), st.sampled_from(CRASH_SITES)),
    st.tuples(st.just("kill"), st.integers(0, 2)),
    st.tuples(st.just("restart"), st.integers(0, 2)),
    st.tuples(st.just("partition"),
              st.tuples(st.integers(0, 2), st.integers(0, 2))),
    st.tuples(st.just("heal"), st.just(None)),
    st.tuples(st.just("tick"), st.integers(1, 6)),
)


def apply_schedule(group, steps):
    """Drive the cluster through a schedule; returns the keys of every
    transaction the cluster *acknowledged* (quorum-acked: sync mode)."""
    acked = []
    key = 0
    for op, arg in steps:
        if op == "write":
            key += 1
            try:
                group.execute(
                    "INSERT INTO t VALUES ({0}, {1})".format(key, arg))
            except (CrashError, QuorumTimeout, NoPrimaryError):
                continue   # fate unknown (crash) or no leader: not acked
            acked.append(key)
        elif op == "crash":
            node = group.primary
            if node is not None and node.alive:
                node.faults.crash_at(arg, hit=node.faults.hits[arg] + 1)
        elif op == "kill":
            alive = [n for n in group.nodes if n.alive]
            if len(alive) > group.quorum:   # never lose a majority
                group.kill(alive[arg % len(alive)].node_id)
        elif op == "restart":
            dead = [n for n in group.nodes if not n.alive]
            if dead:
                group.restart(dead[arg % len(dead)].node_id)
        elif op == "partition":
            a, b = arg
            if a != b:
                group.partition(a, b)
        elif op == "heal":
            group.heal_all()
        elif op == "tick":
            group.tick(arg)
    return acked


def settle(group):
    """Heal, revive and drain so every node can serve the verdict."""
    group.heal_all()
    for node in group.nodes:
        if not node.alive:
            group.restart(node.node_id)
    if group.primary is None or not group.primary.alive:
        group.await_failover(max_ticks=100)
    group.drain(max_ticks=2000)


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=25))
def test_sync_acked_writes_survive_any_schedule(steps):
    group = ReplicationGroup(n_replicas=2, mode="sync", sync_timeout=80)
    group.execute("CREATE TABLE t (k INT, v INT)")
    group.drain()
    acked = apply_schedule(group, steps)
    settle(group)
    for node in group.nodes:
        present = {row[0] for row in
                   node.db.query("SELECT k, v FROM t")}
        missing = [k for k in acked if k not in present]
        assert not missing, \
            "node {0} lost acked keys {1}".format(node.node_id, missing)


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=25),
       mode=st.sampled_from(["sync", "async"]))
def test_no_replica_diverges_from_fenced_prefix(steps, mode):
    group = ReplicationGroup(n_replicas=2, mode=mode, sync_timeout=80)
    group.execute("CREATE TABLE t (k INT, v INT)")
    group.drain()
    apply_schedule(group, steps)
    settle(group)
    assert group.divergence_report() == []
    tables = {tuple(sorted(n.db.query("SELECT k, v FROM t")))
              for n in group.nodes if n.alive}
    assert len(tables) == 1   # every serving node exposes one history


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=25))
def test_every_election_promotes_a_most_caught_up_candidate(steps):
    group = ReplicationGroup(n_replicas=2, mode="sync", sync_timeout=80)
    group.execute("CREATE TABLE t (k INT, v INT)")
    group.drain()
    apply_schedule(group, steps)
    settle(group)
    for event in group.failovers:
        assert event.winner_was_most_caught_up(), event
