"""The shared simulated-link layer (repro.datacyclotron.link).

The SimulatedLink is the transport under WAL shipping; its contract —
FIFO delivery, minimum one-tick latency, fault-injected drops/delays,
partitions via cut() — is what makes the replication protocol's timing
deterministic.
"""

import pytest

from repro.datacyclotron.link import HopGate, LinkStats, SimulatedLink
from repro.faults import FaultInjector


class TestSimulatedLink:
    def test_delivery_takes_at_least_one_tick(self):
        link = SimulatedLink("repl.ship")
        assert link.send("m", now=0)
        assert link.deliver(0) == []
        assert link.deliver(1) == ["m"]
        assert link.deliver(2) == []

    def test_fifo_even_under_unequal_delays(self):
        inj = FaultInjector().delay_at("repl.ship", hits=(1,), delay=5)
        link = SimulatedLink("repl.ship", faults=inj)
        link.send("slow", now=0)   # injected +5 ticks
        link.send("fast", now=0)   # no delay, but must queue behind
        assert link.deliver(1) == []
        assert link.deliver(6) == ["slow", "fast"]
        assert link.stats.stalled == 1

    def test_transient_fault_drops_the_message(self):
        inj = FaultInjector().transient_at("repl.ship", hits=(1,))
        link = SimulatedLink("repl.ship", faults=inj)
        assert not link.send("lost", now=0)
        assert link.send("kept", now=0)
        assert link.deliver(1) == ["kept"]
        assert link.stats.dropped == 1

    def test_crash_fault_cuts_the_link(self):
        inj = FaultInjector().crash_at("repl.ship", hit=2)
        link = SimulatedLink("repl.ship", faults=inj)
        assert link.send("a", now=0)
        assert not link.send("b", now=0)   # crash: partition
        assert link.down
        assert link.deliver(5) == []       # in-flight lost with the cut
        assert not link.send("c", now=5)
        link.heal()
        assert link.send("d", now=5)
        assert link.deliver(6) == ["d"]

    def test_cut_and_heal(self):
        link = SimulatedLink("repl.ship")
        link.send("inflight", now=0)
        link.cut()
        assert link.in_flight == 0
        assert not link.send("while down", now=1)
        link.heal()
        assert link.send("after heal", now=1)
        assert link.deliver(2) == ["after heal"]

    def test_site_override_per_message(self):
        inj = FaultInjector().transient_at("repl.ack", hits=(1,))
        link = SimulatedLink("repl.ship", faults=inj)
        assert link.send("ship ok", now=0)              # repl.ship site
        assert not link.send("ack lost", now=0, site="repl.ack")
        assert inj.hits["repl.ship"] == 1
        assert inj.hits["repl.ack"] == 1

    def test_bytes_accounting(self):
        link = SimulatedLink("repl.ship")
        link.send("a", now=0, size=100)
        link.send("b", now=0, size=50)
        assert link.stats.bytes_sent == 150
        assert link.stats.sent == 2


class TestHopGate:
    """The gate reproduces the DataCyclotron ring's retry semantics;
    only the contract needed by both users is pinned here (the ring's
    own tests sweep the full fault matrix)."""

    def test_clean_hop_advances(self):
        stats = LinkStats()
        gate = HopGate()
        inj = FaultInjector()
        assert gate.try_hop(inj, "ring.hop", timeout=4, stats=stats)

    def test_transient_backs_off_exponentially(self):
        stats = LinkStats()
        gate = HopGate()
        inj = FaultInjector()
        inj.transient_at("ring.hop", hits=(1, 2))
        assert not gate.try_hop(inj, "ring.hop", 8, stats)  # drop #1
        assert not gate.try_hop(inj, "ring.hop", 8, stats)  # drop #2
        assert not gate.try_hop(inj, "ring.hop", 8, stats)  # backoff wait
        assert gate.try_hop(inj, "ring.hop", 8, stats)      # advances
        assert stats.retries == 2

    def test_latency_at_timeout_counts_retransmit(self):
        stats = LinkStats()
        gate = HopGate()
        inj = FaultInjector().delay_at("ring.hop", hits=(1,), delay=9)
        assert not gate.try_hop(inj, "ring.hop", timeout=4, stats=stats)
        assert stats.retransmits == 1
        for _ in range(3):   # capped at timeout-1 further waits
            assert not gate.try_hop(inj, "ring.hop", 4, stats)
        assert gate.try_hop(inj, "ring.hop", 4, stats)


def test_ring_still_green_on_shared_gate():
    """The ring imports the gate from the shared module (one link
    abstraction for both distributed components)."""
    from repro.datacyclotron import ring
    assert ring.HopGate is HopGate
