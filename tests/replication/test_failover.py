"""Failure detection, election, fencing and divergence detection."""

import pytest

from repro.faults import CrashError, FaultInjector
from repro.replication import (
    NoPrimaryError, QuorumTimeout, ReplicationGroup,
)
from tests.helpers import assert_same_rows


def seeded_group(n_replicas=2, mode="sync", **kwargs):
    g = ReplicationGroup(n_replicas=n_replicas, mode=mode, **kwargs)
    g.execute("CREATE TABLE t (k INT, v INT)")
    return g


class TestFailureDetection:
    def test_dead_primary_detected_and_replaced(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.kill(0)
        new = g.await_failover()
        assert new.node_id != 0 and new.role == "primary"
        assert g.stats.failovers == 1
        event = g.failovers[0]
        assert event.reason == "primary dead"
        assert event.term == 2

    def test_detection_waits_for_election_timeout(self):
        g = seeded_group(election_timeout=10)
        g.kill(0)
        g.tick(5)
        assert g.primary is g.nodes[0]      # too early to depose
        g.tick(10)
        assert g.primary is not g.nodes[0]

    def test_healthy_primary_never_deposed(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.tick(100)
        assert g.stats.failovers == 0

    def test_partitioned_primary_deposed_by_majority(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.partition(0, 1)
        g.partition(0, 2)    # the primary is cut off from everyone
        g.tick(g.election_timeout + 3)
        assert g.primary is not g.nodes[0]
        assert g.failovers[0].reason == "primary partitioned"
        assert g.nodes[0].role == "deposed"

    def test_minority_partition_does_not_depose(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.partition(0, 1)    # one replica starves; the other is fine
        g.tick(g.election_timeout + 5)
        assert g.primary is g.nodes[0]
        assert g.stats.failovers == 0

    def test_no_election_without_majority_of_candidates(self):
        """Raft's safety rule: a lone survivor of a 3-node cluster
        cannot elect itself (it might miss quorum-acked entries)."""
        g = seeded_group()
        g.kill(0)
        g.kill(1)
        g.tick(g.election_timeout + 10)
        with pytest.raises(NoPrimaryError):
            g.require_primary()
        g.restart(1)         # a majority of candidates exists again
        g.await_failover()
        assert g.primary.alive


class TestElection:
    def test_most_caught_up_replica_wins(self):
        g = seeded_group(mode="async")
        g.drain()
        g.partition(0, 2)    # replica 2 stops receiving entries
        for i in range(5):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        g.drain(max_ticks=30)
        assert g.nodes[1].last_lsn > g.nodes[2].last_lsn
        g.heal(0, 2)
        g.kill(0)
        winner = g.await_failover()
        assert winner is g.nodes[1]
        assert g.failovers[0].winner_was_most_caught_up()

    def test_terms_increase_monotonically(self):
        g = seeded_group()
        g.kill(0)
        g.await_failover()
        g.restart(0)
        g.drain()
        g.kill(g.primary.node_id)
        g.await_failover()
        assert [e.term for e in g.failovers] == [2, 3]

    def test_sync_acked_commits_survive_failover(self):
        g = seeded_group()
        for i in range(5):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        g.kill(0)
        g.await_failover()
        rows = g.primary.db.query("SELECT k, v FROM t")
        assert_same_rows(rows, [(i, i) for i in range(5)])


class TestFencing:
    def make_diverged_cluster(self):
        """Crash the primary mid-commit so its WAL holds an entry no
        replica ever saw — the canonical divergent unacked tail."""
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        txn = g.begin()
        txn.execute("INSERT INTO t VALUES (2, 20)")
        g.primary.faults.crash_at(
            "commit.publish",
            hit=g.primary.faults.hits["commit.publish"] + 1)
        with pytest.raises(CrashError):
            txn.commit()   # WAL append was durable; publish crashed
        assert not g.nodes[0].alive
        tail = g.nodes[0].last_lsn
        new = g.await_failover()
        assert new.last_lsn == tail - 1   # the tail never shipped
        return g, tail

    def test_unacked_tail_truncated_on_rejoin(self):
        g, tail = self.make_diverged_cluster()
        # New leader commits its own history over the fenced LSN.
        g.execute("INSERT INTO t VALUES (3, 30)")
        g.restart(0)
        g.drain()
        assert g.stats.fenced_entries >= 1
        assert g.nodes[0].last_lsn == g.primary.last_lsn
        assert g.nodes[0].log.checksum_at(tail) == \
            g.primary.log.checksum_at(tail)
        assert_same_rows(g.nodes[0].db.query("SELECT k, v FROM t"),
                         [(1, 10), (3, 30)])
        assert g.divergence_report() == []

    def test_stale_tail_fenced_even_without_new_commits(self):
        """Heartbeats alone fence a longer stale tail (the new leader
        appended nothing, so entry shipping never overlaps it)."""
        g, tail = self.make_diverged_cluster()
        g.restart(0)
        g.drain()
        assert g.nodes[0].last_lsn == g.primary.last_lsn < tail
        assert g.divergence_report() == []
        assert_same_rows(g.nodes[0].db.query("SELECT k, v FROM t"),
                         [(1, 10)])

    def test_deposed_primary_rejoins_as_replica(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.partition(0, 1)
        g.partition(0, 2)
        g.tick(g.election_timeout + 3)
        assert g.nodes[0].role == "deposed"
        g.heal(0, 1)
        g.heal(0, 2)
        g.drain()
        assert g.nodes[0].role == "replica"
        assert g.nodes[0].term == g.primary.term

    def test_straggler_writes_on_deposed_primary_rejected(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        old = g.primary
        g.partition(0, 1)
        g.partition(0, 2)
        g.tick(g.election_timeout + 3)
        assert old.role == "deposed"
        # The old primary's log is sealed: a client still talking to
        # it cannot append (NotPrimaryError via the revoked stamp).
        from repro.replication import NotPrimaryError
        with pytest.raises(NotPrimaryError):
            old.db.execute("INSERT INTO t VALUES (99, 99)")


class TestDivergenceDetection:
    def test_clean_cluster_reports_no_divergence(self):
        g = seeded_group()
        for i in range(5):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        g.drain()
        assert g.divergence_report() == []

    def test_manufactured_divergence_is_reported(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.drain()
        # Corrupt one replica's view of an entry behind the group's
        # back — the checksum comparison must expose the exact LSN.
        lsn = g.nodes[2].last_lsn
        g.nodes[2].log.entries[lsn].checksum ^= 0xFF
        report = g.divergence_report()
        assert len(report) == 1
        bad_lsn, sums = report[0]
        assert bad_lsn == lsn
        assert sums[2] != sums[0] == sums[1]

    def test_dead_nodes_excluded_until_requested(self):
        g = seeded_group()
        g.execute("INSERT INTO t VALUES (1, 10)")
        g.drain()
        g.nodes[2].log.entries[0].checksum ^= 0xFF
        g.kill(2)
        assert g.divergence_report() == []
        assert len(g.divergence_report(include_dead=True)) == 1


class TestRejoinDurability:
    def test_full_cluster_restart_recovers_all_acked(self):
        g = seeded_group()
        for i in range(8):
            g.execute("INSERT INTO t VALUES ({0}, {1})".format(i, i))
        for n in g.nodes:
            g.kill(n.node_id)
        for n in g.nodes:
            g.restart(n.node_id)
        g.await_failover()
        g.drain()
        want = [(i, i) for i in range(8)]
        for n in g.nodes:
            assert_same_rows(n.db.query("SELECT k, v FROM t"), want)
        assert g.divergence_report() == []
