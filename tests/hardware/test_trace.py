"""Unit tests for address-trace builders."""

import numpy as np
from hypothesis import given, strategies as st

from repro.hardware import trace


class TestBuilders:
    def test_sequential(self):
        addrs = trace.sequential(base=100, count=4, item_size=8)
        assert list(addrs) == [100, 108, 116, 124]

    def test_gather(self):
        addrs = trace.gather(base=0, indexes=[3, 1, 2], item_size=4)
        assert list(addrs) == [12, 4, 8]

    def test_random_uniform_within_region(self):
        rng = np.random.default_rng(0)
        addrs = trace.random_uniform(rng, base=1000, region_items=10,
                                     count=100, item_size=8)
        assert addrs.min() >= 1000
        assert addrs.max() <= 1000 + 9 * 8

    def test_random_permutation_covers_region(self):
        rng = np.random.default_rng(0)
        addrs = trace.random_permutation(rng, base=0, region_items=16,
                                         item_size=4)
        assert sorted(addrs) == [i * 4 for i in range(16)]

    def test_interleave(self):
        merged = trace.interleave([0, 2, 4], [100, 102, 104])
        assert list(merged) == [0, 100, 2, 102, 4, 104]

    def test_interleave_rejects_ragged(self):
        import pytest
        with pytest.raises(ValueError):
            trace.interleave([1, 2], [3])

    def test_concat(self):
        merged = trace.concat([1, 2], [3], [4, 5])
        assert list(merged) == [1, 2, 3, 4, 5]


class TestCollapseRuns:
    def test_empty(self):
        collapsed, removed = trace.collapse_runs(np.array([], dtype=np.int64))
        assert len(collapsed) == 0
        assert removed == 0

    def test_collapses_adjacent_duplicates_only(self):
        collapsed, removed = trace.collapse_runs(np.array([1, 1, 2, 1, 1, 1]))
        assert list(collapsed) == [1, 2, 1]
        assert removed == 3

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_property_reconstructible(self, values):
        arr = np.asarray(values, dtype=np.int64)
        collapsed, removed = trace.collapse_runs(arr)
        assert removed + len(collapsed) == len(arr)
        # No two adjacent equal values survive.
        assert not (collapsed[1:] == collapsed[:-1]).any()
        # Order of first occurrences per run is preserved.
        expected = [v for i, v in enumerate(values)
                    if i == 0 or values[i - 1] != v]
        assert list(collapsed) == expected
