"""Unit tests for the TLB simulation."""

import numpy as np
import pytest

from repro.hardware import TLB


class TestTLB:
    def test_page_size_power_of_two(self):
        with pytest.raises(ValueError):
            TLB(8, 1000, 30)

    def test_hit_after_fill(self):
        tlb = TLB(entries=4, page_size=256, miss_latency=30)
        tlb.access_pages(np.array([1, 1, 2, 1]))
        assert tlb.stats.misses == 2
        assert tlb.stats.hits == 2

    def test_lru_eviction(self):
        tlb = TLB(entries=2, page_size=256, miss_latency=30)
        tlb.access_pages(np.array([1, 2]))
        tlb.access_pages(np.array([1]))   # 2 becomes LRU
        tlb.access_pages(np.array([3]))   # evicts 2
        tlb.access_pages(np.array([2]))
        assert tlb.stats.misses == 4  # 1, 2, 3, 2-again
        assert tlb.stats.hits == 1

    def test_thrashing_when_regions_exceed_entries(self):
        tlb = TLB(entries=4, page_size=256, miss_latency=30)
        # Round-robin over 8 pages with only 4 entries: every access misses.
        pattern = np.tile(np.arange(8), 10)
        tlb.access_pages(pattern)
        assert tlb.stats.misses == 80

    def test_no_thrashing_within_reach(self):
        tlb = TLB(entries=8, page_size=256, miss_latency=30)
        pattern = np.tile(np.arange(8), 10)
        tlb.access_pages(pattern)
        assert tlb.stats.misses == 8
        assert tlb.stats.hits == 72

    def test_reach_and_cycles(self):
        tlb = TLB(entries=8, page_size=256, miss_latency=30)
        assert tlb.reach == 2048
        tlb.access_pages(np.array([1, 2, 3]))
        assert tlb.miss_cycles() == 90

    def test_reset(self):
        tlb = TLB(entries=2, page_size=256, miss_latency=30)
        tlb.access_pages(np.array([1, 2]))
        tlb.reset()
        assert tlb.stats.accesses == 0
        tlb.access_pages(np.array([1]))
        assert tlb.stats.misses == 1

    def test_miss_ratio_empty(self):
        tlb = TLB(entries=2, page_size=256, miss_latency=30)
        assert tlb.stats.miss_ratio == 0.0
