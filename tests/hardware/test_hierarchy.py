"""Unit and property tests for the memory hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    Cache,
    MemoryHierarchy,
    TINY,
    SCALED_DEFAULT,
    PENTIUM4_XEON,
    ITANIUM2,
    TLB,
    profile_by_name,
    trace,
)


@pytest.fixture
def tiny():
    return TINY.make_hierarchy()


class TestConstruction:
    def test_requires_at_least_one_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])

    def test_rejects_shrinking_line_sizes(self):
        l1 = Cache("L1", 512, 64, 2, 10)
        l2 = Cache("L2", 4096, 32, 4, 100)
        with pytest.raises(ValueError):
            MemoryHierarchy([l1, l2])

    def test_level_lookup(self, tiny):
        assert tiny.level("L2").capacity == 4096
        with pytest.raises(KeyError):
            tiny.level("L9")

    def test_profiles_build(self):
        for profile in (TINY, SCALED_DEFAULT, PENTIUM4_XEON, ITANIUM2):
            h = profile.make_hierarchy()
            assert h.total_cycles == 0
        assert profile_by_name("tiny") is TINY
        with pytest.raises(KeyError):
            profile_by_name("cray")


class TestAccessPath:
    def test_sequential_scan_misses_once_per_line(self, tiny):
        # 64 items x 8 bytes = 512 bytes = 16 L1 lines = 8 L2 lines.
        tiny.access(trace.sequential(0, 64, 8))
        rep = tiny.report()
        assert rep.cache_stats["L1"].misses == 16
        assert rep.cache_stats["L2"].misses == 8
        assert rep.cache_stats["L1"].hits == 48

    def test_l1_hit_does_not_reach_l2(self, tiny):
        tiny.access(np.array([0, 0, 0, 0]))
        rep = tiny.report()
        assert rep.cache_stats["L2"].accesses == 1

    def test_tlb_counts_pages(self, tiny):
        # 256-byte pages; touch 4 pages sequentially.
        tiny.access(trace.sequential(0, 4, 256))
        assert tiny.tlb.stats.misses == 4

    def test_empty_access_is_noop(self, tiny):
        tiny.access(np.array([], dtype=np.int64))
        assert tiny.accesses == 0

    def test_rejects_2d(self, tiny):
        with pytest.raises(ValueError):
            tiny.access(np.zeros((2, 2), dtype=np.int64))

    def test_cycles_accumulate(self, tiny):
        tiny.access(trace.sequential(0, 64, 8))
        assert tiny.memory_cycles > 0
        assert tiny.tlb_cycles > 0
        tiny.add_cpu_cycles(123)
        assert tiny.total_cycles == tiny.memory_cycles + tiny.tlb_cycles + 123

    def test_reset(self, tiny):
        tiny.access(trace.sequential(0, 64, 8))
        tiny.reset()
        assert tiny.total_cycles == 0
        assert tiny.accesses == 0

    def test_report_delta(self, tiny):
        tiny.access(trace.sequential(0, 64, 8))
        before = tiny.report()
        tiny.access(trace.sequential(0, 64, 8))  # all hot now
        delta = tiny.report().delta(before)
        assert delta.cache_stats["L1"].misses == 0
        assert delta.accesses == 64
        assert delta.memory_cycles == 0


class TestLocalityEffects:
    """The behaviours the paper's algorithms rely on."""

    def test_random_access_to_large_region_thrashes_l2(self):
        h = TINY.make_hierarchy()
        rng = np.random.default_rng(1)
        region_items = 4096  # 32 KB of 8-byte items >> 4 KB L2
        addrs = trace.random_uniform(rng, 0, region_items, 2000, 8)
        h.access(addrs)
        rep = h.report()
        assert rep.cache_stats["L2"].miss_ratio > 0.8

    def test_random_access_within_cache_is_cheap_when_hot(self):
        h = TINY.make_hierarchy()
        rng = np.random.default_rng(1)
        region_items = 256  # 2 KB fits in the 4 KB L2
        warm = trace.sequential(0, region_items, 8)
        h.access(warm)
        before = h.report()
        h.access(trace.random_uniform(rng, 0, region_items, 2000, 8))
        delta = h.report().delta(before)
        assert delta.cache_stats["L2"].misses == 0

    def test_sequential_cheaper_than_random_at_equal_volume(self):
        h_seq = TINY.make_hierarchy()
        h_rnd = TINY.make_hierarchy()
        n = 4096
        h_seq.access(trace.sequential(0, n, 8))
        rng = np.random.default_rng(2)
        h_rnd.access(trace.random_uniform(rng, 0, n, n, 8))
        assert h_seq.total_cycles < h_rnd.total_cycles

    def test_bigger_cache_never_more_misses(self):
        """Miss count is monotone non-increasing in capacity (full assoc)."""
        rng = np.random.default_rng(3)
        addrs = trace.random_uniform(rng, 0, 2048, 3000, 8)
        misses = []
        for cap in (512, 2048, 8192, 32768):
            c = Cache("L", cap, 32, cap // 32, 100)
            c.access_lines(addrs >> 5)
            misses.append(c.stats.misses)
        assert misses == sorted(misses, reverse=True)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                min_size=1, max_size=300))
def test_property_miss_counts_bounded(addresses):
    """Misses never exceed accesses; cycles consistent with counters."""
    h = TINY.make_hierarchy()
    h.access(np.asarray(addresses, dtype=np.int64))
    rep = h.report()
    l1 = rep.cache_stats["L1"]
    assert l1.accesses == len(trace.collapse_runs(
        np.asarray(addresses, dtype=np.int64) >> 5)[0]) + \
        (len(addresses) - len(trace.collapse_runs(
            np.asarray(addresses, dtype=np.int64) >> 5)[0]))
    assert rep.cache_stats["L2"].accesses == l1.misses
    assert rep.memory_cycles == sum(
        s.sequential_misses * c.miss_latency_sequential
        + s.random_misses * c.miss_latency_random
        for s, c in zip(rep.cache_stats.values(), h.caches))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                min_size=1, max_size=200))
def test_property_repeating_a_hot_trace_is_free(addresses):
    """Replaying a trace that fits in cache costs no further misses."""
    addrs = np.asarray(sorted(set(addresses))[:64], dtype=np.int64)
    if len(addrs) == 0:
        return
    h = TINY.make_hierarchy()
    # Restrict to a region that fits L2 (4 KB) and the TLB reach (2 KB).
    addrs = addrs % 2048
    h.access(addrs)
    before = h.report()
    h.access(addrs)
    h.access(addrs)
    delta = h.report().delta(before)
    assert delta.cache_stats["L2"].misses == 0
