"""Unit tests for the set-associative LRU cache simulation."""

import numpy as np
import pytest

from repro.hardware import Cache


def make_cache(capacity=256, line=32, assoc=2, lat_r=100, lat_s=25):
    return Cache("L", capacity, line, assoc, lat_r, lat_s)


class TestConstruction:
    def test_basic_geometry(self):
        c = make_cache(capacity=256, line=32, assoc=2)
        assert c.n_lines == 8
        assert c.n_sets == 4

    def test_capacity_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            Cache("L", 100, 32, 2, 10)

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            Cache("L", 96, 24, 2, 10)

    def test_overlarge_associativity_clamps_to_fully_associative(self):
        c = Cache("L", 128, 32, 64, 10)
        assert c.associativity == 4
        assert c.n_sets == 1


class TestAccess:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        misses = c.access_lines(np.array([5, 5, 5]))
        assert list(misses) == [True, False, False]
        assert c.stats.hits == 2
        assert c.stats.misses == 1

    def test_distinct_lines_all_cold_miss(self):
        c = make_cache()
        misses = c.access_lines(np.arange(8))
        assert misses.all()
        assert c.stats.misses == 8

    def test_working_set_within_capacity_hits_on_second_round(self):
        c = make_cache(capacity=256, line=32, assoc=8)  # fully associative
        lines = np.arange(8)
        c.access_lines(lines)
        misses = c.access_lines(lines)
        assert not misses.any()

    def test_working_set_exceeding_capacity_thrashes(self):
        c = make_cache(capacity=256, line=32, assoc=8)  # 8 lines, full assoc
        lines = np.arange(9)  # one more than fits: LRU evicts in our face
        c.access_lines(lines)
        misses = c.access_lines(lines)
        assert misses.all()

    def test_lru_eviction_order(self):
        c = Cache("L", 64, 32, 2, 10)  # one set of 2 ways per... 2 lines
        c.access_lines(np.array([0, 2]))   # both map to set 0
        c.access_lines(np.array([0]))      # touch 0: now 2 is LRU
        c.access_lines(np.array([4]))      # evicts 2
        assert c.contains_line(0)
        assert not c.contains_line(2)
        assert c.contains_line(4)

    def test_set_conflict_despite_free_capacity(self):
        # 4 sets x 2 ways; lines 0, 4, 8 all map to set 0 -> conflict.
        c = make_cache(capacity=256, line=32, assoc=2)
        c.access_lines(np.array([0, 4, 8]))
        assert not c.contains_line(0)
        assert c.contains_line(4)
        assert c.contains_line(8)


class TestMissClassification:
    def test_sequential_scan_is_sequential_misses(self):
        c = make_cache()
        c.access_lines(np.arange(100))
        # The very first miss has no predecessor: counted random.
        assert c.stats.random_misses == 1
        assert c.stats.sequential_misses == 99

    def test_random_pattern_is_random_misses(self):
        c = make_cache(capacity=256, line=32, assoc=8)
        c.access_lines(np.array([100, 7, 900, 44, 5000]))
        assert c.stats.random_misses == 5
        assert c.stats.sequential_misses == 0

    def test_miss_cycles_scoring(self):
        c = make_cache(lat_r=100, lat_s=25)
        c.access_lines(np.array([10, 11, 500]))  # rand, seq, rand
        assert c.miss_cycles() == 100 + 25 + 100


class TestReset:
    def test_reset_clears_contents_and_stats(self):
        c = make_cache()
        c.access_lines(np.arange(4))
        c.reset()
        assert c.stats.accesses == 0
        assert not c.contains_line(0)
        assert c.access_lines(np.array([0]))[0]  # cold again

    def test_stats_miss_ratio(self):
        c = make_cache()
        assert c.stats.miss_ratio == 0.0
        c.access_lines(np.array([1, 1, 1, 1]))
        assert c.stats.miss_ratio == 0.25
