"""Tests for radix-decluster and the projection strategy matrix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import ITANIUM2, PENTIUM4_XEON, TINY
from repro.joins import (
    naive_post_projection,
    radix_decluster,
    run_projection_strategy,
    sort_based_projection,
)
from repro.joins.projection import PROJECTION_STRATEGIES, \
    make_payload_columns
from repro.joins.radix_decluster import max_declusterable_tuples


@pytest.fixture
def scenario():
    rng = np.random.default_rng(0)
    column = rng.integers(0, 1 << 30, 4096)
    index = rng.integers(0, len(column), 2048)
    return index, column


class TestCorrectness:
    def test_all_projections_agree(self, scenario):
        index, column = scenario
        expected = column[index]
        assert np.array_equal(naive_post_projection(index, column), expected)
        assert np.array_equal(sort_based_projection(index, column), expected)
        assert np.array_equal(radix_decluster(index, column), expected)

    def test_traced_variants_agree(self, scenario):
        index, column = scenario
        expected = column[index]
        for fn in (naive_post_projection, sort_based_projection,
                   radix_decluster):
            h = TINY.make_hierarchy()
            assert np.array_equal(fn(index, column, hierarchy=h), expected)
            assert h.accesses > 0

    def test_empty_index(self):
        column = np.arange(10)
        out = radix_decluster(np.array([], dtype=np.int64), column,
                              hierarchy=TINY.make_hierarchy())
        assert len(out) == 0


class TestAccessPattern:
    def test_decluster_beats_naive_on_large_columns(self):
        """E3's core effect: random access confined to cache-sized
        regions beats unbounded random access."""
        from repro.hardware import SCALED_DEFAULT
        rng = np.random.default_rng(1)
        column = rng.integers(0, 1 << 30, 1 << 16)  # 512 KB >> 64 KB L2
        index = rng.permutation(len(column))[:1 << 15]
        h_naive = SCALED_DEFAULT.make_hierarchy()
        naive_post_projection(index, column, hierarchy=h_naive)
        h_rd = SCALED_DEFAULT.make_hierarchy()
        radix_decluster(index, column, hierarchy=h_rd,
                        profile=SCALED_DEFAULT)
        assert h_rd.total_cycles < h_naive.total_cycles / 1.5

    def test_scalability_limits_match_paper_magnitudes(self):
        """Section 4.3: ~half a billion tuples on the 512KB Pentium4
        Xeon; ~72 billion on the 6MB Itanium2 — and the quadratic
        growth between them."""
        p4 = max_declusterable_tuples(PENTIUM4_XEON, item_size=4)
        it2 = max_declusterable_tuples(ITANIUM2, item_size=4)
        assert 1e8 < p4 < 1e10
        assert it2 > 10 * p4  # grows superlinearly with cache size


class TestStrategyMatrix:
    def test_all_strategies_project_identically(self):
        rng = np.random.default_rng(2)
        n = 1024
        right = rng.permutation(n)
        left = rng.permutation(n)
        payloads = make_payload_columns(n, 2)
        reference = None
        for strategy in PROJECTION_STRATEGIES:
            h = TINY.make_hierarchy()
            run = run_projection_strategy(strategy, left, right, payloads,
                                          h, profile=TINY)
            assert run.n_results == n
            totals = [int(np.sum(c)) for c in run.columns]
            if reference is None:
                reference = totals
            else:
                assert totals == reference
            assert run.total_cycles > 0

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            run_projection_strategy("telepathy", np.arange(4), np.arange(4),
                                    [np.arange(4)], TINY.make_hierarchy())

    def test_dsm_decluster_wins_at_scale(self):
        """The paper's conclusion: radix-decluster makes DSM
        post-projection the most efficient strategy overall."""
        from repro.hardware import SCALED_DEFAULT
        rng = np.random.default_rng(3)
        n = 1 << 15
        right = rng.permutation(n)
        left = rng.permutation(n)
        payloads = make_payload_columns(n, 2)
        cycles = {}
        for strategy in PROJECTION_STRATEGIES:
            h = SCALED_DEFAULT.make_hierarchy()
            run = run_projection_strategy(strategy, left, right, payloads,
                                          h, profile=SCALED_DEFAULT)
            cycles[strategy] = run.total_cycles
        assert min(cycles, key=cycles.get) == "dsm_post_decluster"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=400),
       st.integers(min_value=1, max_value=300))
def test_property_decluster_equals_gather(n_col, n_idx):
    rng = np.random.default_rng(n_col * 1000 + n_idx)
    column = rng.integers(0, 1 << 20, n_col)
    index = rng.integers(0, n_col, n_idx)
    h = TINY.make_hierarchy()
    out = radix_decluster(index, column, hierarchy=h, profile=TINY)
    assert np.array_equal(out, column[index])
