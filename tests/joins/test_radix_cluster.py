"""Unit and property tests for multi-pass radix-cluster."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import TINY
from repro.joins import radix_bits, radix_cluster
from repro.joins.radix_cluster import split_bits


class TestSplitBits:
    def test_even(self):
        assert split_bits(6, 2) == [3, 3]

    def test_leftmost_heavy(self):
        assert split_bits(7, 2) == [4, 3]
        assert split_bits(8, 3) == [3, 3, 2]

    def test_single_pass(self):
        assert split_bits(5, 1) == [5]

    def test_more_passes_than_bits(self):
        assert split_bits(2, 5) == [1, 1]

    def test_zero_passes_rejected(self):
        with pytest.raises(ValueError):
            split_bits(4, 0)


class TestFigure2:
    """The paper's Figure 2: 2-pass radix-cluster, B=3, H=8."""

    VALUES = [92, 57, 17, 81, 66, 6, 96, 75, 3, 20, 37, 47]

    def test_final_clusters_match_low_bits(self):
        out = radix_cluster(np.array(self.VALUES), bits=3, passes=[2, 1])
        radices = radix_bits(out.values, 3)
        # Clusters appear in radix order, consecutively.
        assert list(radices) == sorted(radices)

    def test_cluster_contents(self):
        out = radix_cluster(np.array(self.VALUES), bits=3, passes=[2, 1])
        for c in range(8):
            expected = {v for v in self.VALUES if v & 7 == c}
            assert set(out.cluster(c).tolist()) == expected

    def test_all_clusters_partition_input(self):
        out = radix_cluster(np.array(self.VALUES), bits=3, passes=[2, 1])
        assert sorted(out.values.tolist()) == sorted(self.VALUES)
        for c in range(8):
            assert all(v & 7 == c for v in out.cluster(c))

    def test_offsets_consistent(self):
        out = radix_cluster(np.array(self.VALUES), bits=3, passes=2)
        assert out.offsets[0] == 0
        assert out.offsets[-1] == len(self.VALUES)
        assert out.n_clusters == 8


class TestBasics:
    def test_zero_bits_is_identity(self):
        values = np.array([5, 3, 1])
        out = radix_cluster(values, bits=0)
        assert out.values.tolist() == [5, 3, 1]
        assert out.n_clusters == 1

    def test_permutation_reconstructs(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1000, 200)
        out = radix_cluster(values, bits=4, passes=2)
        assert np.array_equal(out.values, values[out.permutation])

    def test_pass_split_does_not_change_result_clusters(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1 << 20, 500)
        single = radix_cluster(values, bits=6, passes=1)
        multi = radix_cluster(values, bits=6, passes=3)
        for c in range(64):
            assert sorted(single.cluster(c)) == sorted(multi.cluster(c))

    def test_explicit_pass_bits_must_sum(self):
        with pytest.raises(ValueError):
            radix_cluster(np.arange(8), bits=4, passes=[1, 1])

    def test_custom_hash(self):
        values = np.array([10, 11, 12, 13])
        out = radix_cluster(values, bits=1,
                            hash_fn=lambda v: v >> 1)
        assert set(out.cluster(0)) <= {10, 11, 12, 13}
        for c in range(2):
            assert all((v >> 1) & 1 == c for v in out.cluster(c))


class TestTraces:
    def test_trace_accounts_accesses(self):
        h = TINY.make_hierarchy()
        values = np.arange(256)
        radix_cluster(values, bits=2, passes=1, hierarchy=h)
        # Count scan (n) + scatter (2n reads+writes).
        assert h.accesses == 3 * 256
        assert h.cpu_cycles > 0

    def test_multipass_traces_more_passes(self):
        values = np.arange(256)
        h1 = TINY.make_hierarchy()
        radix_cluster(values, bits=4, passes=1, hierarchy=h1)
        h2 = TINY.make_hierarchy()
        radix_cluster(values, bits=4, passes=2, hierarchy=h2)
        assert h2.accesses == 2 * h1.accesses

    def test_thrashing_shape(self):
        """The E1 effect in miniature: with H far beyond the TLB entries
        and cache lines, one-pass clustering misses much more than
        two-pass on the same total bits."""
        rng = np.random.default_rng(2)
        values = rng.integers(0, 1 << 30, 4096)
        h1 = TINY.make_hierarchy()
        radix_cluster(values, bits=8, passes=1, hierarchy=h1)
        h2 = TINY.make_hierarchy()
        radix_cluster(values, bits=8, passes=[4, 4], hierarchy=h2)
        # Two passes move the data twice but avoid thrashing: fewer
        # random L2 misses per pass and a lower total cost.
        assert h2.total_cycles < h1.total_cycles


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 31),
                min_size=1, max_size=200),
       st.integers(min_value=0, max_value=6),
       st.integers(min_value=1, max_value=3))
def test_property_cluster_invariants(values, bits, passes):
    arr = np.asarray(values, dtype=np.int64)
    out = radix_cluster(arr, bits=bits, passes=passes)
    # Permutation is a bijection.
    assert sorted(out.permutation.tolist()) == list(range(len(arr)))
    # Output is input permuted.
    assert np.array_equal(out.values, arr[out.permutation])
    # Each cluster holds exactly the values with its radix.
    radices = radix_bits(arr, bits)
    for c in range(out.n_clusters):
        expected = sorted(arr[radices == c].tolist())
        assert sorted(out.cluster(c).tolist()) == expected
    # Clustering is stable within clusters (counting sort property).
    for c in range(out.n_clusters):
        positions = out.cluster_positions(c)
        assert positions.tolist() == sorted(positions.tolist())
