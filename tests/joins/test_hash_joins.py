"""Tests for simple and radix-partitioned hash joins."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BAT, algebra
from repro.hardware import TINY, SCALED_DEFAULT
from repro.joins import (
    partitioned_hash_join,
    plan_partitioning,
    simple_hash_join,
)


def reference_pairs(left, right):
    lc, rc = algebra.nested_loop_join(
        BAT.from_values(list(left)), BAT.from_values(list(right)))
    return sorted(zip(lc.decoded(), rc.decoded()))


class TestSimpleHashJoin:
    def test_basic_match(self):
        res = simple_hash_join(np.array([1, 2, 3]), np.array([3, 1, 1]))
        assert sorted(res.pairs()) == [(0, 1), (0, 2), (2, 0)]

    def test_empty_sides(self):
        assert len(simple_hash_join(np.array([], dtype=np.int64),
                                    np.array([1]))) == 0
        assert len(simple_hash_join(np.array([1]),
                                    np.array([], dtype=np.int64))) == 0

    def test_probe_order_preserved(self):
        res = simple_hash_join(np.array([5, 1, 5]), np.array([5, 9]))
        assert res.left_positions.tolist() == [0, 2]

    def test_trace_random_pattern_thrashes_when_table_large(self):
        rng = np.random.default_rng(0)
        n = 4096  # hash table 4096*8 = 32 KB >> 4 KB TINY L2
        right = rng.permutation(n)
        left = rng.permutation(n)
        h = TINY.make_hierarchy()
        simple_hash_join(left, right, hierarchy=h)
        l2 = h.level("L2").stats
        assert l2.miss_ratio > 0.5

    def test_trace_cheap_when_table_fits(self):
        rng = np.random.default_rng(0)
        n = 64  # table fits TINY L2 easily
        right = rng.permutation(n)
        left = rng.permutation(n)
        h = TINY.make_hierarchy()
        simple_hash_join(left, right, hierarchy=h)
        # Beyond cold misses, the table stays resident.
        assert h.level("L2").stats.misses < 3 * n

    def test_cpu_optimization_flag(self):
        rng = np.random.default_rng(0)
        values = rng.permutation(512)
        h_fast = TINY.make_hierarchy()
        simple_hash_join(values, values, hierarchy=h_fast,
                         cpu_optimized=True)
        h_slow = TINY.make_hierarchy()
        simple_hash_join(values, values, hierarchy=h_slow,
                         cpu_optimized=False)
        assert h_slow.cpu_cycles > h_fast.cpu_cycles
        assert h_slow.memory_cycles == h_fast.memory_cycles


class TestPartitionedHashJoin:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 50, 80)
        right = rng.integers(0, 50, 60)
        res = partitioned_hash_join(left, right, bits=3, passes=1)
        assert sorted(zip(res.left_positions.tolist(),
                          res.right_positions.tolist())) == \
            reference_pairs(left, right)

    def test_multi_pass_matches_reference(self):
        rng = np.random.default_rng(2)
        left = rng.integers(0, 1 << 20, 200)
        right = rng.integers(0, 1 << 20, 150)
        res = partitioned_hash_join(left, right, bits=6, passes=[3, 3])
        assert sorted(zip(res.left_positions.tolist(),
                          res.right_positions.tolist())) == \
            reference_pairs(left, right)

    def test_auto_plan(self):
        rng = np.random.default_rng(3)
        keys = rng.permutation(4096)
        res = partitioned_hash_join(keys, keys, profile=TINY)
        assert len(res) == 4096
        assert np.array_equal(keys[res.left_positions],
                              keys[res.right_positions])

    def test_empty(self):
        res = partitioned_hash_join(np.array([], dtype=np.int64),
                                    np.array([], dtype=np.int64),
                                    bits=2, passes=1)
        assert len(res) == 0

    def test_beats_simple_join_beyond_cache(self):
        """The order-of-magnitude claim of Section 4.2, in miniature."""
        rng = np.random.default_rng(4)
        n = 1 << 15  # 256 KB of keys >> the 64 KB scaled L2
        right = rng.permutation(n)
        left = rng.permutation(n)
        h_simple = SCALED_DEFAULT.make_hierarchy()
        simple_hash_join(left, right, hierarchy=h_simple)
        h_part = SCALED_DEFAULT.make_hierarchy()
        partitioned_hash_join(left, right, hierarchy=h_part,
                              profile=SCALED_DEFAULT)
        assert h_part.total_cycles < h_simple.total_cycles / 2.5


class TestPlanPartitioning:
    def test_small_relation_needs_no_partitioning(self):
        plan = plan_partitioning(8, profile=TINY)
        assert plan.bits == 0

    def test_bits_grow_with_relation(self):
        small = plan_partitioning(1 << 10, profile=SCALED_DEFAULT)
        large = plan_partitioning(1 << 16, profile=SCALED_DEFAULT)
        assert large.bits > small.bits

    def test_per_pass_bits_bounded_by_tlb(self):
        plan = plan_partitioning(1 << 22, profile=SCALED_DEFAULT)
        max_bits = int(np.log2(SCALED_DEFAULT.tlb.entries))
        assert all(b <= max_bits for b in plan.pass_bits)
        assert sum(plan.pass_bits) == plan.bits

    def test_cluster_fits_target_cache(self):
        plan = plan_partitioning(1 << 16, item_size=8,
                                 profile=SCALED_DEFAULT)
        cluster_bytes = (1 << 16) * 8 / plan.n_clusters
        assert cluster_bytes <= SCALED_DEFAULT.cache("L1").capacity


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), max_size=60),
       st.lists(st.integers(min_value=0, max_value=100), max_size=60),
       st.integers(min_value=0, max_value=5),
       st.integers(min_value=1, max_value=3))
def test_property_partitioned_join_equals_nested_loop(lvals, rvals, bits,
                                                      passes):
    left = np.asarray(lvals, dtype=np.int64)
    right = np.asarray(rvals, dtype=np.int64)
    res = partitioned_hash_join(left, right, bits=bits, passes=passes)
    assert sorted(zip(res.left_positions.tolist(),
                      res.right_positions.tolist())) == \
        reference_pairs(left, right)
