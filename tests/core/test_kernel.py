"""Tests for the kernel registry (MAL op name -> implementation)."""

import pytest

from repro.core import BAT, KERNEL, KernelFunction, lookup_op
from repro.core.kernel import register


class TestRegistry:
    def test_lookup_known_op(self):
        fn = lookup_op("algebra.select")
        assert isinstance(fn, KernelFunction)
        assert fn.n_results == 1

    def test_lookup_unknown_op(self):
        with pytest.raises(KeyError):
            lookup_op("algebra.teleport")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("algebra.select", lambda: None)

    def test_multi_result_ops_declared(self):
        assert lookup_op("algebra.join").n_results == 2
        assert lookup_op("group.group").n_results == 3
        assert lookup_op("algebra.sort").n_results == 2

    def test_callable_dispatch(self):
        b = BAT.from_values([5, 1, 5])
        cand = lookup_op("algebra.select")(b, 5)
        assert cand.decoded() == [0, 2]

    def test_expected_op_families_present(self):
        prefixes = {name.split(".")[0] for name in KERNEL}
        assert {"algebra", "aggr", "batcalc", "calc", "bat", "group",
                "candidates", "sql"} <= prefixes

    def test_scalar_calc_ops(self):
        assert lookup_op("calc.+")(2, 3) == 5
        assert lookup_op("calc.and")(True, False) is False
        assert lookup_op("calc.not")(False) is True

    def test_const_column(self):
        cand = BAT.from_values([0, 1, 2])
        col = lookup_op("sql.constcolumn")(cand, 9, "lng")
        assert col.decoded() == [9, 9, 9]

    def test_bat_count(self):
        assert lookup_op("bat.count")(BAT.from_values([1, 2])) == 2
