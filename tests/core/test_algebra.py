"""Unit and property tests for the BAT Algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BAT, BIT, DBL, INT, LNG, STR, algebra


def ages():
    # Figure 1's example column.
    return BAT.from_values([1907, 1927, 1927, 1968])


class TestSelect:
    def test_select_eq_is_papers_example(self):
        # select(age, 1927) -> positions 1 and 2 (Figure 1).
        cand = algebra.select_eq(ages(), 1927)
        assert cand.decoded() == [1, 2]

    def test_select_eq_no_match(self):
        assert algebra.select_eq(ages(), 1900).decoded() == []

    def test_select_eq_respects_hseqbase(self):
        b = BAT.from_values([1, 2, 1], hseqbase=50)
        assert algebra.select_eq(b, 1).decoded() == [50, 52]

    def test_select_eq_string_uses_heap_interning(self):
        b = BAT.from_values(["bob", "ann", "bob"])
        assert algebra.select_eq(b, "bob").decoded() == [0, 2]
        assert algebra.select_eq(b, "zoe").decoded() == []

    def test_select_range(self):
        cand = algebra.select_range(ages(), lo=1920, hi=1968)
        assert cand.decoded() == [1, 2]

    def test_select_range_inclusive_bounds(self):
        cand = algebra.select_range(ages(), lo=1927, hi=1968,
                                    lo_incl=True, hi_incl=True)
        assert cand.decoded() == [1, 2, 3]

    def test_select_range_open_ended(self):
        assert algebra.select_range(ages(), lo=1928).decoded() == [3]
        assert algebra.select_range(ages(), hi=1908).decoded() == [0]

    def test_select_range_sorted_uses_binary_search(self):
        b = BAT.from_values([1, 3, 5, 7, 9])
        assert b.tsorted
        cand = algebra.select_range(b, lo=3, hi=8)
        assert cand.decoded() == [1, 2, 3]

    def test_select_with_candidates_refines(self):
        b = ages()
        first = algebra.select_range(b, lo=1908)
        second = algebra.select_eq(b, 1927, candidates=first)
        assert second.decoded() == [1, 2]

    def test_select_mask(self):
        b = ages()
        mask = BAT(BIT, [True, False, False, True])
        assert algebra.select_mask(b, mask).decoded() == [0, 3]

    def test_select_range_strings(self):
        b = BAT.from_values(["ant", "bee", "cow"])
        cand = algebra.select_range(b, lo="b", hi="c")
        assert cand.decoded() == [1]


class TestProject:
    def test_project_reconstructs_tuples(self):
        names = BAT.from_values(["john", "roger", "bob", "will"])
        cand = algebra.select_eq(ages(), 1927)
        assert algebra.project(cand, names).decoded() == ["roger", "bob"]

    def test_project_const(self):
        cand = algebra.select_eq(ages(), 1927)
        col = algebra.project_const(cand, 7, LNG)
        assert col.decoded() == [7, 7]

    def test_project_const_string(self):
        cand = algebra.select_eq(ages(), 1927)
        col = algebra.project_const(cand, "x", STR)
        assert col.decoded() == ["x", "x"]


class TestJoin:
    def test_simple_equijoin(self):
        l = BAT.from_values([1, 2, 3])
        r = BAT.from_values([3, 1, 1])
        lc, rc = algebra.join(l, r)
        pairs = set(zip(lc.decoded(), rc.decoded()))
        assert pairs == {(0, 1), (0, 2), (2, 0)}

    def test_join_preserves_left_order(self):
        l = BAT.from_values([5, 1, 5])
        r = BAT.from_values([5, 9])
        lc, rc = algebra.join(l, r)
        assert lc.decoded() == [0, 2]

    def test_join_duplicates_cross_product(self):
        l = BAT.from_values([7, 7])
        r = BAT.from_values([7, 7, 7])
        lc, rc = algebra.join(l, r)
        assert len(lc) == 6

    def test_join_strings_across_heaps(self):
        l = BAT.from_values(["a", "b"])
        r = BAT.from_values(["b", "c", "b"])
        lc, rc = algebra.join(l, r)
        assert set(zip(lc.decoded(), rc.decoded())) == {(1, 0), (1, 2)}

    def test_join_type_mismatch(self):
        with pytest.raises(TypeError):
            algebra.join(BAT.from_values([1]), BAT.from_values(["a"]))

    def test_semijoin_antijoin_partition(self):
        l = BAT.from_values([1, 2, 3, 4])
        r = BAT.from_values([2, 4, 9])
        semi = algebra.semijoin(l, r).decoded()
        anti = algebra.antijoin(l, r).decoded()
        assert semi == [1, 3]
        assert anti == [0, 2]
        assert sorted(semi + anti) == [0, 1, 2, 3]

    def test_semijoin_strings(self):
        l = BAT.from_values(["x", "y"])
        r = BAT.from_values(["y"])
        assert algebra.semijoin(l, r).decoded() == [1]
        assert algebra.antijoin(l, r).decoded() == [0]


class TestCandidateSets:
    def test_intersect_union_diff(self):
        a = BAT.from_values([0, 1, 4], atom=None)
        b = BAT.from_values([1, 2, 4])
        assert algebra.cand_intersect(a, b).decoded() == [1, 4]
        assert algebra.cand_union(a, b).decoded() == [0, 1, 2, 4]
        assert algebra.cand_diff(a, b).decoded() == [0]


class TestSortGroup:
    def test_sort_returns_order(self):
        b = BAT.from_values([30, 10, 20])
        s, perm = algebra.sort(b)
        assert s.decoded() == [10, 20, 30]
        assert perm.decoded() == [1, 2, 0]

    def test_sort_descending(self):
        s, _ = algebra.sort(BAT.from_values([1, 3, 2]), descending=True)
        assert s.decoded() == [3, 2, 1]

    def test_sort_is_stable(self):
        b = BAT.from_values([2, 1, 2, 1])
        _, perm = algebra.sort(b)
        assert perm.decoded() == [1, 3, 0, 2]

    def test_sort_strings(self):
        s, _ = algebra.sort(BAT.from_values(["pear", "fig", "apple"]))
        assert s.decoded() == ["apple", "fig", "pear"]

    def test_group_basic(self):
        b = BAT.from_values([5, 3, 5, 3, 5])
        gids, extents, hist = algebra.group(b)
        assert len(set(gids.decoded())) == 2
        assert sorted(hist.decoded()) == [2, 3]
        # All members of one group share a gid.
        g = gids.decoded()
        assert g[0] == g[2] == g[4]
        assert g[1] == g[3]

    def test_group_refinement(self):
        a = BAT.from_values([1, 1, 2, 2])
        b = BAT.from_values([9, 8, 9, 9])
        gids_a, _, _ = algebra.group(a)
        gids, _, hist = algebra.group(b, groups=gids_a)
        assert len(hist) == 3  # (1,9), (1,8), (2,9)
        assert sorted(hist.decoded()) == [1, 1, 2]

    def test_group_strings(self):
        b = BAT.from_values(["x", "y", "x"])
        gids, _, hist = algebra.group(b)
        assert gids.decoded()[0] == gids.decoded()[2]
        assert sorted(hist.decoded()) == [1, 2]

    def test_unique(self):
        b = BAT.from_values([4, 4, 2, 4, 2])
        assert algebra.unique(b).decoded() == [0, 2]


class TestAggregates:
    def test_scalar_aggregates(self):
        b = BAT.from_values([3, 1, 2])
        assert algebra.aggr_count(b) == 3
        assert algebra.aggr_sum(b) == 6
        assert algebra.aggr_min(b) == 1
        assert algebra.aggr_max(b) == 3
        assert algebra.aggr_avg(b) == 2.0

    def test_aggregates_skip_nil(self):
        b = BAT(INT, [1, INT.nil, 3])
        assert algebra.aggr_count(b) == 2
        assert algebra.aggr_sum(b) == 4

    def test_empty_aggregates(self):
        b = BAT.from_values([])
        assert algebra.aggr_count(b) == 0
        assert algebra.aggr_sum(b) is None
        assert algebra.aggr_min(b) is None
        assert algebra.aggr_avg(b) is None

    def test_string_min_max(self):
        b = BAT.from_values(["pear", "fig"])
        assert algebra.aggr_min(b) == "fig"
        assert algebra.aggr_max(b) == "pear"

    def test_grouped_aggregates(self):
        values = BAT.from_values([10, 20, 30, 40])
        gids = BAT.from_values([0, 1, 0, 1])
        from repro.core.bat import BAT as B
        s = algebra.grouped_sum(values, gids, 2)
        assert s.decoded() == [40, 60]
        c = algebra.grouped_count(values, gids, 2)
        assert c.decoded() == [2, 2]
        assert algebra.grouped_min(values, gids, 2).decoded() == [10, 20]
        assert algebra.grouped_max(values, gids, 2).decoded() == [30, 40]
        assert algebra.grouped_avg(values, gids, 2).decoded() == [20.0, 30.0]

    def test_grouped_sum_floats(self):
        values = BAT.from_values([1.5, 2.5])
        gids = BAT.from_values([0, 0])
        assert algebra.grouped_sum(values, gids, 1).decoded() == [4.0]


class TestCalc:
    def test_arithmetic(self):
        a = BAT.from_values([1, 2])
        b = BAT.from_values([10, 20])
        assert algebra.calc("+", a, b).decoded() == [11, 22]
        assert algebra.calc("*", a, 3).decoded() == [3, 6]
        assert algebra.calc("-", 10, a).decoded() == [9, 8]

    def test_division_yields_double(self):
        a = BAT.from_values([1, 2])
        out = algebra.calc("/", a, 2)
        assert out.atom is DBL
        assert out.decoded() == [0.5, 1.0]

    def test_comparison_yields_bit(self):
        a = BAT.from_values([1, 5, 3])
        out = algebra.calc(">", a, 2)
        assert out.atom is BIT
        assert out.decoded() == [False, True, True]

    def test_logic_and_not(self):
        t = BAT(BIT, [True, True, False])
        u = BAT(BIT, [True, False, False])
        assert algebra.calc("and", t, u).decoded() == [True, False, False]
        assert algebra.calc("or", t, u).decoded() == [True, True, False]
        assert algebra.calc_not(t).decoded() == [False, False, True]

    def test_string_comparison(self):
        s = BAT.from_values(["ann", "bob"])
        out = algebra.calc("==", s, "bob")
        assert out.decoded() == [False, True]

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            algebra.calc("**", BAT.from_values([1]), 2)

    def test_ifthenelse(self):
        cond = BAT(BIT, [True, False])
        a = BAT.from_values([1, 1])
        b = BAT.from_values([2, 2])
        assert algebra.ifthenelse(cond, a, b).decoded() == [1, 2]


# ---------------------------------------------------------------------------
# property-based validation against reference implementations
# ---------------------------------------------------------------------------

small_ints = st.integers(min_value=-50, max_value=50)


@settings(max_examples=60, deadline=None)
@given(st.lists(small_ints, max_size=30), st.lists(small_ints, max_size=30))
def test_property_join_matches_nested_loop(lvals, rvals):
    l = BAT.from_values(lvals, atom=LNG)
    r = BAT.from_values(rvals, atom=LNG)
    lc, rc = algebra.join(l, r)
    ref_lc, ref_rc = algebra.nested_loop_join(l, r)
    assert (sorted(zip(lc.decoded(), rc.decoded()))
            == sorted(zip(ref_lc.decoded(), ref_rc.decoded())))


@settings(max_examples=60, deadline=None)
@given(st.lists(small_ints, max_size=50), small_ints, small_ints)
def test_property_select_range_matches_python(values, lo, hi):
    b = BAT.from_values(values, atom=LNG)
    cand = algebra.select_range(b, lo=lo, hi=hi)
    expected = [i for i, v in enumerate(values) if lo <= v < hi]
    assert cand.decoded() == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(small_ints, max_size=50))
def test_property_sort_is_permutation_and_sorted(values):
    b = BAT.from_values(values, atom=LNG)
    s, perm = algebra.sort(b)
    assert sorted(values) == s.decoded()
    assert sorted(perm.decoded()) == list(range(len(values)))


@settings(max_examples=40, deadline=None)
@given(st.lists(small_ints, max_size=50))
def test_property_group_partition(values):
    b = BAT.from_values(values, atom=LNG)
    gids, extents, hist = algebra.group(b)
    assert sum(hist.decoded()) == len(values)
    # Rows share a gid exactly when they share a value.
    g = gids.decoded()
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            assert (g[i] == g[j]) == (values[i] == values[j])


@settings(max_examples=40, deadline=None)
@given(st.lists(small_ints, min_size=1, max_size=50))
def test_property_grouped_sum_consistent_with_total(values):
    b = BAT.from_values(values, atom=LNG)
    gids, _, hist = algebra.group(b)
    sums = algebra.grouped_sum(b, gids, len(hist))
    assert sum(sums.decoded()) == sum(values)
