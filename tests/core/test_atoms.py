"""Unit tests for the atom type system."""

import math

import numpy as np
import pytest

from repro.core import atoms
from repro.core.atoms import (
    BIT, BTE, DBL, FLT, INT, LNG, OID, SHT, STR,
    atom_by_name, atom_for_dtype, nil_value,
)


class TestLookup:
    def test_by_monetdb_name(self):
        assert atom_by_name("int") is INT
        assert atom_by_name("lng") is LNG
        assert atom_by_name("oid") is OID
        assert atom_by_name("str") is STR

    def test_sql_aliases(self):
        assert atom_by_name("INTEGER") is INT
        assert atom_by_name("BIGINT") is LNG
        assert atom_by_name("varchar") is STR
        assert atom_by_name("double") is DBL
        assert atom_by_name("boolean") is BIT

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            atom_by_name("quaternion")

    def test_atom_for_dtype(self):
        assert atom_for_dtype(np.int64) is LNG
        assert atom_for_dtype(np.float64) is DBL
        with pytest.raises(KeyError):
            atom_for_dtype(np.complex128)


class TestWidths:
    def test_fixed_widths(self):
        assert BTE.width == 1
        assert SHT.width == 2
        assert INT.width == 4
        assert LNG.width == 8
        assert FLT.width == 4
        assert DBL.width == 8

    def test_str_width_is_offset_width(self):
        assert STR.width == 8
        assert STR.varsized


class TestNil:
    def test_integer_nil_is_domain_min(self):
        assert nil_value(INT) == np.iinfo(np.int32).min
        assert nil_value(LNG) == np.iinfo(np.int64).min

    def test_float_nil_is_nan(self):
        assert math.isnan(nil_value(DBL))

    def test_is_nil_elementwise(self):
        arr = INT.array([1, INT.nil, 3])
        assert list(INT.is_nil(arr)) == [False, True, False]

    def test_is_nil_nan(self):
        arr = DBL.array([1.0, float("nan")])
        assert list(DBL.is_nil(arr)) == [False, True]


class TestArrays:
    def test_array_coerces_dtype(self):
        arr = INT.array([1, 2, 3])
        assert arr.dtype == np.int32

    def test_empty(self):
        assert len(LNG.empty()) == 0
        assert LNG.empty(5).dtype == np.int64

    def test_repr(self):
        assert repr(INT) == ":int"
