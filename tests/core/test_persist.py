"""Tests for memory-mapped BAT and database persistence."""

import numpy as np
import pytest

from repro.core import BAT, load_bat, load_database, save_bat, \
    save_database
from repro.sql import Database


class TestBATRoundtrip:
    def test_int_roundtrip(self, tmp_path):
        bat = BAT.from_values([5, 1, 4, 1])
        prefix = str(tmp_path / "col")
        save_bat(bat, prefix)
        loaded = load_bat(prefix)
        assert loaded.decoded() == [5, 1, 4, 1]
        assert loaded.atom.name == "lng"

    def test_mmap_is_demand_paged_view(self, tmp_path):
        bat = BAT.from_values(list(range(1000)))
        prefix = str(tmp_path / "col")
        save_bat(bat, prefix)
        loaded = load_bat(prefix, mmap=True)
        # The tail is the memmap or a zero-copy view of it.
        backing = loaded.tail if isinstance(loaded.tail, np.memmap) \
            else loaded.tail.base
        assert isinstance(backing, np.memmap)
        assert loaded.find(123) == 123  # O(1) positional lookup works

    def test_non_mmap_load(self, tmp_path):
        bat = BAT.from_values([1.5, 2.5])
        prefix = str(tmp_path / "col")
        save_bat(bat, prefix)
        loaded = load_bat(prefix, mmap=False)
        assert not isinstance(loaded.tail, np.memmap)
        assert loaded.decoded() == [1.5, 2.5]

    def test_string_roundtrip_with_nil_and_interning(self, tmp_path):
        bat = BAT.from_values(["bob", None, "ann", "bob"])
        prefix = str(tmp_path / "names")
        save_bat(bat, prefix)
        loaded = load_bat(prefix)
        assert loaded.decoded() == ["bob", None, "ann", "bob"]
        # Interning map was rebuilt: new puts reuse existing offsets.
        assert loaded.heap.find("ann") is not None
        assert loaded.heap.put("bob") == loaded.heap.find("bob")

    def test_loaded_bat_appends_copy_on_write(self, tmp_path):
        bat = BAT.from_values([1, 2])
        prefix = str(tmp_path / "col")
        save_bat(bat, prefix)
        loaded = load_bat(prefix)
        loaded.append_values([3])
        assert loaded.decoded() == [1, 2, 3]
        # The file is untouched.
        assert load_bat(prefix).decoded() == [1, 2]

    def test_materialized_head_rejected(self, tmp_path):
        bat = BAT.dense(3).reverse()  # materialized oid head
        with pytest.raises(ValueError):
            save_bat(bat, str(tmp_path / "x"))

    def test_hseqbase_preserved(self, tmp_path):
        bat = BAT.from_values([7], hseqbase=100)
        prefix = str(tmp_path / "col")
        save_bat(bat, prefix)
        assert load_bat(prefix).find(100) == 7


from hypothesis import given, settings, strategies as st


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-10**12, 10**12), max_size=100))
def test_property_int_bat_roundtrip(tmp_path_factory, values):
    from repro.core import LNG
    tmp = tmp_path_factory.mktemp("bats")
    bat = BAT(LNG, np.asarray(values, dtype=np.int64))
    prefix = str(tmp / "col")
    save_bat(bat, prefix)
    for mmap in (True, False):
        assert load_bat(prefix, mmap=mmap).decoded() == values


@settings(max_examples=25, deadline=None)
@given(st.lists(st.one_of(st.none(),
                          st.text(alphabet=st.characters(
                              blacklist_characters="\0"), max_size=10)),
                max_size=50))
def test_property_str_bat_roundtrip(tmp_path_factory, strings):
    from repro.core import STR
    from repro.core.heap import StringHeap
    tmp = tmp_path_factory.mktemp("bats")
    heap = StringHeap()
    bat = BAT(STR, heap.put_many(strings), heap=heap)
    prefix = str(tmp / "col")
    save_bat(bat, prefix)
    assert load_bat(prefix).decoded() == strings


class TestDatabaseRoundtrip:
    def make_db(self):
        db = Database()
        db.execute("CREATE TABLE people (name VARCHAR, age INT)")
        db.execute("INSERT INTO people VALUES ('ann', 30), ('bob', 41), "
                   "('carol', 30)")
        db.execute("DELETE FROM people WHERE name = 'bob'")
        return db

    def test_roundtrip_preserves_query_results(self, tmp_path):
        db = self.make_db()
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        q = "SELECT name, age FROM people ORDER BY name"
        assert loaded.query(q) == db.query(q)

    def test_deleted_rows_stay_deleted(self, tmp_path):
        db = self.make_db()
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert loaded.execute("SELECT count(*) FROM people").scalar() == 2

    def test_loaded_database_is_writable(self, tmp_path):
        db = self.make_db()
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        loaded.execute("INSERT INTO people VALUES ('dave', 25)")
        loaded.execute("UPDATE people SET age = 31 WHERE name = 'ann'")
        assert loaded.query("SELECT name FROM people WHERE age = 31") \
            == [("ann",)]
        # On-disk state unchanged until saved again.
        again = load_database(str(tmp_path / "db"))
        assert again.execute("SELECT count(*) FROM people").scalar() == 2

    def test_transactions_on_loaded_database(self, tmp_path):
        db = self.make_db()
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        with loaded.begin() as txn:
            txn.execute("INSERT INTO people VALUES ('eve', 1)")
        assert loaded.execute("SELECT count(*) FROM people").scalar() == 3

    def test_save_load_empty_table(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE empty (x INT)")
        save_database(db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert loaded.query("SELECT * FROM empty") == []
