"""Unit tests for the BAT storage structure."""

import numpy as np
import pytest

from repro.core import BAT, INT, LNG, OID, STR, AddressSpace


class TestConstruction:
    def test_from_values_infers_int(self):
        b = BAT.from_values([1, 2, 3])
        assert b.atom is LNG
        assert len(b) == 3
        assert b.hdense

    def test_from_values_strings_build_heap(self):
        b = BAT.from_values(["john", "roger", "bob", "will"])
        assert b.atom is STR
        assert b.heap is not None
        assert b.decoded() == ["john", "roger", "bob", "will"]

    def test_explicit_atom(self):
        b = BAT.from_values([1, 2], atom=INT)
        assert b.tail.dtype == np.int32

    def test_dense(self):
        b = BAT.dense(4, base=10)
        assert b.decoded() == [10, 11, 12, 13]
        assert b.tsorted
        assert b.tkey

    def test_head_tail_length_mismatch(self):
        with pytest.raises(ValueError):
            BAT(LNG, [1, 2, 3], head=[0, 1])

    def test_varsized_requires_heap(self):
        with pytest.raises(ValueError):
            BAT(STR, [0, 4])

    def test_rejects_2d_tail(self):
        with pytest.raises(ValueError):
            BAT(LNG, np.zeros((2, 2), dtype=np.int64))


class TestHeads:
    def test_void_head_materializes_on_demand(self):
        b = BAT.from_values([5, 6, 7], hseqbase=100)
        assert list(b.head) == [100, 101, 102]
        assert b.hdense

    def test_positional_lookup_dense(self):
        """The O(1) array-index lookup of Section 3."""
        b = BAT.from_values([10, 20, 30], hseqbase=7)
        assert b.find(8) == 20
        assert b.position_of(8) == 1

    def test_positional_lookup_out_of_range(self):
        b = BAT.from_values([10], hseqbase=0)
        with pytest.raises(KeyError):
            b.find(5)

    def test_materialized_head_lookup(self):
        b = BAT(LNG, [10, 20], head=[42, 99])
        assert b.find(99) == 20
        assert not b.hdense
        with pytest.raises(KeyError):
            b.find(0)


class TestProperties:
    def test_sortedness_lazily_computed(self):
        assert BAT.from_values([1, 2, 2, 3]).tsorted
        assert not BAT.from_values([3, 1]).tsorted
        assert BAT.from_values([3, 2, 1]).trevsorted

    def test_key_property(self):
        assert BAT.from_values([1, 2, 3]).tkey
        assert not BAT.from_values([1, 1]).tkey
        assert BAT.from_values([]).tkey

    def test_string_sortedness(self):
        assert BAT.from_values(["a", "b", "c"]).tsorted
        assert not BAT.from_values(["b", "a"]).tsorted

    def test_properties_invalidated_on_append(self):
        b = BAT.from_values([1, 2, 3])
        assert b.tsorted
        b.append_values([0])
        assert not b.tsorted


class TestAccess:
    def test_tail_at_decodes(self):
        b = BAT.from_values(["x", None])
        assert b.tail_at(0) == "x"
        assert b.tail_at(1) is None

    def test_fetch_gathers_positions(self):
        b = BAT.from_values([10, 20, 30, 40])
        got = b.fetch([3, 0, 2])
        assert got.decoded() == [40, 10, 30]

    def test_items(self):
        b = BAT.from_values([7, 8], hseqbase=5)
        assert list(b.items()) == [(5, 7), (6, 8)]

    def test_slice(self):
        b = BAT.from_values([1, 2, 3, 4], hseqbase=10)
        s = b.slice(1, 3)
        assert list(s.items()) == [(11, 2), (12, 3)]


class TestTransforms:
    def test_mirror(self):
        b = BAT.from_values([5, 6], hseqbase=3)
        m = b.mirror()
        assert list(m.items()) == [(3, 3), (4, 4)]

    def test_mark(self):
        b = BAT.from_values([9, 9, 9])
        m = b.mark(base=100)
        assert m.decoded() == [100, 101, 102]

    def test_reverse_swaps_columns(self):
        b = BAT(OID, [7, 8], head=[1, 2])
        r = b.reverse()
        assert list(r.items()) == [(7, 1), (8, 2)]

    def test_reverse_requires_oid_tail(self):
        with pytest.raises(TypeError):
            BAT.from_values([1.5]).reverse()

    def test_copy_is_independent(self):
        b = BAT.from_values([1, 2])
        c = b.copy()
        c.append_values([3])
        assert len(b) == 2
        assert len(c) == 3

    def test_replace_at(self):
        b = BAT.from_values([1, 2, 3])
        b.replace_at([1], [99])
        assert b.decoded() == [1, 99, 3]

    def test_append_requires_void_head(self):
        b = BAT(LNG, [1], head=[0])
        with pytest.raises(ValueError):
            b.append_values([2])


class TestAddressSpace:
    def test_allocations_do_not_overlap(self):
        space = AddressSpace(base=0, alignment=64)
        a = space.allocate(100)
        b = space.allocate(10)
        c = space.allocate(1)
        assert b >= a + 100
        assert c >= b + 10

    def test_bat_tail_base_is_stable(self):
        b = BAT.from_values([1, 2, 3])
        assert b.tail_base == b.tail_base

    def test_distinct_bats_distinct_ranges(self):
        b1 = BAT.from_values(list(range(100)))
        b2 = BAT.from_values(list(range(100)))
        r1 = range(b1.tail_base, b1.tail_base + b1.tail_nbytes)
        r2 = range(b2.tail_base, b2.tail_base + b2.tail_nbytes)
        assert r1.stop <= r2.start or r2.stop <= r1.start

    def test_same_pairs(self):
        a = BAT.from_values([1, 2])
        b = BAT(LNG, [2, 1], head=[1, 0])
        assert a.same_pairs(b)
