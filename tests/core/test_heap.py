"""Unit tests for the string heap."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core import StringHeap


class TestStringHeap:
    def test_roundtrip(self):
        heap = StringHeap()
        off = heap.put("john wayne")
        assert heap.get(off) == "john wayne"

    def test_interning_shares_storage(self):
        heap = StringHeap()
        a = heap.put("actor")
        size = heap.nbytes
        b = heap.put("actor")
        assert a == b
        assert heap.nbytes == size

    def test_nil(self):
        heap = StringHeap()
        assert heap.put(None) == StringHeap.NIL_OFFSET
        assert heap.get(StringHeap.NIL_OFFSET) is None

    def test_put_many_get_many(self):
        heap = StringHeap()
        offsets = heap.put_many(["a", "bb", "a", None])
        assert offsets.dtype == np.int64
        assert heap.get_many(offsets) == ["a", "bb", "a", None]
        assert offsets[0] == offsets[2]

    def test_find(self):
        heap = StringHeap()
        heap.put("present")
        assert heap.find("present") is not None
        assert heap.find("absent") is None
        assert heap.find(None) == StringHeap.NIL_OFFSET

    def test_contains(self):
        heap = StringHeap()
        heap.put("x")
        assert "x" in heap
        assert "y" not in heap

    def test_unicode(self):
        heap = StringHeap()
        off = heap.put("名前—ünïcode")
        assert heap.get(off) == "名前—ünïcode"

    def test_empty_string(self):
        heap = StringHeap()
        off = heap.put("")
        assert heap.get(off) == ""

    @given(st.lists(st.text(alphabet=st.characters(blacklist_characters="\0"),
                            max_size=20), max_size=50))
    def test_property_roundtrip_any_strings(self, strings):
        heap = StringHeap()
        offsets = heap.put_many(strings)
        assert heap.get_many(offsets) == strings
