"""Integration: catalogued join indices turn joins into fetches."""

import numpy as np
import pytest

from repro.sql import Database
from repro.workloads import StarSchema


def make_pair(n_sales=2000, seed=0):
    """Two identical star-schema databases, one with a join index."""
    schema = StarSchema(n_sales=n_sales, seed=seed)
    plain = schema.populate(Database())
    indexed = schema.populate(Database())
    indexed.catalog.declare_join_index("sales", "item_id",
                                       "items", "item_id")
    return plain, indexed


QUERIES = [
    "SELECT category, sum(qty) FROM sales JOIN items "
    "ON sales.item_id = items.item_id GROUP BY category ORDER BY category",
    "SELECT price FROM sales JOIN items ON sales.item_id = items.item_id "
    "WHERE qty > 15 ORDER BY price LIMIT 5",
    "SELECT count(*) FROM sales JOIN items "
    "ON sales.item_id = items.item_id WHERE category = 3",
]


class TestJoinIndex:
    def test_declaration_validates_columns(self):
        plain, indexed = make_pair(50)
        with pytest.raises(KeyError):
            indexed.catalog.declare_join_index("sales", "ghost",
                                               "items", "item_id")

    def test_plan_uses_index(self):
        _, indexed = make_pair(50)
        plan = indexed.explain(QUERIES[0])
        assert "sql.joinindex" in plan
        assert "algebra.join" not in plan

    def test_plain_plan_does_not(self):
        plain, _ = make_pair(50)
        assert "sql.joinindex" not in plain.explain(QUERIES[0])

    @pytest.mark.parametrize("query", QUERIES)
    def test_identical_results(self, query):
        plain, indexed = make_pair()
        assert indexed.query(query) == plain.query(query)

    def test_mapping_contents(self):
        _, indexed = make_pair(100)
        mapping = indexed.catalog.join_index("sales", "item_id",
                                             "items", "item_id")
        sales = indexed.catalog.get("sales")
        items = indexed.catalog.get("items")
        for row in range(20):
            target = int(mapping.tail[row])
            assert items.row(target)[0] == sales.row(row)[0]

    def test_index_rebuilds_after_updates(self):
        plain, indexed = make_pair(500)
        for db in (plain, indexed):
            db.execute("DELETE FROM items WHERE item_id = 7")
            db.execute("INSERT INTO items VALUES (7, 99, 1.25)")
            db.execute("UPDATE sales SET qty = qty + 1 WHERE item_id = 3")
        for query in QUERIES:
            assert indexed.query(query) == plain.query(query)

    def test_deleted_pk_rows_drop_matches(self):
        plain, indexed = make_pair(500)
        for db in (plain, indexed):
            db.execute("DELETE FROM items WHERE item_id < 10")
        q = ("SELECT count(*) FROM sales JOIN items "
             "ON sales.item_id = items.item_id")
        assert indexed.execute(q).scalar() == plain.execute(q).scalar()

    def test_index_cached_until_version_changes(self):
        _, indexed = make_pair(200)
        first = indexed.catalog.join_index("sales", "item_id",
                                           "items", "item_id")
        again = indexed.catalog.join_index("sales", "item_id",
                                           "items", "item_id")
        assert first is again
        indexed.execute("INSERT INTO sales VALUES (1, 1, 1, 1)")
        rebuilt = indexed.catalog.join_index("sales", "item_id",
                                             "items", "item_id")
        assert rebuilt is not first
        assert len(rebuilt) == len(first) + 1

    def test_join_index_inside_transaction(self):
        plain, indexed = make_pair(300)
        q = QUERIES[2]
        with indexed.begin() as txn_i, plain.begin() as txn_p:
            txn_i.execute("INSERT INTO sales VALUES (3, 1, 5, 1)")
            txn_p.execute("INSERT INTO sales VALUES (3, 1, 5, 1)")
            assert txn_i.execute(q).scalar() == txn_p.execute(q).scalar()
            txn_i.abort()
            txn_p.abort()

    def test_undeclared_index_raises(self):
        plain, _ = make_pair(50)
        with pytest.raises(KeyError):
            plain.catalog.join_index("sales", "item_id",
                                     "items", "item_id")
