"""Property tests for snapshot isolation under concurrent activity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import Database


def fresh_db(values):
    db = Database()
    db.execute("CREATE TABLE t (v INT)")
    if values:
        db.catalog.get("t").append_rows([(int(v),) for v in values])
    return db


operation = st.one_of(
    st.tuples(st.just("outside_insert"), st.integers(0, 50)),
    st.tuples(st.just("outside_delete"), st.integers(0, 50)),
    st.tuples(st.just("txn_insert"), st.integers(0, 50)),
    st.tuples(st.just("txn_delete"), st.integers(0, 50)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), max_size=20),
       st.lists(operation, max_size=12))
def test_property_snapshot_reads_are_frozen_plus_own_writes(initial, ops):
    """At every point, the transaction sees exactly: the initial rows,
    minus its own deletes, plus its own inserts — never any concurrent
    (outside) activity."""
    db = fresh_db(initial)
    txn = db.begin()
    txn.execute("SELECT count(*) FROM t")  # pin the snapshot
    model = sorted(initial)  # what the txn should see
    outside_model = sorted(initial)
    for kind, value in ops:
        if kind == "outside_insert":
            db.execute("INSERT INTO t VALUES ({0})".format(value))
            outside_model.append(value)
        elif kind == "outside_delete":
            removed = db.execute(
                "DELETE FROM t WHERE v = {0}".format(value))
            outside_model = [v for v in outside_model if v != value]
        elif kind == "txn_insert":
            txn.execute("INSERT INTO t VALUES ({0})".format(value))
            model.append(value)
        else:
            txn.execute("DELETE FROM t WHERE v = {0}".format(value))
            model = [v for v in model if v != value]
        seen = [r[0] for r in
                txn.execute("SELECT v FROM t ORDER BY v").rows()]
        assert seen == sorted(model)
        outside_seen = [r[0] for r in
                        db.query("SELECT v FROM t ORDER BY v")]
        assert outside_seen == sorted(outside_model)
    txn.abort()
    # Abort leaves only the outside state.
    assert [r[0] for r in db.query("SELECT v FROM t ORDER BY v")] == \
        sorted(outside_model)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 30), max_size=15),
       st.lists(st.integers(0, 30), min_size=1, max_size=8),
       st.lists(st.integers(0, 30), min_size=1, max_size=8))
def test_property_append_only_commits_merge(initial, txn_a_vals,
                                            txn_b_vals):
    """Two concurrent append-only transactions both commit, and the
    final state is the union — appends never conflict."""
    db = fresh_db(initial)
    a = db.begin()
    b = db.begin()
    for v in txn_a_vals:
        a.execute("INSERT INTO t VALUES ({0})".format(v))
    for v in txn_b_vals:
        b.execute("INSERT INTO t VALUES ({0})".format(v))
    a.commit()
    b.commit()
    final = [r[0] for r in db.query("SELECT v FROM t ORDER BY v")]
    assert final == sorted(initial + txn_a_vals + txn_b_vals)
