"""Integration: cracking wired into the SQL engine via the optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mal.optimizer import CRACKING_PIPELINE
from repro.sql import Database
from repro.workloads import uniform_ints


def make_pair(n=2000, seed=0):
    """A plain and a cracking database with identical contents."""
    values = uniform_ints(n, 0, 1000, seed=seed)
    plain = Database()
    cracked = Database.with_cracking()
    for db in (plain, cracked):
        db.execute("CREATE TABLE t (v INT, tag VARCHAR)")
        db.catalog.get("t").append_rows(
            [(int(v), "x" if v % 2 else "y") for v in values])
    return plain, cracked


class TestRewrite:
    def test_plan_uses_crackedselect(self):
        _, cracked = make_pair(50)
        plan = cracked.explain("SELECT v FROM t WHERE v > 100 AND v < 200")
        assert "sql.crackedselect" in plan
        assert "algebra.selectrange" not in plan.split("\n")[2]

    def test_equality_select_rewritten(self):
        _, cracked = make_pair(50)
        plan = cracked.explain("SELECT v FROM t WHERE v = 7")
        assert "sql.crackedselect" in plan

    def test_string_select_falls_back_safely(self):
        plain, cracked = make_pair(100)
        q = "SELECT count(*) FROM t WHERE tag = 'x'"
        assert cracked.execute(q).scalar() == plain.execute(q).scalar()

    def test_chained_conjuncts_partially_rewritten(self):
        _, cracked = make_pair(50)
        # Only the first conjunct sees the raw tid candidates; later
        # ones refine its output and stay on the plain path.
        plan = cracked.explain(
            "SELECT v FROM t WHERE v > 10 AND v % 2 = 0")
        assert "sql.crackedselect" in plan


class TestEquivalence:
    def test_same_results_over_query_sequence(self):
        plain, cracked = make_pair()
        rng = np.random.default_rng(1)
        for _ in range(30):
            lo = int(rng.integers(0, 900))
            q = ("SELECT v FROM t WHERE v >= {0} AND v < {1} "
                 "ORDER BY v".format(lo, lo + 50))
            assert cracked.query(q) == plain.query(q)

    def test_cracker_actually_cracks(self):
        _, cracked = make_pair()
        for lo in (100, 300, 700):
            cracked.execute(
                "SELECT count(*) FROM t WHERE v >= {0} AND v < {1}"
                .format(lo, lo + 50))
        touched, pieces = cracked.catalog.get("t").cracker_stats("v")
        assert pieces >= 4
        assert touched > 0

    def test_updates_stay_consistent(self):
        plain, cracked = make_pair()
        statements = [
            "INSERT INTO t VALUES (150, 'new'), (151, 'new')",
            "DELETE FROM t WHERE v = 150",
            "UPDATE t SET v = v + 1 WHERE v >= 300 AND v < 310",
        ]
        probe = "SELECT count(*) FROM t WHERE v >= 100 AND v < 400"
        for db in (plain, cracked):
            db.execute(probe)
        for stmt in statements:
            for db in (plain, cracked):
                db.execute(stmt)
            assert cracked.execute(probe).scalar() == \
                plain.execute(probe).scalar()

    def test_transactions_bypass_shared_cracker(self):
        plain, cracked = make_pair()
        with cracked.begin() as txn:
            txn.execute("INSERT INTO t VALUES (42, 'txn')")
            inside = txn.execute(
                "SELECT count(*) FROM t WHERE v = 42").scalar()
            txn.abort()
        with plain.begin() as txn:
            txn.execute("INSERT INTO t VALUES (42, 'txn')")
            assert txn.execute(
                "SELECT count(*) FROM t WHERE v = 42").scalar() == inside
            txn.abort()

    def test_merge_deltas_resets_crackers(self):
        _, cracked = make_pair(200)
        cracked.execute("SELECT count(*) FROM t WHERE v > 500")
        cracked.execute("DELETE FROM t WHERE v < 100")
        table = cracked.catalog.get("t")
        table.merge_deltas()
        q = "SELECT count(*) FROM t WHERE v > 500"
        before = cracked.execute(q).scalar()
        assert cracked.execute(q).scalar() == before  # still consistent


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=60),
       st.lists(st.tuples(st.sampled_from(["q", "i", "d"]),
                          st.integers(0, 100), st.integers(0, 30)),
                max_size=12))
def test_property_cracked_engine_equals_plain_engine(values, ops):
    plain = Database()
    cracked = Database.with_cracking()
    for db in (plain, cracked):
        db.execute("CREATE TABLE t (v INT)")
        db.catalog.get("t").append_rows([(int(v),) for v in values])
    for kind, a, b in ops:
        if kind == "q":
            q = ("SELECT v FROM t WHERE v >= {0} AND v < {1} "
                 "ORDER BY v".format(a, a + b))
            assert cracked.query(q) == plain.query(q)
        elif kind == "i":
            stmt = "INSERT INTO t VALUES ({0}), ({1})".format(a, a + b)
            plain.execute(stmt)
            cracked.execute(stmt)
        else:
            stmt = "DELETE FROM t WHERE v = {0}".format(a)
            plain.execute(stmt)
            cracked.execute(stmt)
    final = "SELECT v FROM t ORDER BY v"
    assert cracked.query(final) == plain.query(final)
