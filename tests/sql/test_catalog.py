"""Unit tests for tables, delta BATs, and deleted positions."""

import pytest

from repro.sql import Catalog, Table


@pytest.fixture
def table():
    t = Table("people", [("name", "varchar"), ("age", "int")])
    t.append_rows([("john", 1907), ("roger", 1927), ("bob", 1927)])
    return t


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table("empty", [])

    def test_duplicate_column(self):
        with pytest.raises(ValueError):
            Table("t", [("a", "int"), ("a", "int")])

    def test_append_and_counts(self, table):
        assert table.physical_count == 3
        assert table.visible_count == 3
        assert table.delta_count == 3  # nothing merged yet
        assert table.base_count == 0

    def test_bind_returns_column_bat(self, table):
        assert table.bind("age").decoded() == [1907, 1927, 1927]
        with pytest.raises(KeyError):
            table.bind("ghost")

    def test_row_access(self, table):
        assert table.row(1) == ("roger", 1927)

    def test_append_row_arity_checked(self, table):
        with pytest.raises(ValueError):
            table.append_rows([("too", "many", "values")])

    def test_append_partial_columns_rejected(self, table):
        with pytest.raises(ValueError):
            table.append_rows([("x",)], columns=["name"])

    def test_append_reordered_columns(self, table):
        table.append_rows([(1968, "will")], columns=["age", "name"])
        assert table.row(3) == ("will", 1968)

    def test_null_becomes_nil(self, table):
        table.append_rows([(None, None)])
        name, age = table.row(3)
        assert name is None
        from repro.core import INT
        assert age == INT.nil

    def test_tid_excludes_deleted(self, table):
        table.delete_oids([1])
        assert table.tid().decoded() == [0, 2]
        assert table.visible_count == 2
        with pytest.raises(KeyError):
            table.row(1)

    def test_delete_idempotent_and_bounded(self, table):
        assert table.delete_oids([1, 1, 99, -5]) == 1
        assert table.delete_oids([1]) == 0

    def test_delete_bumps_version_only_when_effective(self, table):
        v = table.version
        table.delete_oids([99])
        assert table.version == v
        table.delete_oids([0])
        assert table.version == v + 1

    def test_merge_deltas_compacts(self, table):
        table.delete_oids([0])
        table.merge_deltas()
        assert table.physical_count == 2
        assert table.base_count == 2
        assert table.deleted == set()
        assert table.bind("name").decoded() == ["roger", "bob"]

    def test_atom_lookup(self, table):
        from repro.core import INT, STR
        assert table.atom("age") is INT
        assert table.atom("name") is STR
        with pytest.raises(KeyError):
            table.atom("ghost")


class TestCatalog:
    def test_create_get_contains(self):
        cat = Catalog()
        cat.create_table("t", [("a", "int")])
        assert "t" in cat
        assert cat.get("t").name == "t"

    def test_duplicate_table(self):
        cat = Catalog()
        cat.create_table("t", [("a", "int")])
        with pytest.raises(ValueError):
            cat.create_table("t", [("a", "int")])

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            Catalog().get("ghost")

    def test_drop(self):
        cat = Catalog()
        cat.create_table("t", [("a", "int")])
        cat.drop_table("t")
        assert "t" not in cat

    def test_interpreter_protocol(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "int")])
        t.append_rows([(1,), (2,)])
        t.delete_oids([0])
        assert cat.count("t") == 1
        assert cat.tid("t").decoded() == [1]
        assert cat.bind("t", "a").decoded() == [1, 2]
