"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql import SQLSyntaxError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers_lowercased(self):
        assert kinds("MyTable") == [("ident", "mytable")]

    def test_numbers(self):
        assert kinds("42 3.14 1e3") == [
            ("number", 42), ("number", 3.14), ("number", 1000.0)]

    def test_strings_with_escaped_quotes(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_operators(self):
        assert kinds("<> <= >= != = < >") == [
            ("op", "<>"), ("op", "<="), ("op", ">="), ("op", "!="),
            ("op", "="), ("op", "<"), ("op", ">")]

    def test_comments_skipped(self):
        assert kinds("select -- a comment\n1") == [
            ("keyword", "select"), ("number", 1)]

    def test_punctuation(self):
        assert kinds("(a, b.c);") == [
            ("op", "("), ("ident", "a"), ("op", ","), ("ident", "b"),
            ("op", "."), ("ident", "c"), ("op", ")"), ("op", ";")]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @")

    def test_end_token(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == "end"
