"""Tests for sampling-based selectivity estimation and conjunct order."""

import numpy as np
import pytest

from repro.core import BAT, algebra
from repro.sql import Database
from repro.workloads import uniform_ints


class TestEstimate:
    def test_empty(self):
        assert algebra.estimate_selectivity(BAT.from_values([]), 0, 1) \
            == 0.0

    def test_uniform_accuracy(self):
        values = uniform_ints(10_000, 0, 1000, seed=1)
        bat = BAT.from_values(values)
        est = algebra.estimate_selectivity(bat, lo=0, hi=100)
        true = np.count_nonzero((values >= 0) & (values < 100)) / 10_000
        assert abs(est - true) < 0.1

    def test_extremes(self):
        bat = BAT.from_values(list(range(100)))
        assert algebra.estimate_selectivity(bat, lo=1000) == 0.0
        assert algebra.estimate_selectivity(bat, lo=0) == 1.0

    def test_bounds_inclusive(self):
        bat = BAT.from_values([5] * 100)
        assert algebra.estimate_selectivity(bat, lo=5, hi=5,
                                            lo_incl=True,
                                            hi_incl=True) == 1.0
        assert algebra.estimate_selectivity(bat, lo=5, hi=5,
                                            lo_incl=False) == 0.0

    def test_strings(self):
        bat = BAT.from_values(["a", "b", "c", "d"] * 25)
        est = algebra.estimate_selectivity(bat, lo="c")
        assert est == pytest.approx(0.5)


class TestConjunctOrdering:
    def make_db(self):
        db = Database()
        db.execute("CREATE TABLE t (wide INT, narrow INT)")
        # `wide > 0` keeps ~100%; `narrow = 1` keeps ~1%.
        db.catalog.get("t").append_rows(
            [(int(v) + 1, int(v) % 100)
             for v in uniform_ints(2000, 0, 1000, seed=2)])
        return db

    def test_most_selective_conjunct_runs_first(self):
        db = self.make_db()
        plan = db.explain("SELECT wide FROM t "
                          "WHERE wide > 0 AND narrow = 1")
        lines = [l for l in plan.splitlines()
                 if "algebra.select" in l or "crackedselect" in l]
        # The equality on `narrow` (~1% selectivity) must precede the
        # range on `wide` (~100%): its bound column variable appears in
        # the first select.
        narrow_var = next(l.split(" :=")[0].strip()
                          for l in plan.splitlines()
                          if 'sql.bind("t", "narrow")' in l)
        assert narrow_var in lines[0]
        assert "selectrange" in lines[1]

    def test_results_unchanged_by_ordering(self):
        db = self.make_db()
        a = db.query("SELECT wide FROM t WHERE wide > 500 AND narrow = 1 "
                     "ORDER BY wide")
        b = db.query("SELECT wide FROM t WHERE narrow = 1 AND wide > 500 "
                     "ORDER BY wide")
        assert a == b
        reference = db.query("SELECT wide FROM t WHERE narrow = 1 "
                             "ORDER BY wide")
        assert a == [r for r in reference if r[0] > 500]

    def test_single_conjunct_untouched(self):
        db = self.make_db()
        plan = db.explain("SELECT wide FROM t WHERE wide > 0")
        assert "algebra.selectrange" in plan
