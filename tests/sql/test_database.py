"""End-to-end tests: SQL text -> MAL -> BAT kernel -> results."""

import pytest

from repro.sql import Database
from repro.sql.compiler import SQLCompileError
from tests.helpers import assert_same_rows


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE people (name VARCHAR, age INT)")
    d.execute("INSERT INTO people VALUES "
              "('john', 1907), ('roger', 1927), ('bob', 1927), "
              "('will', 1968)")
    return d


@pytest.fixture
def shop():
    d = Database()
    d.execute("CREATE TABLE items (id INT, label VARCHAR, price DOUBLE)")
    d.execute("CREATE TABLE sales (item_id INT, qty INT, day INT)")
    d.execute("INSERT INTO items VALUES "
              "(1, 'apple', 0.5), (2, 'pear', 0.75), (3, 'fig', 2.0)")
    d.execute("INSERT INTO sales VALUES "
              "(1, 10, 1), (1, 5, 2), (2, 7, 1), (3, 2, 3), (1, 1, 3)")
    return d


class TestBasicSelect:
    def test_figure1_query(self, db):
        rows = db.query("SELECT name FROM people WHERE age = 1927")
        assert_same_rows(rows, [("roger",), ("bob",)])

    def test_star(self, db):
        rows = db.query("SELECT * FROM people WHERE age > 1950")
        assert rows == [("will", 1968)]

    def test_projection_expression(self, db):
        rows = db.query("SELECT age + 1 FROM people WHERE name = 'john'")
        assert rows == [(1908,)]

    def test_alias_in_result(self, db):
        result = db.execute("SELECT age AS born FROM people LIMIT 1")
        assert result.names == ["born"]

    def test_where_and(self, db):
        rows = db.query(
            "SELECT name FROM people WHERE age >= 1927 AND age < 1968")
        assert_same_rows(rows, [("roger",), ("bob",)])

    def test_where_or(self, db):
        rows = db.query(
            "SELECT name FROM people WHERE age = 1907 OR age = 1968")
        assert_same_rows(rows, [("john",), ("will",)])

    def test_where_not(self, db):
        rows = db.query("SELECT name FROM people WHERE NOT age = 1927")
        assert_same_rows(rows, [("john",), ("will",)])

    def test_where_between(self, db):
        rows = db.query(
            "SELECT name FROM people WHERE age BETWEEN 1927 AND 1968")
        assert len(rows) == 3

    def test_where_in(self, db):
        rows = db.query("SELECT name FROM people WHERE age IN (1907, 1968)")
        assert_same_rows(rows, [("john",), ("will",)])

    def test_where_string(self, db):
        assert db.query("SELECT age FROM people WHERE name = 'bob'") == \
            [(1927,)]

    def test_where_arithmetic(self, db):
        rows = db.query("SELECT name FROM people WHERE age % 2 = 0")
        assert rows == [("will",)]

    def test_order_by(self, db):
        rows = db.query("SELECT name FROM people ORDER BY age DESC, name")
        assert rows == [("will",), ("bob",), ("roger",), ("john",)]

    def test_limit(self, db):
        assert len(db.query("SELECT name FROM people LIMIT 2")) == 2

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT age FROM people ORDER BY age")
        assert rows == [(1907,), (1927,), (1968,)]

    def test_empty_result(self, db):
        assert db.query("SELECT name FROM people WHERE age = 1800") == []

    def test_constant_select_item(self, db):
        rows = db.query("SELECT name, 7 FROM people WHERE age = 1907")
        assert rows == [("john", 7)]

    def test_fromless_constant(self, db):
        assert db.query("SELECT 1 + 2") == [(3,)]


class TestAggregates:
    def test_scalar_aggregates(self, db):
        result = db.execute(
            "SELECT count(*), min(age), max(age), sum(age), avg(age) "
            "FROM people")
        assert result.rows() == [(4, 1907, 1927 + 41, 7729, 7729 / 4)]

    def test_count_star_respects_where(self, db):
        assert db.execute(
            "SELECT count(*) FROM people WHERE age = 1927").scalar() == 2

    def test_count_distinct(self, db):
        assert db.execute(
            "SELECT count(DISTINCT age) FROM people").scalar() == 3

    def test_aggregate_expression(self, db):
        assert db.execute(
            "SELECT max(age) - min(age) FROM people").scalar() == 61

    def test_group_by(self, shop):
        rows = db_rows = shop.query(
            "SELECT item_id, sum(qty) FROM sales GROUP BY item_id "
            "ORDER BY item_id")
        assert rows == [(1, 16), (2, 7), (3, 2)]

    def test_group_by_count_star(self, shop):
        rows = shop.query(
            "SELECT day, count(*) FROM sales GROUP BY day ORDER BY day")
        assert rows == [(1, 2), (2, 1), (3, 2)]

    def test_group_by_having(self, shop):
        rows = shop.query(
            "SELECT item_id, sum(qty) AS total FROM sales "
            "GROUP BY item_id HAVING sum(qty) > 5 ORDER BY item_id")
        assert rows == [(1, 16), (2, 7)]

    def test_group_by_avg_min_max(self, shop):
        rows = shop.query(
            "SELECT item_id, avg(qty), min(qty), max(qty) FROM sales "
            "GROUP BY item_id ORDER BY item_id")
        assert rows[0] == (1, 16 / 3, 1, 10)

    def test_group_by_expression_key(self, shop):
        rows = shop.query(
            "SELECT day % 2, count(*) FROM sales GROUP BY day % 2 "
            "ORDER BY day % 2")
        assert rows == [(0, 1), (1, 4)]

    def test_bare_column_outside_group_rejected(self, shop):
        with pytest.raises(SQLCompileError):
            shop.execute("SELECT qty FROM sales GROUP BY item_id")


class TestJoins:
    def test_two_way_join(self, shop):
        rows = shop.query(
            "SELECT label, qty FROM sales JOIN items "
            "ON sales.item_id = items.id ORDER BY label, qty")
        assert rows == [("apple", 1), ("apple", 5), ("apple", 10),
                        ("fig", 2), ("pear", 7)]

    def test_join_with_where(self, shop):
        rows = shop.query(
            "SELECT label FROM sales JOIN items ON sales.item_id = items.id "
            "WHERE qty > 6 ORDER BY label")
        assert rows == [("apple",), ("pear",)]

    def test_join_aggregate(self, shop):
        rows = shop.query(
            "SELECT label, sum(qty * price) AS revenue FROM sales "
            "JOIN items ON sales.item_id = items.id "
            "GROUP BY label ORDER BY label")
        assert rows == [("apple", 8.0), ("fig", 4.0), ("pear", 5.25)]

    def test_join_residual_condition(self, shop):
        rows = shop.query(
            "SELECT label, qty FROM sales JOIN items "
            "ON sales.item_id = items.id AND qty > 5 ORDER BY label")
        assert rows == [("apple", 10), ("pear", 7)]

    def test_self_join_with_aliases(self, shop):
        rows = shop.query(
            "SELECT a.day, b.day FROM sales a JOIN sales b "
            "ON a.item_id = b.item_id WHERE a.day < b.day "
            "ORDER BY a.day, b.day")
        assert rows == [(1, 2), (1, 3), (2, 3)]

    def test_join_requires_equality(self, shop):
        with pytest.raises(SQLCompileError):
            shop.execute("SELECT label FROM sales JOIN items "
                         "ON sales.qty > items.id")

    def test_ambiguous_column(self, shop):
        with pytest.raises(SQLCompileError):
            shop.execute("SELECT day FROM sales a JOIN sales b "
                         "ON a.item_id = b.item_id")


class TestDML:
    def test_insert_returns_count(self, db):
        assert db.execute(
            "INSERT INTO people VALUES ('x', 1), ('y', 2)") == 2

    def test_delete_where(self, db):
        assert db.execute("DELETE FROM people WHERE age = 1927") == 2
        assert db.execute("SELECT count(*) FROM people").scalar() == 2

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM people") == 4
        assert db.query("SELECT * FROM people") == []

    def test_update(self, db):
        assert db.execute(
            "UPDATE people SET age = age + 1 WHERE name = 'bob'") == 1
        assert db.query("SELECT age FROM people WHERE name = 'bob'") == \
            [(1928,)]

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE people SET age = 0, name = 'anon' "
                   "WHERE age < 1920")
        assert db.query("SELECT name, age FROM people WHERE age = 0") == \
            [("anon", 0)]

    def test_update_unknown_column(self, db):
        with pytest.raises(KeyError):
            db.execute("UPDATE people SET ghost = 1")

    def test_queries_after_deletes_use_tid(self, db):
        db.execute("DELETE FROM people WHERE name = 'roger'")
        rows = db.query("SELECT name FROM people WHERE age = 1927")
        assert rows == [("bob",)]


class TestResultSet:
    def test_column_access(self, db):
        result = db.execute("SELECT name, age FROM people LIMIT 2")
        assert result.column("age") == [1907, 1927]
        with pytest.raises(KeyError):
            result.column("ghost")

    def test_len_and_iter(self, db):
        result = db.execute("SELECT name FROM people")
        assert len(result) == 4
        assert list(result)[0] == ("john",)

    def test_pretty_print(self, db):
        text = str(db.execute("SELECT name, age FROM people LIMIT 1"))
        assert "name" in text and "age" in text and "john" in text

    def test_scalar_requires_1x1(self, db):
        with pytest.raises(ValueError):
            db.execute("SELECT name FROM people").scalar()


class TestExplain:
    def test_explain_shows_mal(self, db):
        text = db.explain("SELECT name FROM people WHERE age = 1927")
        assert "algebra.select" in text
        assert "sql.tid" in text
        assert "algebra.leftfetchjoin" in text

    def test_explain_rejects_dml(self, db):
        with pytest.raises(TypeError):
            db.explain("DELETE FROM people")
