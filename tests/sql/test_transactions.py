"""Tests for snapshot isolation over delta BATs."""

import pytest

from repro.sql import ConflictError, Database
from repro.sql.transactions import TransactionClosedError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE accounts (owner VARCHAR, balance INT)")
    d.execute("INSERT INTO accounts VALUES ('ann', 100), ('bob', 50)")
    return d


class TestSnapshotReads:
    def test_reader_does_not_see_later_commits(self, db):
        txn = db.begin()
        # Take the snapshot by reading.
        assert txn.execute("SELECT count(*) FROM accounts").scalar() == 2
        db.execute("INSERT INTO accounts VALUES ('carl', 10)")
        db.execute("DELETE FROM accounts WHERE owner = 'ann'")
        # The snapshot is frozen.
        assert txn.execute("SELECT count(*) FROM accounts").scalar() == 2
        rows = txn.execute(
            "SELECT owner FROM accounts ORDER BY owner").rows()
        assert rows == [("ann",), ("bob",)]
        txn.abort()
        # Outside, the new state is visible.
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2
        assert db.query("SELECT owner FROM accounts ORDER BY owner") == \
            [("bob",), ("carl",)]

    def test_reads_see_own_writes(self, db):
        with db.begin() as txn:
            txn.execute("INSERT INTO accounts VALUES ('dora', 5)")
            assert txn.execute(
                "SELECT count(*) FROM accounts").scalar() == 3
            txn.execute("UPDATE accounts SET balance = 7 "
                        "WHERE owner = 'dora'")
            assert txn.execute("SELECT balance FROM accounts "
                               "WHERE owner = 'dora'").rows() == [(7,)]
            txn.abort()

    def test_own_deletes_visible(self, db):
        txn = db.begin()
        txn.execute("DELETE FROM accounts WHERE owner = 'ann'")
        assert txn.execute("SELECT count(*) FROM accounts").scalar() == 1
        txn.abort()
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2


class TestCommitAbort:
    def test_commit_applies_buffered_writes(self, db):
        txn = db.begin()
        txn.execute("INSERT INTO accounts VALUES ('eve', 1)")
        txn.execute("DELETE FROM accounts WHERE owner = 'bob'")
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2
        txn.commit()
        assert db.query("SELECT owner FROM accounts ORDER BY owner") == \
            [("ann",), ("eve",)]

    def test_abort_discards(self, db):
        txn = db.begin()
        txn.execute("DELETE FROM accounts")
        txn.abort()
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2

    def test_closed_transaction_unusable(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionClosedError):
            txn.execute("SELECT * FROM accounts")
        with pytest.raises(TransactionClosedError):
            txn.commit()

    def test_context_manager_commits(self, db):
        with db.begin() as txn:
            txn.execute("INSERT INTO accounts VALUES ('fred', 3)")
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 3

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.execute("DELETE FROM accounts")
                raise RuntimeError("boom")
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2

    def test_ddl_rejected(self, db):
        txn = db.begin()
        with pytest.raises(NotImplementedError):
            txn.execute("CREATE TABLE t (a INT)")
        txn.abort()

    def test_update_in_transaction_commits(self, db):
        with db.begin() as txn:
            txn.execute("UPDATE accounts SET balance = balance + 10 "
                        "WHERE owner = 'ann'")
        assert db.query("SELECT balance FROM accounts "
                        "WHERE owner = 'ann'") == [(110,)]


class TestConflicts:
    def test_append_append_merges(self, db):
        t1 = db.begin()
        t2 = db.begin()
        t1.execute("INSERT INTO accounts VALUES ('gina', 1)")
        t2.execute("INSERT INTO accounts VALUES ('hank', 2)")
        t1.commit()
        t2.commit()  # appends never conflict
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 4

    def test_delete_after_concurrent_write_conflicts(self, db):
        t1 = db.begin()
        # Snapshot t1 by touching the table.
        t1.execute("SELECT count(*) FROM accounts")
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        db.execute("UPDATE accounts SET balance = 0 WHERE owner = 'ann'")
        with pytest.raises(ConflictError):
            t1.commit()
        assert t1.closed

    def test_delete_without_concurrent_write_commits(self, db):
        t1 = db.begin()
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        t1.commit()
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 1

    def test_disjoint_row_writers_both_commit(self, db):
        """Row-level first-writer-wins: concurrent writers touching
        *different* rows of the same table do not conflict."""
        t1 = db.begin()
        t1.execute("SELECT count(*) FROM accounts")  # snapshot now
        db.execute("UPDATE accounts SET balance = 0 WHERE owner = 'bob'")
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        t1.commit()
        assert db.query("SELECT owner, balance FROM accounts") == \
            [("bob", 0)]

    def test_same_row_second_writer_loses(self, db):
        """...but two writers updating the same row conflict, and the
        first committer wins."""
        t1 = db.begin()
        t1.execute("UPDATE accounts SET balance = 1 WHERE owner = 'ann'")
        db.execute("UPDATE accounts SET balance = 2 WHERE owner = 'ann'")
        with pytest.raises(ConflictError):
            t1.commit()
        assert db.query("SELECT balance FROM accounts "
                        "WHERE owner = 'ann'") == [(2,)]

    def test_vacuum_during_transaction_conflicts_conservatively(self, db):
        """merge_deltas renumbers oids, so a snapshot that predates the
        vacuum can no longer be validated row-by-row: any concurrent
        change then aborts the writer conservatively."""
        t1 = db.begin()
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        db.execute("DELETE FROM accounts WHERE owner = 'bob'")
        db.catalog.get("accounts").merge_deltas()
        with pytest.raises(ConflictError):
            t1.commit()


class TestAbortSemantics:
    """Regression: however a transaction ends — abort, conflict, crash,
    context-manager exit — it must end *closed*, with the catalog (and
    the WAL, when present) untouched unless the commit fully applied."""

    def _walled_db(self):
        from repro.faults import FaultInjector
        from repro.wal import WriteAheadLog
        d = Database(wal=WriteAheadLog())
        d.execute("CREATE TABLE accounts (owner VARCHAR, balance INT)")
        d.execute("INSERT INTO accounts VALUES ('ann', 100), ('bob', 50)")
        inj = FaultInjector()
        d.faults = inj
        d.wal.faults = inj
        return d, inj

    def test_conflict_leaves_catalog_and_wal_untouched(self):
        db, _ = self._walled_db()
        wal_len = len(db.wal)
        version = db.catalog.get("accounts").version
        t1 = db.begin()
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        t1.execute("INSERT INTO accounts VALUES ('gus', 9)")
        db.execute("UPDATE accounts SET balance = 0 WHERE owner = 'ann'")
        version_after_update = db.catalog.get("accounts").version
        with pytest.raises(ConflictError):
            t1.commit()
        assert t1.closed and t1.outcome == "aborted (conflict)"
        # Neither the buffered insert nor the delete reached the table,
        # and no commit record was logged for the failed transaction.
        assert db.query("SELECT owner FROM accounts ORDER BY owner") == \
            [("ann",), ("bob",)]
        assert db.catalog.get("accounts").version == version_after_update
        assert len(db.wal) == wal_len + 1  # only the autocommit UPDATE
        assert version_after_update > version

    def test_conflicted_transaction_is_unusable(self, db):
        t1 = db.begin()
        t1.execute("DELETE FROM accounts WHERE owner = 'ann'")
        db.execute("DELETE FROM accounts WHERE owner = 'ann'")
        with pytest.raises(ConflictError):
            t1.commit()
        with pytest.raises(TransactionClosedError):
            t1.execute("SELECT * FROM accounts")
        with pytest.raises(TransactionClosedError):
            t1.commit()
        with pytest.raises(TransactionClosedError):
            t1.abort()

    def test_exit_after_conflict_does_not_double_close(self, db):
        """__exit__ must not re-commit or re-abort a transaction the
        failed commit already closed."""
        db2_writer = db  # same database; conflict via autocommit write
        with pytest.raises(ConflictError):
            with db.begin() as txn:
                txn.execute("DELETE FROM accounts WHERE owner = 'ann'")
                db2_writer.execute(
                    "UPDATE accounts SET balance = 1 WHERE owner = 'ann'")
        assert txn.closed and txn.outcome == "aborted (conflict)"

    def test_exit_commit_conflict_propagates(self, db):
        """A conflict raised by the implicit commit on clean __exit__
        still propagates to the caller."""
        with pytest.raises(ConflictError):
            with db.begin() as txn:
                txn.execute("DELETE FROM accounts WHERE owner = 'bob'")
                db.execute(
                    "UPDATE accounts SET balance = 2 WHERE owner = 'bob'")
                # No exception here: __exit__ will call commit().
        assert txn.closed
        assert db.query("SELECT balance FROM accounts "
                        "WHERE owner = 'bob'") == [(2,)]

    def test_rollback_is_abort(self, db):
        txn = db.begin()
        txn.execute("DELETE FROM accounts")
        txn.rollback()
        assert txn.outcome == "aborted"
        assert db.execute("SELECT count(*) FROM accounts").scalar() == 2

    def test_crashed_commit_closes_the_transaction(self):
        from repro.faults import CrashError
        db, inj = self._walled_db()
        inj.crash_at("commit.publish")
        txn = db.begin()
        txn.execute("INSERT INTO accounts VALUES ('ida', 4)")
        with pytest.raises(CrashError):
            txn.commit()
        assert txn.closed and txn.outcome == "crashed"
        with pytest.raises(TransactionClosedError):
            txn.execute("SELECT * FROM accounts")

    def test_empty_commit_writes_no_wal_record(self):
        db, _ = self._walled_db()
        wal_len = len(db.wal)
        txn = db.begin()
        txn.execute("SELECT count(*) FROM accounts")
        txn.commit()
        assert txn.outcome == "committed"
        assert len(db.wal) == wal_len

    def test_self_inserted_then_deleted_rows_not_logged(self):
        """Rows a transaction inserts and deletes itself are invisible
        to the log — the commit record holds only the net effect."""
        db, _ = self._walled_db()
        txn = db.begin()
        txn.execute("INSERT INTO accounts VALUES ('tmp', 1), ('kay', 2)")
        txn.execute("DELETE FROM accounts WHERE owner = 'tmp'")
        txn.commit()
        record = list(db.wal.records())[-1]
        assert record["kind"] == "commit"
        (op,) = record["ops"]
        assert op["appends"] == [["kay", 2]]
        assert op["deletes"] == []
        assert db.query("SELECT owner FROM accounts ORDER BY owner") == \
            [("ann",), ("bob",), ("kay",)]


class TestSnapshotCost:
    def test_bind_is_zero_copy_without_concurrent_writes(self, db):
        """Snapshot reads share the physical column (E14's claim)."""
        txn = db.begin()
        shared = db.catalog.get("accounts").bind("balance")
        viewed = txn.bind("accounts", "balance")
        assert viewed is shared
        txn.abort()

    def test_bind_slices_after_concurrent_append(self, db):
        txn = db.begin()
        txn.execute("SELECT count(*) FROM accounts")  # snapshot now
        db.execute("INSERT INTO accounts VALUES ('zed', 9)")
        viewed = txn.bind("accounts", "balance")
        assert viewed.decoded() == [100, 50]
        txn.abort()
