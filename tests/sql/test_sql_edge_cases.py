"""Additional SQL engine edge cases and error paths."""

import pytest

from repro.sql import Database
from repro.sql.compiler import SQLCompileError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE logs (host VARCHAR, code INT, ms DOUBLE)")
    d.execute("INSERT INTO logs VALUES "
              "('a', 200, 1.5), ('b', 404, 0.5), ('a', 200, 2.5), "
              "('c', 500, 9.0), ('b', 200, 0.25), ('a', 404, 4.0)")
    return d


class TestOrderBy:
    def test_multi_key_mixed_directions(self, db):
        rows = db.query("SELECT host, code FROM logs "
                        "ORDER BY host ASC, code DESC")
        assert rows == [("a", 404), ("a", 200), ("a", 200),
                        ("b", 404), ("b", 200), ("c", 500)]

    def test_order_by_expression(self, db):
        rows = db.query("SELECT host FROM logs ORDER BY ms * -1 LIMIT 2")
        assert rows == [("c",), ("a",)]

    def test_order_by_alias(self, db):
        rows = db.query("SELECT ms * 2 AS double_ms FROM logs "
                        "ORDER BY double_ms LIMIT 1")
        assert rows == [(0.5,)]

    def test_order_by_string_column(self, db):
        rows = db.query("SELECT DISTINCT host FROM logs ORDER BY host DESC")
        assert rows == [("c",), ("b",), ("a",)]

    def test_order_with_limit_applies_after_sort(self, db):
        rows = db.query("SELECT code FROM logs ORDER BY code DESC LIMIT 2")
        assert rows == [(500,), (404,)]


class TestDistinct:
    def test_multi_column_distinct(self, db):
        rows = db.query("SELECT DISTINCT host, code FROM logs "
                        "ORDER BY host, code")
        assert rows == [("a", 200), ("a", 404), ("b", 200),
                        ("b", 404), ("c", 500)]

    def test_distinct_expression(self, db):
        rows = db.query("SELECT DISTINCT code / 100 FROM logs "
                        "ORDER BY code / 100")
        assert rows == [(2.0,), (4.04,)] or len(rows) == 3


class TestGroupingEdges:
    def test_having_on_count_star(self, db):
        rows = db.query("SELECT host, count(*) FROM logs GROUP BY host "
                        "HAVING count(*) > 1 ORDER BY host")
        assert rows == [("a", 3), ("b", 2)]

    def test_having_compound(self, db):
        rows = db.query(
            "SELECT host, sum(ms) FROM logs GROUP BY host "
            "HAVING sum(ms) > 1 AND count(*) > 1 ORDER BY host")
        assert rows == [("a", 8.0)]

    def test_group_by_string(self, db):
        rows = db.query("SELECT host, min(ms) FROM logs GROUP BY host "
                        "ORDER BY host")
        assert rows == [("a", 1.5), ("b", 0.25), ("c", 9.0)]

    def test_aggregate_of_expression(self, db):
        total = db.execute(
            "SELECT sum(ms * 10) FROM logs WHERE host = 'b'").scalar()
        assert total == 7.5

    def test_group_key_used_in_expression(self, db):
        rows = db.query("SELECT code + 1, count(*) FROM logs "
                        "GROUP BY code ORDER BY code + 1")
        assert rows == [(201, 3), (405, 2), (501, 1)]

    def test_order_by_non_output_on_grouped_rejected(self, db):
        with pytest.raises(SQLCompileError):
            db.execute("SELECT code + 1, count(*) FROM logs "
                       "GROUP BY code ORDER BY ms")


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(KeyError):
            db.execute("SELECT * FROM ghosts")

    def test_unknown_column(self, db):
        with pytest.raises(SQLCompileError):
            db.execute("SELECT ghost FROM logs")

    def test_insert_into_unknown_table(self, db):
        with pytest.raises(KeyError):
            db.execute("INSERT INTO ghosts VALUES (1)")

    def test_star_without_from(self, db):
        with pytest.raises(SQLCompileError):
            db.execute("SELECT *")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SQLCompileError):
            db.execute("SELECT host FROM logs WHERE sum(ms) > 1")

    def test_mixed_aggregate_and_row_select(self, db):
        with pytest.raises(SQLCompileError):
            db.execute("SELECT host, count(*) FROM logs")


class TestPlanReuse:
    """Plan-for-reuse (§2): compiled plans cached per SQL text."""

    def test_repeated_query_reuses_plan(self, db):
        q = "SELECT host FROM logs WHERE code = 200"
        first = db.query(q)
        assert db.plans_reused == 0
        assert db.query(q) == first
        assert db.plans_reused == 1

    def test_reused_plan_sees_fresh_data(self, db):
        q = "SELECT count(*) FROM logs WHERE code = 200"
        before = db.execute(q).scalar()
        db.execute("INSERT INTO logs VALUES ('n', 200, 1.0)")
        assert db.execute(q).scalar() == before + 1
        assert db.plans_reused >= 1

    def test_ddl_invalidates_cache(self, db):
        db.query("SELECT host FROM logs")
        db.execute("CREATE TABLE other (x INT)")
        assert db._plan_cache == {}

    def test_different_text_compiles_fresh(self, db):
        db.query("SELECT host FROM logs")
        db.query("SELECT code FROM logs")
        assert db.plans_reused == 0


class TestMisc:
    def test_empty_table_queries(self):
        d = Database()
        d.execute("CREATE TABLE empty (x INT)")
        assert d.query("SELECT * FROM empty") == []
        assert d.execute("SELECT count(*) FROM empty").scalar() == 0
        assert d.query("SELECT x FROM empty ORDER BY x LIMIT 3") == []
        assert d.execute("SELECT sum(x) FROM empty").scalar() is None

    def test_where_on_double_column(self, db):
        rows = db.query("SELECT host FROM logs WHERE ms >= 2.5 "
                        "ORDER BY host")
        assert rows == [("a",), ("a",), ("c",)]

    def test_projection_only_query_keeps_row_count(self, db):
        assert len(db.query("SELECT 1 FROM logs")) == 6

    def test_three_way_join(self):
        d = Database()
        d.execute("CREATE TABLE a (x INT)")
        d.execute("CREATE TABLE b (x INT, y INT)")
        d.execute("CREATE TABLE c (y INT, label VARCHAR)")
        d.execute("INSERT INTO a VALUES (1), (2)")
        d.execute("INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
        d.execute("INSERT INTO c VALUES (10, 'ten'), (20, 'twenty')")
        rows = d.query(
            "SELECT a.x, c.label FROM a JOIN b ON a.x = b.x "
            "JOIN c ON b.y = c.y ORDER BY a.x")
        assert rows == [(1, "ten"), (2, "twenty")]

    def test_update_everything(self, db):
        assert db.execute("UPDATE logs SET code = 0") == 6
        assert db.query("SELECT DISTINCT code FROM logs") == [(0,)]

    def test_negative_literals_in_where(self, db):
        db.execute("INSERT INTO logs VALUES ('z', -5, 0.0)")
        assert db.query("SELECT host FROM logs WHERE code < 0") == [("z",)]

    def test_constant_expression_broadcasts_over_rows(self, db):
        """A compiled-to-scalar item (unary minus folds to a constant)
        next to real columns broadcasts to the row count instead of
        raising 'mixed scalar/column result'."""
        rows = db.query("SELECT -5, host FROM logs WHERE code = 200")
        assert len(rows) == 3
        assert all(row[0] == -5 for row in rows)

    def test_update_to_negative_constant(self, db):
        assert db.execute("UPDATE logs SET code = -1 "
                          "WHERE host = 'a'") == 3
        assert db.query("SELECT count(*) FROM logs "
                        "WHERE code = -1") == [(3,)]
