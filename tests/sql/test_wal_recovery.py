"""Write-ahead logging and crash recovery.

The core claim under test: with a WAL attached, *any* injected crash
point in the commit path leaves the database recoverable to either the
full pre-commit state or the full post-commit state — never a torn
intermediate.  The crash points are enumerated exhaustively from a
fault-free dry run (``crash_points``), so new injection sites added to
the commit path are swept automatically.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CrashError, FaultInjector, crash_points
from repro.sql.database import Database
from repro.wal import WalCorruptionError, WriteAheadLog
from tests.helpers import assert_same_rows

# Sites where the commit record is not yet durable: a crash recovers
# to the pre-commit state.  Later sites recover to the post-commit
# state.  (The sweep derives this split; it is asserted explicitly so
# a silently vanishing site fails loudly.)
PRE_COMMIT_SITES = {"commit.validate", "wal.append"}
POST_COMMIT_SITES = {"commit.publish", "commit.apply"}


def fresh_db():
    db = Database(wal=WriteAheadLog())
    db.execute("CREATE TABLE emp (name VARCHAR, dept VARCHAR, pay INT)")
    db.execute("INSERT INTO emp VALUES ('ann', 'eng', 100), "
               "('bob', 'ops', 50), ('col', 'eng', 80)")
    return db


def arm(db):
    """Attach a fresh injector after fault-free setup."""
    inj = FaultInjector()
    db.faults = inj
    db.wal.faults = inj
    return inj


def snapshot(db):
    return sorted(db.query("SELECT name, dept, pay FROM emp"))


def run_txn(db):
    """The transaction whose commit is crashed at every site."""
    txn = db.begin()
    txn.execute("INSERT INTO emp VALUES ('dot', 'ops', 70)")
    txn.execute("UPDATE emp SET pay = pay + 5 WHERE dept = 'eng'")
    txn.execute("DELETE FROM emp WHERE name = 'bob'")
    return txn


class TestWriteAheadLog:
    def test_append_and_read_back(self):
        wal = WriteAheadLog()
        lsn0 = wal.append({"kind": "a", "n": 1})
        lsn1 = wal.append({"kind": "b", "n": 2})
        assert lsn0 == 0 and lsn1 > 0
        assert list(wal.records()) == [{"kind": "a", "n": 1},
                                       {"kind": "b", "n": 2}]
        assert len(wal) == 2

    def test_crash_without_torn_writes_nothing(self):
        inj = FaultInjector().crash_at("wal.append")
        wal = WriteAheadLog(faults=inj)
        with pytest.raises(CrashError):
            wal.append({"kind": "a"})
        assert wal.size_bytes == 0
        assert wal.recover() == []

    @pytest.mark.parametrize("torn", [1, 4, 7, 11])
    def test_torn_tail_discarded(self, torn):
        inj = FaultInjector().crash_at("wal.append", hit=2, torn=torn)
        wal = WriteAheadLog(faults=inj)
        wal.append({"kind": "a"})
        with pytest.raises(CrashError):
            wal.append({"kind": "b"})
        assert wal.size_bytes > 0
        records = wal.recover()
        assert records == [{"kind": "a"}]
        assert wal.torn_bytes_discarded == torn
        # The log is clean again: appends land on a frame boundary.
        wal.append({"kind": "c"})
        assert list(wal.records()) == [{"kind": "a"}, {"kind": "c"}]

    def test_torn_beyond_frame_means_complete(self):
        """torn >= frame size leaves a complete, recoverable record."""
        inj = FaultInjector().crash_at("wal.append", torn=10_000)
        wal = WriteAheadLog(faults=inj)
        with pytest.raises(CrashError):
            wal.append({"kind": "a"})
        assert wal.recover() == [{"kind": "a"}]

    def test_corrupted_byte_raises_structured_error(self):
        """A *complete* frame failing its CRC is media corruption, not
        a torn tail: replay stops there and surfaces the LSN rather
        than silently dropping the record."""
        wal = WriteAheadLog()
        wal.append({"kind": "a"})
        lsn_b = wal.append({"kind": "b"})
        wal._buffer[-1] ^= 0xFF  # flip a payload byte of record b
        with pytest.raises(WalCorruptionError) as exc:
            wal.recover()
        assert exc.value.lsn == lsn_b
        assert exc.value.index == 1
        assert exc.value.records == [{"kind": "a"}]

    def test_mid_log_corruption_fences_later_intact_records(self):
        """Corruption in the *middle* of the log: the error points at
        the corrupt frame even though intact records follow it."""
        wal = WriteAheadLog()
        wal.append({"kind": "a"})
        lsn_b = wal.append({"kind": "b"})
        end_b = len(wal._buffer)
        wal.append({"kind": "c"})
        wal._buffer[end_b - 1] ^= 0xFF  # corrupt b, leave c intact
        with pytest.raises(WalCorruptionError) as exc:
            wal.recover()
        assert exc.value.lsn == lsn_b
        assert exc.value.index == 1
        assert exc.value.records == [{"kind": "a"}]

    def test_corruption_detected_before_catalog_is_touched(self):
        """Database.recover() propagates WalCorruptionError without
        clobbering the live catalog."""
        db = fresh_db()
        db.wal._buffer[10] ^= 0xFF  # corrupt the first record
        before = snapshot(db)
        with pytest.raises(WalCorruptionError):
            db.recover()
        assert snapshot(db) == before

    def test_file_backed_log_survives_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path=path)
        wal.append({"kind": "a", "n": 1})
        reopened = WriteAheadLog(path=path)
        assert reopened.recover() == [{"kind": "a", "n": 1}]

    def test_truncate_empties(self):
        wal = WriteAheadLog()
        wal.append({"kind": "a"})
        wal.truncate()
        assert wal.size_bytes == 0
        assert wal.recover() == []


class TestAutocommitLogging:
    def test_every_write_is_logged_and_replayable(self):
        db = fresh_db()
        db.execute("UPDATE emp SET pay = 0 WHERE name = 'bob'")
        db.execute("DELETE FROM emp WHERE name = 'col'")
        want = snapshot(db)
        # Simulate a restart: wipe the catalog, replay the log.
        replayed = db.recover()
        assert replayed == len(list(db.wal.records()))
        assert snapshot(db) == want

    def test_recover_without_wal_rejected(self):
        with pytest.raises(RuntimeError):
            Database().recover()


class TestRecoverIdempotence:
    """recover() must be safe on an already-recovered (or never
    crashed) instance — replication failover retries lean on this."""

    def test_recover_twice_yields_identical_state(self):
        db = fresh_db()
        want = snapshot(db)
        db.recover()
        db.recover()
        assert snapshot(db) == want

    def test_recover_on_never_crashed_instance_is_a_noop(self):
        db = fresh_db()
        want = snapshot(db)
        assert db.recover() == len(list(db.wal.records()))
        assert snapshot(db) == want

    def test_writes_after_recovery_replay_cleanly(self):
        db = fresh_db()
        db.recover()
        db.execute("INSERT INTO emp VALUES ('dot', 'ops', 70)")
        want = snapshot(db)
        db.recover()
        assert snapshot(db) == want

    def test_recovery_keeps_the_session_tracer(self):
        from repro.observability.tracer import Tracer
        db = Database(wal=WriteAheadLog(), tracer=Tracer())
        db.execute("CREATE TABLE t (k INT)")
        db.recover()
        assert db.interpreter.tracer is db.tracer


class TestCrashSweep:
    def observed_commit_sites(self):
        """Dry-run the transaction commit to enumerate crash points."""
        db = fresh_db()
        inj = arm(db)
        run_txn(db).commit()
        return crash_points(inj.observed())

    def test_dry_run_observes_the_commit_path(self):
        points = self.observed_commit_sites()
        sites = {site for site, _ in points}
        assert PRE_COMMIT_SITES <= sites
        assert POST_COMMIT_SITES <= sites

    def test_crash_anywhere_recovers_to_pre_or_post(self):
        """Acceptance: the exhaustive sweep never shows a torn state."""
        points = self.observed_commit_sites()
        reference = fresh_db()
        pre = snapshot(reference)
        run_txn(reference).commit()
        post = snapshot(reference)
        assert pre != post
        for site, hit in points:
            db = fresh_db()
            inj = arm(db)
            inj.crash_at(site, hit=hit)
            txn = run_txn(db)
            with pytest.raises(CrashError):
                txn.commit()
            assert txn.closed and txn.outcome == "crashed"
            db.recover()
            state = snapshot(db)
            label = "crash at {0} hit {1}".format(site, hit)
            assert state in (pre, post), label
            if site in PRE_COMMIT_SITES:
                assert state == pre, label
            if site in POST_COMMIT_SITES:
                assert state == post, label

    @pytest.mark.parametrize("torn", [1, 3, 8, 30])
    def test_torn_commit_record_recovers_to_pre(self, torn):
        db = fresh_db()
        pre = snapshot(db)
        inj = arm(db)
        inj.crash_at("wal.append", torn=torn)
        with pytest.raises(CrashError):
            run_txn(db).commit()
        db.recover()
        assert snapshot(db) == pre
        assert db.wal.torn_bytes_discarded == torn

    def test_queries_after_recovery_match_fault_free_run(self):
        """Post-recovery answers equal a database that never crashed."""
        db = fresh_db()
        inj = arm(db)
        inj.crash_at("commit.apply")
        with pytest.raises(CrashError):
            run_txn(db).commit()
        db.recover()
        clean = fresh_db()
        run_txn(clean).commit()
        for sql in ("SELECT dept, sum(pay) FROM emp GROUP BY dept",
                    "SELECT count(*) FROM emp WHERE pay > 60"):
            assert_same_rows(db.query(sql), clean.query(sql), context=sql)


def test_seeded_chaos_commits_recover_cleanly():
    """CI sweeps FAULT_SWEEP_SEED over this test: a stream of small
    transactions under a seeded probabilistic crash schedule.  Every
    crash is followed by recovery, which must land on either the
    pre- or post-commit state of the transaction it interrupted — the
    run-long invariant behind atomic commit."""
    seed = int(os.environ.get("FAULT_SWEEP_SEED", "0"))
    db = Database(wal=WriteAheadLog())
    db.execute("CREATE TABLE log (k INT, v INT)")
    inj = FaultInjector.seeded(seed, {
        "commit.publish": ("crash", 0.15),
        "wal.append": ("crash", 0.1),
        "morsel.run": ("transient", 0.05),
    })
    db.faults = inj
    db.wal.faults = inj
    expected = []
    crashes = 0
    for i in range(40):
        row = (i, (i * 31 + seed) % 100)
        txn = db.begin()
        txn.execute("INSERT INTO log VALUES ({0}, {1})".format(*row))
        try:
            txn.commit()
            expected.append(row)
        except CrashError:
            crashes += 1
            db.recover()
            state = sorted(db.query("SELECT k, v FROM log"))
            with_row = sorted(expected + [row])
            assert state in (sorted(expected), with_row)
            expected = state
        # A parallel read over the recovered state stays exact even
        # with transient morsel faults in the schedule.
        assert sorted(db.query("SELECT k, v FROM log", workers=2)) == \
            sorted(expected)
    assert db.query("SELECT count(*) FROM log") == [(len(expected),)]
    if seed:  # the rates above fire several times in 40 commits
        assert crashes > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_replay_is_idempotent(seed):
    """Property: recovering N times equals recovering once, for random
    small workloads."""
    rng_rows = [(seed * 31 + i) % 97 for i in range(8)]
    db = Database(wal=WriteAheadLog())
    db.execute("CREATE TABLE t (k INT, v INT)")
    for i, v in enumerate(rng_rows):
        db.execute("INSERT INTO t VALUES ({0}, {1})".format(i, v))
    db.execute("DELETE FROM t WHERE v % 3 = {0}".format(seed % 3))
    db.execute("UPDATE t SET v = v + 1 WHERE k < 4")
    want = sorted(db.query("SELECT k, v FROM t"))
    for _ in range(3):
        db.recover()
        assert sorted(db.query("SELECT k, v FROM t")) == want


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_random_crash_point_never_torn(data):
    """Property: a crash at ANY observed (site, hit) — including torn
    writes of random length — recovers to pre or post, never between."""
    dry_db = fresh_db()
    dry = arm(dry_db)
    run_txn(dry_db).commit()
    points = crash_points(dry.observed())
    site, hit = data.draw(st.sampled_from(points))
    torn = None
    if site == "wal.append":
        torn = data.draw(st.one_of(st.none(),
                                   st.integers(min_value=1,
                                               max_value=400)))
    reference = fresh_db()
    pre = snapshot(reference)
    run_txn(reference).commit()
    post = snapshot(reference)
    db = fresh_db()
    arm(db).crash_at(site, hit=hit, torn=torn)
    with pytest.raises(CrashError):
        run_txn(db).commit()
    db.recover()
    first = snapshot(db)
    assert first in (pre, post)
    db.recover()  # idempotence under the same torn tail
    assert snapshot(db) == first
