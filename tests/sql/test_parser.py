"""Unit tests for the SQL parser."""

import pytest

from repro.sql import (
    BinOp, Column, CreateTable, Delete, FuncCall, Insert, IsNull,
    Literal, Select, SQLSyntaxError, Star, UnaryOp, Update, parse_sql,
)


class TestCreateTable:
    def test_basic(self):
        stmt = parse_sql("CREATE TABLE people (name VARCHAR, age INT)")
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "people"
        assert stmt.columns == [("name", "varchar"), ("age", "int")]

    def test_varchar_length_swallowed(self):
        stmt = parse_sql("CREATE TABLE t (s VARCHAR(20))")
        assert stmt.columns == [("s", "varchar")]

    def test_unknown_type(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("CREATE TABLE t (x quaternion)")

    def test_partition_by_parenthesized(self):
        stmt = parse_sql(
            "CREATE TABLE t (k BIGINT, v DOUBLE) PARTITION BY (k)")
        assert stmt.partition_by == "k"

    def test_partition_by_bare(self):
        stmt = parse_sql(
            "CREATE TABLE t (k BIGINT, v DOUBLE) PARTITION BY k")
        assert stmt.partition_by == "k"

    def test_no_partition_by_defaults_to_none(self):
        stmt = parse_sql("CREATE TABLE t (k BIGINT)")
        assert stmt.partition_by is None

    def test_partition_by_unknown_column_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("CREATE TABLE t (k BIGINT) PARTITION BY missing")


class TestInsert:
    def test_values(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, Insert)
        assert stmt.rows == [(1, "a"), (2, "b")]
        assert stmt.columns is None

    def test_explicit_columns(self):
        stmt = parse_sql("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert stmt.columns == ["b", "a"]

    def test_negative_null_bool(self):
        stmt = parse_sql("INSERT INTO t VALUES (-3, NULL, true)")
        assert stmt.rows == [(-3, None, True)]


class TestDeleteUpdate:
    def test_delete_where(self):
        stmt = parse_sql("DELETE FROM t WHERE x > 3")
        assert isinstance(stmt, Delete)
        assert stmt.where == BinOp(">", Column("x"), Literal(3))

    def test_delete_all(self):
        assert parse_sql("DELETE FROM t").where is None

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = a + 1, b = 'x' WHERE a < 2")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0] == (
            "a", BinOp("+", Column("a"), Literal(1)))
        assert stmt.assignments[1] == ("b", Literal("x"))


class TestSelect:
    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.table.name == "t"

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "u"

    def test_qualified_columns(self):
        stmt = parse_sql("SELECT t.a FROM t")
        assert stmt.items[0].expr == Column("a", table="t")

    def test_join_on(self):
        stmt = parse_sql(
            "SELECT a FROM t JOIN u ON t.k = u.k WHERE u.v > 0")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.name == "u"
        assert stmt.joins[0].condition == BinOp(
            "=", Column("k", "t"), Column("k", "u"))

    def test_inner_join(self):
        stmt = parse_sql("SELECT a FROM t INNER JOIN u ON t.k = u.k")
        assert len(stmt.joins) == 1

    def test_group_by_having(self):
        stmt = parse_sql(
            "SELECT a, sum(b) FROM t GROUP BY a HAVING sum(b) > 10")
        assert stmt.group_by == [Column("a")]
        assert stmt.having == BinOp(
            ">", FuncCall("sum", (Column("b"),)), Literal(10))

    def test_order_by_directions(self):
        stmt = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 5").limit == 5

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_between_desugars_to_and(self):
        stmt = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        where = stmt.where
        assert where.op == "and"
        assert where.left == BinOp(">=", Column("a"), Literal(1))
        assert where.right == BinOp("<=", Column("a"), Literal(5))

    def test_in_desugars_to_or(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IN (1, 2)")
        assert stmt.where == BinOp(
            "or", BinOp("=", Column("a"), Literal(1)),
            BinOp("=", Column("a"), Literal(2)))

    def test_precedence(self):
        stmt = parse_sql("SELECT a FROM t WHERE a + 1 * 2 > 3 AND b = 1 "
                         "OR c = 2")
        where = stmt.where
        assert where.op == "or"
        assert where.left.op == "and"
        left_cmp = where.left.left
        assert left_cmp.op == ">"
        assert left_cmp.left == BinOp(
            "+", Column("a"), BinOp("*", Literal(1), Literal(2)))

    def test_not(self):
        stmt = parse_sql("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_count_star(self):
        stmt = parse_sql("SELECT count(*) FROM t")
        call = stmt.items[0].expr
        assert call == FuncCall("count", (Star(),))

    def test_count_distinct(self):
        stmt = parse_sql("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_is_null(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IS NULL")
        assert stmt.where == IsNull(Column("a"))

    def test_is_not_null(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IS NOT NULL")
        assert stmt.where == UnaryOp("not", IsNull(Column("a")))

    def test_is_null_of_parenthesized_expression(self):
        stmt = parse_sql("SELECT a FROM t WHERE (a > 1) IS NULL")
        assert isinstance(stmt.where, IsNull)
        assert stmt.where.operand == BinOp(">", Column("a"), Literal(1))

    def test_neq_normalized(self):
        stmt = parse_sql("SELECT a FROM t WHERE a != 1")
        assert stmt.where.op == "<>"

    def test_parenthesized_expressions(self):
        stmt = parse_sql("SELECT (a + 1) * 2 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("DROP TABLE t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t extra garbage here")
