"""Tests for the B+-tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BAT
from repro.hardware import TINY
from repro.storage import BPlusTree


class TestBasics:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_search(self):
        tree = BPlusTree(order=4)
        tree.insert_many((k, k * 10) for k in [5, 1, 9, 3, 7])
        assert tree.search(3) == 30
        assert tree.search(4) is None
        assert len(tree) == 5

    def test_overwrite_duplicate(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == "b"
        assert len(tree) == 1

    def test_grows_in_height(self):
        tree = BPlusTree(order=4)
        assert tree.height == 1
        tree.insert_many((k, k) for k in range(100))
        assert tree.height >= 3
        assert tree.node_count() > 20

    def test_large_tree_all_found(self):
        tree = BPlusTree(order=8)
        keys = list(range(0, 5000, 3))
        tree.insert_many((k, -k) for k in keys)
        for k in keys[::37]:
            assert tree.search(k) == -k
        assert tree.search(1) is None

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        tree.insert_many((k, k) for k in range(0, 100, 2))
        got = tree.range_scan(10, 21)
        assert got == [(k, k) for k in range(10, 21, 2)]

    def test_range_scan_across_leaves(self):
        tree = BPlusTree(order=4)
        tree.insert_many((k, str(k)) for k in range(200))
        got = tree.range_scan(50, 150)
        assert [k for k, _ in got] == list(range(50, 150))

    def test_delete_tombstone(self):
        tree = BPlusTree(order=4)
        tree.insert_many((k, k) for k in range(20))
        assert tree.delete(7)
        assert not tree.delete(7)
        assert not tree.delete(99)
        assert tree.search(7) is None
        assert len(tree) == 19
        assert (7, 7) not in tree.range_scan(0, 20)

    def test_reinsert_after_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        tree.delete(1)
        tree.insert(1, "y")
        assert tree.search(1) == "y"


class TestLookupTrace:
    def test_trace_depth_grows_with_size(self):
        small = BPlusTree(order=8)
        small.insert_many((k, k) for k in range(50))
        big = BPlusTree(order=8)
        big.insert_many((k, k) for k in range(5000))
        assert len(big.lookup_trace(4321)) > len(small.lookup_trace(43))

    def test_positional_lookup_cheaper_than_btree(self):
        """E8's claim: array positional lookup beats B-tree descent."""
        n = 20000
        bat = BAT.from_values(list(range(n)))
        tree = BPlusTree(order=16)
        tree.insert_many((k, k) for k in range(n))
        rng = np.random.default_rng(0)
        probes = rng.integers(0, n, 200)
        h_bat = TINY.make_hierarchy()
        h_tree = TINY.make_hierarchy()
        for key in probes:
            # BAT: one address computation + one array read.
            h_bat.access(np.asarray([bat.tail_base + int(key) * 8]))
            h_tree.access(tree.lookup_trace(int(key)))
        assert h_bat.accesses < h_tree.accesses
        assert h_bat.total_cycles < h_tree.total_cycles


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10000), max_size=300),
       st.integers(min_value=3, max_value=32))
def test_property_btree_matches_dict(keys, order):
    tree = BPlusTree(order=order)
    reference = {}
    for k in keys:
        tree.insert(k, k * 7)
        reference[k] = k * 7
    assert len(tree) == len(reference)
    for k in reference:
        assert tree.search(k) == reference[k]
    lo, hi = 2000, 8000
    expected = sorted((k, v) for k, v in reference.items()
                      if lo <= k < hi)
    assert tree.range_scan(lo, hi) == expected
