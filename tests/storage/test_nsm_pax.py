"""Tests for NSM and PAX page layouts."""

import numpy as np
import pytest

from repro.hardware import TINY
from repro.storage import NSMTable, PAXTable, RecordSchema

SCHEMA = [("id", "lng"), ("qty", "lng"), ("price", "dbl"), ("flag", "lng")]


def fill(table, n=100):
    rids = table.insert_many([(i, i * 2, float(i), i % 2)
                              for i in range(n)])
    return rids


class TestRecordSchema:
    def test_width_and_offsets(self):
        schema = RecordSchema(tuple(SCHEMA))
        assert schema.record_width == 32
        assert schema.field_offset("id") == 0
        assert schema.field_offset("price") == 16
        with pytest.raises(KeyError):
            schema.field_offset("ghost")

    def test_atom(self):
        schema = RecordSchema(tuple(SCHEMA))
        assert schema.atom("price").name == "dbl"


@pytest.mark.parametrize("table_cls", [NSMTable, PAXTable])
class TestCommonBehaviour:
    def test_insert_fetch_roundtrip(self, table_cls):
        table = table_cls(SCHEMA)
        rids = fill(table, 10)
        assert table.fetch(rids[3]) == (3, 6, 3.0, 1)

    def test_spills_to_multiple_pages(self, table_cls):
        table = table_cls(SCHEMA, page_size=256)
        fill(table, 50)
        assert len(table.pages) > 1
        assert len(table) == 50

    def test_scan_order_and_rows(self, table_cls):
        table = table_cls(SCHEMA, page_size=256)
        fill(table, 25)
        assert [r[0] for r in table.rows()] == list(range(25))

    def test_delete_tombstones(self, table_cls):
        table = table_cls(SCHEMA)
        rids = fill(table, 5)
        table.delete(rids[2])
        assert len(table) == 4
        with pytest.raises(KeyError):
            table.fetch(rids[2])
        assert [r[0] for r in table.rows()] == [0, 1, 3, 4]

    def test_arity_checked(self, table_cls):
        table = table_cls(SCHEMA)
        with pytest.raises(ValueError):
            table.insert((1, 2))

    def test_record_wider_than_page_rejected(self, table_cls):
        with pytest.raises(ValueError):
            table_cls(SCHEMA, page_size=16)

    def test_fetch_bad_rid(self, table_cls):
        table = table_cls(SCHEMA)
        fill(table, 3)
        with pytest.raises(KeyError):
            table.fetch((99, 0))


class TestTraceContrast:
    """The core storage-layout claim: single-column scans."""

    def test_nsm_column_scan_touches_more_lines_than_pax(self):
        nsm = NSMTable(SCHEMA, page_size=2048)
        pax = PAXTable(SCHEMA, page_size=2048)
        n = 2000
        fill(nsm, n)
        fill(pax, n)
        h_nsm = TINY.make_hierarchy()
        h_nsm.access(nsm.scan_trace(["qty"]))
        h_pax = TINY.make_hierarchy()
        h_pax.access(pax.scan_trace(["qty"]))
        nsm_misses = h_nsm.level("L2").stats.misses
        pax_misses = h_pax.level("L2").stats.misses
        # NSM drags 32-byte records for an 8-byte column: ~4x the lines.
        assert nsm_misses > 2.5 * pax_misses

    def test_full_record_fetch_similar(self):
        nsm = NSMTable(SCHEMA, page_size=2048)
        pax = PAXTable(SCHEMA, page_size=2048)
        rids_nsm = fill(nsm, 500)
        rids_pax = fill(pax, 500)
        assert len(nsm.fetch_trace(rids_nsm[:10])) == 40
        assert len(pax.fetch_trace(rids_pax[:10])) == 40

    def test_scan_trace_covers_all_records(self):
        nsm = NSMTable(SCHEMA, page_size=256)
        fill(nsm, 40)
        trace = nsm.scan_trace(["id", "qty"])
        assert len(trace) == 80

    def test_empty_scan_trace(self):
        nsm = NSMTable(SCHEMA)
        assert len(nsm.scan_trace(["id"])) == 0
        pax = PAXTable(SCHEMA)
        assert len(pax.scan_trace(["id"])) == 0
