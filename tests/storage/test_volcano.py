"""Tests for the tuple-at-a-time Volcano engine."""

import pytest

from repro.storage import (
    GroupAggregate,
    HashJoinOp,
    LimitOp,
    ProjectOp,
    ScalarAggregate,
    SelectOp,
    TableScan,
    run_plan,
)

SALES = [(1, 10), (2, 7), (1, 5), (3, 2), (1, 1)]  # (item, qty)
ITEMS = [(1, "apple"), (2, "pear"), (3, "fig")]


class TestOperators:
    def test_scan(self):
        assert run_plan(TableScan(SALES)) == SALES

    def test_select(self):
        plan = SelectOp(TableScan(SALES), lambda r: r[1] > 4)
        assert run_plan(plan) == [(1, 10), (2, 7), (1, 5)]

    def test_project(self):
        plan = ProjectOp(TableScan(SALES), lambda r: (r[1] * 2,))
        assert run_plan(plan) == [(20,), (14,), (10,), (4,), (2,)]

    def test_hash_join(self):
        plan = HashJoinOp(TableScan(ITEMS), TableScan(SALES),
                          build_key=lambda r: r[0],
                          probe_key=lambda r: r[0])
        rows = run_plan(plan)
        assert (1, 10, 1, "apple") in rows
        assert len(rows) == 5

    def test_join_no_matches(self):
        plan = HashJoinOp(TableScan([(9, "x")]), TableScan(SALES),
                          build_key=lambda r: r[0],
                          probe_key=lambda r: r[0])
        assert run_plan(plan) == []

    def test_group_aggregate(self):
        plan = GroupAggregate(
            TableScan(SALES), key_fn=lambda r: r[0],
            aggregates=[(0, lambda acc, r: acc + r[1]),
                        (0, lambda acc, r: acc + 1)])
        rows = sorted(run_plan(plan))
        assert rows == [(1, 16, 3), (2, 7, 1), (3, 2, 1)]

    def test_scalar_aggregate(self):
        plan = ScalarAggregate(
            TableScan(SALES),
            aggregates=[(0, lambda acc, r: acc + r[1])])
        assert run_plan(plan) == [(25,)]

    def test_scalar_aggregate_empty_input(self):
        plan = ScalarAggregate(TableScan([]),
                               aggregates=[(0, lambda a, r: a + 1)])
        assert run_plan(plan) == [(0,)]

    def test_limit(self):
        assert run_plan(LimitOp(TableScan(SALES), 2)) == SALES[:2]
        assert run_plan(LimitOp(TableScan(SALES), 0)) == []

    def test_composed_pipeline(self):
        """select -> join -> group: the E13 query shape."""
        filtered = SelectOp(TableScan(SALES), lambda r: r[1] >= 2)
        joined = HashJoinOp(TableScan(ITEMS), filtered,
                            build_key=lambda r: r[0],
                            probe_key=lambda r: r[0])
        grouped = GroupAggregate(
            joined, key_fn=lambda r: r[3],
            aggregates=[(0, lambda acc, r: acc + r[1])])
        assert sorted(run_plan(grouped)) == [
            ("apple", 15), ("fig", 2), ("pear", 7)]

    def test_iterators_restartable(self):
        plan = SelectOp(TableScan(SALES), lambda r: r[0] == 1)
        first = run_plan(plan)
        second = run_plan(plan)
        assert first == second == [(1, 10), (1, 5), (1, 1)]
