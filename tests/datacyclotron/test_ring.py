"""Tests for the DataCyclotron ring simulation."""

import pytest

from repro.datacyclotron import (
    RingQuery,
    run_centralized,
    run_ring,
)


def full_scan_queries(n_queries, n_nodes, n_chunks, arrivals=0):
    return [RingQuery("q{0}".format(i), home_node=i % n_nodes,
                      chunks_needed=frozenset(range(n_chunks)),
                      arrival_step=arrivals * i)
            for i in range(n_queries)]


class TestRing:
    def test_single_query_latency_is_one_rotation(self):
        queries = full_scan_queries(1, 4, 4)
        result = run_ring(4, 4, queries)
        # All chunks pass the home node within one full rotation.
        assert queries[0].finish_step <= 4
        assert result.steps <= 4

    def test_all_queries_complete(self):
        queries = full_scan_queries(12, 4, 8)
        result = run_ring(4, 8, queries)
        assert all(q.finish_step is not None for q in queries)
        assert result.throughput_qps > 0

    def test_partial_scans_finish_early(self):
        q_small = RingQuery("small", 0, frozenset({0}))
        q_big = RingQuery("big", 0, frozenset(range(8)))
        run_ring(4, 8, [q_small, q_big])
        assert q_small.finish_step <= q_big.finish_step

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ring(0, 4, [])
        with pytest.raises(ValueError):
            RingQuery("empty", 0, frozenset())
        with pytest.raises(ValueError):
            run_ring(2, 2, [RingQuery("bad", 5, frozenset({0}))])
        with pytest.raises(ValueError):
            run_ring(2, 2, [RingQuery("bad", 0, frozenset({9}))])

    def test_queries_ride_the_same_rotation(self):
        """Many concurrent full scans finish in ~one rotation: the
        ring's aggregate throughput scales with the query load."""
        few = full_scan_queries(2, 8, 8)
        many = full_scan_queries(64, 8, 8)
        r_few = run_ring(8, 8, few)
        r_many = run_ring(8, 8, many)
        assert r_many.steps <= r_few.steps + 1
        assert r_many.throughput_qps > 10 * r_few.throughput_qps


class TestCentralized:
    def test_in_memory_no_disk(self):
        queries = full_scan_queries(3, 1, 4)
        result = run_centralized(4, queries, memory_chunks=4)
        assert result.disk_loads == 4  # cold loads only
        assert all(q.finish_step is not None for q in queries)

    def test_thrash_when_memory_short(self):
        queries = full_scan_queries(3, 1, 8)
        result = run_centralized(8, queries, memory_chunks=2)
        assert result.disk_loads == 24  # every chunk reloaded per query

    def test_validation(self):
        with pytest.raises(ValueError):
            run_centralized(4, [], memory_chunks=0)


class TestArchitectureComparison:
    def test_ring_beats_centralized_beyond_single_node_memory(self):
        """Section 6.2's 'obvious benefit': throughput, once the hot
        set exceeds one node's memory."""
        n_chunks = 16
        n_queries = 32
        ring_queries = full_scan_queries(n_queries, 8, n_chunks)
        ring = run_ring(8, n_chunks, ring_queries, process_ms=1.0,
                        transfer_ms=0.5)
        central_queries = full_scan_queries(n_queries, 1, n_chunks)
        central = run_centralized(n_chunks, central_queries,
                                  memory_chunks=4, process_ms=1.0,
                                  disk_ms=10.0)
        assert ring.throughput_qps > 5 * central.throughput_qps

    def test_ring_scales_with_nodes(self):
        """Fixed CPU per node: more nodes, more aggregate throughput."""
        n_chunks = 16
        results = {}
        for n_nodes in (2, 4, 8, 16):
            queries = full_scan_queries(64, n_nodes, n_chunks)
            results[n_nodes] = run_ring(
                n_nodes, n_chunks, queries,
                capacity_per_step=8).throughput_qps
        assert results[4] > results[2]
        assert results[16] > 2 * results[2]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            run_ring(2, 2, full_scan_queries(1, 2, 2),
                     capacity_per_step=0)

    def test_cpu_bound_queries_catch_next_rotation(self):
        # One CPU unit per step and two full scans homed at the SAME
        # node: they must share rotations.
        queries = [RingQuery("a", 0, frozenset(range(4))),
                   RingQuery("b", 0, frozenset(range(4)))]
        result = run_ring(4, 4, queries, capacity_per_step=1)
        assert all(q.finish_step is not None for q in queries)
        assert result.steps > 4
