"""Ring hops under injected stalls, drops, and latency spikes.

Invariant: faults cost *steps*, never answers — every query still
completes, and the fault-free run is a lower bound on steps.
"""

import pytest

from repro.datacyclotron.ring import RingQuery, run_ring
from repro.faults import FaultInjector


def make_queries():
    return [RingQuery(name="q{0}".format(i), home_node=i % 4,
                      chunks_needed=frozenset({i % 8, (i + 3) % 8}))
            for i in range(12)]


def finished(result):
    return all(q.finish_step is not None for q in result.queries)


@pytest.fixture
def baseline():
    return run_ring(4, 8, make_queries())


def test_fault_free_run_reports_zero_fault_stats(baseline):
    assert finished(baseline)
    assert baseline.stalled_hops == 0
    assert baseline.retries == 0
    assert baseline.retransmits == 0


def test_latency_stalls_cost_steps_not_answers(baseline):
    inj = FaultInjector().delay_at("ring.hop", hits=(3, 7, 11), delay=2)
    result = run_ring(4, 8, make_queries(), faults=inj)
    assert finished(result)
    assert result.stalled_hops == 3
    assert result.retransmits == 0
    assert result.steps >= baseline.steps


def test_spike_beyond_timeout_is_retransmitted(baseline):
    inj = FaultInjector().delay_at("ring.hop", hits=(2,), delay=50)
    result = run_ring(4, 8, make_queries(), faults=inj, hop_timeout=4)
    assert finished(result)
    assert result.retransmits == 1
    assert result.stalled_hops == 0
    # The stall is capped by the timeout, not the 50-step spike.
    assert result.steps <= baseline.steps + 4


def test_dropped_hops_are_retried_with_backoff(baseline):
    inj = FaultInjector().transient_at("ring.hop", hits=(1, 2, 3, 4, 5))
    result = run_ring(4, 8, make_queries(), faults=inj)
    assert finished(result)
    assert result.retries == 5
    assert result.steps >= baseline.steps


def test_stalled_chunk_stays_processable():
    """A chunk stuck at a node keeps answering that node's queries."""
    query = RingQuery(name="q", home_node=0, chunks_needed=frozenset({0}))
    inj = FaultInjector().delay_at("ring.hop", hits=None, delay=3)
    result = run_ring(2, 1, [query], faults=inj, hop_timeout=4)
    # Chunk 0 starts at node 0, the query's home: processed in step 0
    # regardless of the injected stall on every subsequent hop attempt.
    assert query.finish_step == 1


def test_seeded_chaos_converges_reproducibly():
    def run():
        inj = FaultInjector.seeded(
            7, {"ring.hop": ("transient", 0.05)})
        return run_ring(4, 8, make_queries(), faults=inj)

    first, second = run(), run()
    assert finished(first)
    assert first.steps == second.steps
    assert first.retries == second.retries


def test_hop_timeout_validation():
    query = RingQuery(name="q", home_node=0, chunks_needed=frozenset({0}))
    with pytest.raises(ValueError):
        run_ring(2, 2, [query], hop_timeout=0)
