"""Repo-level pytest configuration.

``--update-golden`` regenerates the checked-in normalized span trees
used by the golden-trace regression suite
(``tests/observability/test_golden.py``) after an intentional change
to the traced plan shapes::

    PYTHONPATH=src python -m pytest tests/observability/test_golden.py \
        --update-golden
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden span-tree files instead of comparing")
