"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (this sandbox has no network to fetch it)."""

from setuptools import setup

setup()
